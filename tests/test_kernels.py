"""Benchmark kernel correctness: every Table IV kernel, every architecture,
unrolled and fast-math variants, validated against the NumPy references by
full SIMT emulation."""

import numpy as np
import pytest

from repro.arch import ALL_GPUS, K20
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import BENCHMARKS, get_benchmark
from repro.kernels.base import register
from repro.sim.emulator import run_benchmark_emulated

from tests.conftest import make_benchmark_run

ALL_NAMES = ("atax", "bicg", "matvec2d", "ex14fj")


class TestRegistry:
    def test_all_four_registered(self):
        assert set(ALL_NAMES) <= set(BENCHMARKS)

    def test_lookup_case_insensitive(self):
        assert get_benchmark("ATAX") is get_benchmark("atax")

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("trmm")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register(BENCHMARKS["atax"])

    def test_paper_sizes(self):
        assert get_benchmark("atax").sizes == (32, 64, 128, 256, 512)
        assert get_benchmark("ex14fj").sizes == (8, 16, 32, 64, 128)

    def test_work_extent(self):
        assert get_benchmark("atax").work_extent(64) == 64
        assert get_benchmark("matvec2d").work_extent(64) == 64 * 64
        assert get_benchmark("ex14fj").work_extent(8) == 512


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCorrectness:
    def test_reference_shapes(self, name):
        bm, n, inputs, ref = make_benchmark_run(name)
        for out in bm.output_names:
            assert out in ref
            assert ref[out].shape == inputs[out].shape

    def test_emulation_matches_reference_default(self, name):
        bm, n, inputs, ref = make_benchmark_run(name)
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
        outs, res = run_benchmark_emulated(mod, inputs, tc=32, bc=4)
        for out in bm.output_names:
            np.testing.assert_allclose(
                outs[out], ref[out], rtol=2e-3, atol=2e-4,
                err_msg=f"{name}:{out}",
            )
        assert res.total_thread_instructions > 0

    @pytest.mark.parametrize("gpu_name", [g.name for g in ALL_GPUS])
    def test_emulation_all_architectures(self, name, gpu_name):
        from repro.arch import GPUS_BY_NAME

        gpu = GPUS_BY_NAME[gpu_name]
        bm, n, inputs, ref = make_benchmark_run(name)
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=gpu))
        outs, _ = run_benchmark_emulated(mod, inputs, tc=64, bc=2)
        for out in bm.output_names:
            np.testing.assert_allclose(
                outs[out], ref[out], rtol=2e-3, atol=2e-4
            )

    @pytest.mark.parametrize("uf,fm", [(2, False), (3, True), (5, True)])
    def test_emulation_tuned_variants(self, name, uf, fm):
        bm, n, inputs, ref = make_benchmark_run(name)
        mod = compile_module(
            name, list(bm.specs),
            CompileOptions(gpu=K20, unroll_factor=uf, fast_math=fm),
        )
        outs, _ = run_benchmark_emulated(mod, inputs, tc=32, bc=4)
        for out in bm.output_names:
            np.testing.assert_allclose(
                outs[out], ref[out], rtol=3e-3, atol=3e-4
            )

    @pytest.mark.parametrize("tc,bc", [(32, 1), (96, 3), (256, 2), (1024, 1)])
    def test_launch_configuration_invariance(self, name, tc, bc):
        """The computed result must not depend on the launch config."""
        bm, n, inputs, ref = make_benchmark_run(name)
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
        outs, _ = run_benchmark_emulated(mod, inputs, tc=tc, bc=bc)
        for out in bm.output_names:
            np.testing.assert_allclose(
                outs[out], ref[out], rtol=2e-3, atol=2e-4
            )


class TestDivergenceBehaviour:
    def test_ex14fj_diverges_at_boundaries(self):
        bm, n, inputs, _ = make_benchmark_run("ex14fj")
        mod = compile_module("ex14fj", list(bm.specs),
                             CompileOptions(gpu=K20))
        _, res = run_benchmark_emulated(mod, inputs, tc=64, bc=2)
        assert res.divergent_branches > 0
        assert res.simd_efficiency < 1.0

    def test_matvec2d_fully_converged(self):
        bm, n, inputs, _ = make_benchmark_run("matvec2d")
        mod = compile_module("matvec2d", list(bm.specs),
                             CompileOptions(gpu=K20))
        _, res = run_benchmark_emulated(mod, inputs, tc=32, bc=8)
        # N^2 iterations divide the warp count evenly: no divergence at all
        assert res.simd_efficiency == 1.0
