"""Tests for the extension modules: replay/dial (paper Sec. VII), the
STATuner-style classifier, dynamic analysis (IC/BF/MD), the CUDA-style
occupancy API, and the shared-memory-tiled kernel."""

import json

import numpy as np
import pytest

from repro.arch import K20, M2050
from repro.autotune.replay import (
    Dial,
    SessionRecord,
    SessionRecorder,
    replay_with_empirical_testing,
    tune_with_dial,
)
from repro.autotune.space import Parameter, ParameterSpace
from repro.codegen.compiler import CompileOptions, compile_module
from repro.core.classifier import (
    BLOCK_SIZE_CLASSES,
    BlockSizeClassifier,
    FEATURE_NAMES,
    TrainingSet,
    extract_features,
)
from repro.core.dynamic import profile_benchmark
from repro.core.occupancy_api import (
    LaunchSuggestion,
    max_active_blocks_per_multiprocessor,
    max_potential_block_size,
    suggest_launch_for_kernel,
)
from repro.kernels import get_benchmark
from repro.sim.emulator import run_benchmark_emulated
from repro.util.rng import rng_for


def _tiny_space():
    return ParameterSpace([
        Parameter("TC", tuple(range(32, 1025, 32))),
        Parameter("BC", (48,)),
        Parameter("UIF", (1,)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("",)),
    ])


class TestReplay:
    def test_record_roundtrips_json(self):
        bm = get_benchmark("atax")
        rec = SessionRecorder(bm, K20, space=_tiny_space()).run(
            size=64, use_rule=True
        )
        text = rec.to_json()
        back = SessionRecord.from_json(text)
        assert back.best_config == rec.best_config
        assert back.searched_threads == rec.searched_threads
        assert len(back.variants) == len(rec.variants)
        json.loads(text)  # valid JSON

    def test_record_contents(self):
        bm = get_benchmark("atax")
        rec = SessionRecorder(bm, K20, space=_tiny_space()).run(size=64)
        assert rec.suggested_threads == [128, 256, 512, 1024]
        assert set(rec.searched_threads) == set(rec.suggested_threads)
        assert rec.intensity == pytest.approx(3.5, abs=0.3)

    def test_replay_validates_pruning(self):
        bm = get_benchmark("atax")
        space = _tiny_space()
        rec = SessionRecorder(bm, K20, space=space).run(size=256)
        rep = replay_with_empirical_testing(rec, bm, K20)
        assert rep.pruned_evaluations == len(space) - len(rec.variants)
        assert rep.global_best <= rep.record_best
        assert rep.regret >= 0.0
        assert "replay" in rep.summary()

    def test_dial_endpoints(self):
        space = _tiny_space()
        t_star = (128, 256, 512, 1024)
        assert Dial(0.0).thread_counts(space, t_star) == tuple(sorted(t_star))
        full = Dial(1.0).thread_counts(space, t_star)
        assert len(full) == 32
        mid = Dial(0.5).thread_counts(space, t_star)
        assert len(t_star) < len(mid) < 32

    def test_dial_validation(self):
        with pytest.raises(ValueError):
            Dial(1.5)

    def test_tune_with_dial_monotone_coverage(self):
        bm = get_benchmark("atax")
        space = _tiny_space()
        out0 = tune_with_dial(bm, K20, 64, Dial(0.0), space=space)
        out1 = tune_with_dial(bm, K20, 64, Dial(1.0), space=space)
        assert out1.search.evaluations > out0.search.evaluations
        # more empirical testing can only improve (or match) the result
        assert out1.best_seconds <= out0.best_seconds + 1e-12


class TestClassifier:
    def test_feature_vector_shape(self, compiled_benchmarks):
        f = extract_features(compiled_benchmarks["atax"], {"N": 256})
        assert f.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(f).all()
        assert (f >= 0).all() and (f <= 1.5).all()

    def test_features_distinguish_kernels(self, compiled_benchmarks):
        env_a = {"N": 256}
        env_e = {"N": 32, "NN": 1024, "NNN": 32768}
        fa = extract_features(compiled_benchmarks["atax"], env_a)
        fe = extract_features(compiled_benchmarks["ex14fj"], env_e)
        assert not np.allclose(fa, fe)

    def test_training_converges_on_separable_data(self):
        rng = np.random.default_rng(0)
        n, d = 200, len(FEATURE_NAMES)
        x = rng.random((n, d))
        y = (x[:, 0] > 0.5).astype(int) * 4  # classes 0 and 4, separable
        data = TrainingSet(features=x, labels=y, tags=["synth"] * n)
        clf = BlockSizeClassifier()
        losses = clf.fit(data, epochs=300)
        assert losses[-1] < losses[0]
        preds = [
            clf.predict(x[i]) for i in range(20)
        ]
        expected = [BLOCK_SIZE_CLASSES[y[i]] for i in range(20)]
        acc = np.mean([p == e for p, e in zip(preds, expected)])
        assert acc >= 0.9

    def test_predict_requires_training(self):
        with pytest.raises(RuntimeError):
            BlockSizeClassifier().predict(np.zeros(len(FEATURE_NAMES)))

    def test_proba_sums_to_one(self):
        clf = BlockSizeClassifier()
        clf.trained = True
        p = clf.predict_proba(np.zeros(len(FEATURE_NAMES)))
        assert sum(p.values()) == pytest.approx(1.0)
        assert set(p) == set(BLOCK_SIZE_CLASSES)


class TestDynamicAnalysis:
    def test_profile_ex14fj(self):
        bm = get_benchmark("ex14fj")
        inputs = bm.make_inputs(8, rng_for("dyn"))
        mod = compile_module("ex14fj", list(bm.specs),
                             CompileOptions(gpu=K20))
        rep = profile_benchmark(mod, inputs, tc=64, bc=2)
        assert rep.total_instructions > 0
        assert rep.divergent_branches > 0
        assert 0 < rep.simd_efficiency < 1
        assert rep.memory_distance.total > 0
        assert "Dynamic analysis" in rep.summary()

    def test_stencil_locality_beats_strided(self):
        """ex14FJ's stencil reuses lines heavily; atax's row walk at tiny N
        also reuses, but the locality score must be finite and ordered."""
        bm_e = get_benchmark("ex14fj")
        inp_e = bm_e.make_inputs(8, rng_for("dyn2"))
        mod_e = compile_module("e", list(bm_e.specs),
                               CompileOptions(gpu=K20))
        rep_e = profile_benchmark(mod_e, inp_e, tc=64, bc=2)
        assert rep_e.memory_distance.locality_score() > 0.5


class TestOccupancyAPI:
    def test_max_active_blocks_matches_eq1(self):
        from repro.core.occupancy import occupancy

        assert max_active_blocks_per_multiprocessor(
            K20, 32, 256
        ) == occupancy(K20, 256, 32).active_blocks

    def test_max_potential_block_size_kepler(self):
        s = max_potential_block_size(K20, regs_per_thread=24)
        assert isinstance(s, LaunchSuggestion)
        assert s.occupancy == 1.0
        assert s.block_size == 1024  # largest max-occupancy block
        assert s.min_grid_size == 2 * K20.multiprocessors

    def test_dynamic_smem_callback(self):
        # smem grows with block size: the largest blocks become unlaunchable
        s = max_potential_block_size(
            M2050, regs_per_thread=20,
            dynamic_smem_of_block=lambda b: b * 64,
        )
        assert s.block_size < 1024
        assert s.occupancy > 0.0

    def test_kernel_form(self, compiled_benchmarks):
        s = suggest_launch_for_kernel(compiled_benchmarks["atax"].kernels[0])
        assert s.block_size in range(32, 1025, 32)
        assert s.occupancy > 0.9


class TestSmemTiledKernel:
    def test_correct_and_uses_smem(self):
        bm = get_benchmark("matvec_smem")
        inputs = bm.make_inputs(256, rng_for("smem"))
        mod = compile_module("matvec_smem", list(bm.specs),
                             CompileOptions(gpu=K20))
        assert mod.static_smem_bytes == 128 * 4
        outs, res = run_benchmark_emulated(mod, inputs, tc=128, bc=2)
        np.testing.assert_allclose(outs["y"], bm.reference(inputs)["y"],
                                   rtol=3e-3, atol=3e-4)

    def test_smem_constrains_occupancy_suggestion(self):
        from repro.core.suggest import suggest_for_module

        bm = get_benchmark("matvec_smem")
        mod = compile_module("matvec_smem", list(bm.specs),
                             CompileOptions(gpu=K20))
        s = suggest_for_module(mod)
        # headroom is reduced by the static tile
        assert s.smem_headroom <= 3072 - 0  # <= the unconstrained value
        assert s.smem_headroom >= 0

    def test_size_validation(self):
        bm = get_benchmark("matvec_smem")
        with pytest.raises(ValueError, match="N % 128"):
            bm.make_inputs(100, rng_for("x"))
