"""The workload-corpus subsystem: tags, selection, per-benchmark spaces,
registration-driven correctness, and the ``suite`` experiment.

The corpus-correctness class is parametrized over the *registry*, so a
newly registered benchmark is validated against its NumPy reference by
full SIMT emulation automatically -- no test edit required.
"""

import numpy as np
import pytest

from repro.arch import K20
from repro.autotune.tuner import Autotuner
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import BENCHMARKS, get_benchmark, list_benchmarks
from repro.kernels.base import Benchmark, TAGS
from repro.sim.emulator import run_benchmark_emulated
from repro.suite import corpus_members, corpus_sizes, corpus_space
from repro.util.rng import rng_for

EXPECTED_SUBSETS = {
    "memory-bound": {"atax", "bicg", "matvec2d", "matvec_smem", "mvt",
                     "gesummv", "jacobi2d", "dot", "gemver",
                     "spmv_csr", "histogram", "scan", "compact"},
    "compute-bound": {"ex14fj", "gemm"},
    "stencil": {"ex14fj", "jacobi2d"},
    "reduction": {"dot", "histogram"},
    "multi-pass": {"atax", "bicg", "mvt", "gemver"},
    "irregular": {"spmv_csr", "histogram", "scan", "compact"},
}


class TestTags:
    def test_corpus_has_at_least_ten_members(self):
        assert len(BENCHMARKS) >= 10

    def test_every_member_is_tagged(self):
        for bm in BENCHMARKS.values():
            assert bm.tags, f"{bm.name} has no tags"
            assert set(bm.tags) <= TAGS

    @pytest.mark.parametrize("tag", sorted(TAGS))
    def test_tag_subsets(self, tag):
        names = {b.name for b in list_benchmarks(tag=tag)}
        assert names == EXPECTED_SUBSETS[tag]

    def test_list_all_sorted(self):
        names = [b.name for b in list_benchmarks()]
        assert names == sorted(BENCHMARKS)

    def test_unknown_tag(self):
        with pytest.raises(KeyError, match="unknown tag"):
            list_benchmarks(tag="gpu-bound")

    def test_unknown_tag_rejected_at_registration(self):
        atax = get_benchmark("atax")
        with pytest.raises(ValueError, match="unknown tags"):
            Benchmark(
                name="bad", description="", specs=atax.specs,
                make_inputs=atax.make_inputs, reference=atax.reference,
                sizes=atax.sizes, param_env=atax.param_env,
                output_names=atax.output_names, tags=("turbo",),
            )

    def test_cooperative_member_requires_emulation_launch(self):
        """A barrier/smem kernel registered without an emulation-safe
        launch must be rejected up front -- the default launch would
        break its cooperative constraints and every emulator-backed
        consumer (suite ground truth, corpus validation) downstream."""
        from repro.kernels.base import register

        dot_bm = get_benchmark("dot")
        bad = Benchmark(
            name="dot_unlaunchable", description="", specs=dot_bm.specs,
            make_inputs=dot_bm.make_inputs, reference=dot_bm.reference,
            sizes=dot_bm.sizes, param_env=dot_bm.param_env,
            output_names=dot_bm.output_names, tags=("reduction",),
        )
        with pytest.raises(ValueError, match="emulation_launch"):
            register(bad)
        assert "dot_unlaunchable" not in BENCHMARKS


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestCorpusCorrectness:
    """Every registered benchmark, emulated at its smallest size under
    its own declared launch, must match its NumPy reference."""

    def test_emulation_matches_reference(self, name):
        bm = get_benchmark(name)
        n = bm.smallest_size
        inputs = bm.make_inputs(n, rng_for("tests", "suite", name, n))
        ref = bm.reference(inputs)
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
        tc, bc = bm.emu_launch(n)
        outs, res = run_benchmark_emulated(mod, inputs, tc=tc, bc=bc)
        for out in bm.output_names:
            assert ref[out].shape == inputs[out].shape
            np.testing.assert_allclose(
                outs[out], ref[out], rtol=2e-3, atol=1e-3,
                err_msg=f"{name}:{out}",
            )
        assert res.total_thread_instructions > 0


class TestDivergenceJoin:
    """Regression for the reconvergence fix the reduction kernels
    exposed: in a divergent if *without* an else arm, the not-taken
    lanes must wait at the join block, not execute it early -- otherwise
    join-side atomics run twice for divergent warps."""

    def _kernel(self):
        N = dsl.sparam("N")
        x, y, z, cnt = dsl.farrays("x", "y", "z", "cnt")
        i = dsl.ivar("i")
        # the then-arm must exceed the if-conversion limit so the
        # lowering emits a real branch rather than predication
        return dsl.kernel(
            "onearm",
            params=[N, x, y, z, cnt],
            body=[
                dsl.pfor(i, N, [
                    dsl.when((i % 4).lt(2), [
                        y.store(i, x[i] * x[i] + x[i] + 1.0),
                        z.store(i, x[i] * 2.0 - 3.0),
                    ]),
                    cnt.atomic_add(0, dsl.f32(1.0)),
                ]),
            ],
        )

    def test_join_block_executes_once(self):
        n = 128
        spec = self._kernel()
        mod = compile_module("onearm", [spec], CompileOptions(gpu=K20))
        xv = rng_for("tests", "onearm").standard_normal(n).astype(np.float32)
        inputs = {"N": n, "x": xv, "y": np.zeros(n, np.float32),
                  "z": np.zeros(n, np.float32),
                  "cnt": np.zeros(1, np.float32)}
        outs, res = run_benchmark_emulated(mod, inputs, tc=32, bc=2)
        taken = np.arange(n) % 4 < 2
        x64 = xv.astype(np.float64)
        np.testing.assert_allclose(
            outs["y"], np.where(taken, x64 * x64 + x64 + 1.0, 0.0),
            rtol=1e-5,
        )
        np.testing.assert_allclose(
            outs["z"], np.where(taken, x64 * 2.0 - 3.0, 0.0), rtol=1e-5,
        )
        assert res.divergent_branches > 0
        # the post-join atomic must fire exactly once per thread
        assert outs["cnt"][0] == n


class TestPfor2d:
    def test_only_used_indices_are_assigned(self):
        from repro.codegen.ast_nodes import Assign

        N = dsl.sparam("N")
        A, B = dsl.farrays("A", "B")
        i, j = dsl.ivars("i", "j")
        loop = dsl.pfor2d(i, j, N, N, [B.store(j, A[j])])
        assigns = [s.var for s in loop.body if isinstance(s, Assign)]
        assert assigns == ["j"]

    def test_flat_only_body_has_no_index_assigns(self):
        from repro.codegen.ast_nodes import Assign

        # jacobi2d indexes by the flat counter alone: no dead i/j ops
        bm = get_benchmark("jacobi2d")
        loop = bm.specs[0].body[0]
        assert not [s for s in loop.body if isinstance(s, Assign)]


class TestCorpusSelection:
    def test_all_members(self):
        assert [b.name for b in corpus_members()] == sorted(BENCHMARKS)

    def test_tag_union(self):
        names = {b.name for b in corpus_members(tags=["stencil",
                                                      "reduction"])}
        assert names == {"ex14fj", "jacobi2d", "dot", "histogram"}

    def test_tag_and_kernel_intersection(self):
        members = corpus_members(tags=["multi-pass"],
                                 kernels=["mvt", "atax", "gemm"])
        assert [b.name for b in members] == ["atax", "mvt"]

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            corpus_members(kernels=["nope"])


class TestCorpusSpaces:
    def test_reduced_space_keeps_tc_axis(self):
        bm = get_benchmark("atax")
        space = corpus_space(bm)
        assert len(space.by_name["TC"]) == 32
        assert space.by_name["PL"].values == (16,)
        assert len(space) == 256

    def test_full_space_is_declared_space(self):
        bm = get_benchmark("atax")
        assert len(corpus_space(bm, full=True)) == 5120

    def test_dot_declares_tile_multiples(self):
        bm = get_benchmark("dot")
        tcs = bm.default_space().by_name["TC"].values
        assert all(tc % 128 == 0 for tc in tcs)
        assert bm.default_space().by_name["UIF"].values == (1,)

    def test_autotuner_picks_up_declared_space(self):
        tuner = Autotuner(get_benchmark("dot"), K20)
        assert all(tc % 128 == 0 for tc in tuner.space.by_name["TC"].values)
        # undeclared members keep the Table III default
        assert len(Autotuner(get_benchmark("atax"), K20).space) == 5120

    def test_corpus_sizes(self):
        bm = get_benchmark("atax")
        assert corpus_sizes(bm) == (32, 512)
        assert corpus_sizes(bm, full=True) == bm.sizes


class TestSuiteExperiment:
    def test_run_structure(self):
        from repro.experiments import suite_eval

        res = suite_eval.run(archs=["kepler"], kernels=["dot", "gemm"])
        assert res["members"] == ["dot", "gemm"]
        assert len(res["accuracy"]) == 2 and len(res["quality"]) == 2
        for row in res["accuracy"]:
            assert row["time_mae"] >= 0 and row["variants"] > 0
        for row in res["quality"]:
            assert row["static_quality"] >= 1.0 - 1e-9
            assert 0 <= row["static_reduction"] < 1
        text = suite_eval.render(res)
        assert "model accuracy" in text and "autotuning quality" in text
        assert "reduction" in text  # the tag listing

    def test_tag_filter(self):
        from repro.experiments import suite_eval

        res = suite_eval.run(archs=["kepler"], tags=["reduction"])
        assert res["members"] == ["dot", "histogram"]

    def test_empty_corpus_raises(self):
        from repro.experiments import suite_eval

        with pytest.raises(ValueError, match="no corpus members"):
            suite_eval.run(archs=["kepler"], tags=["reduction"],
                           kernels=["atax"])

    def test_runner_dispatch(self):
        from repro.experiments.runner import run_experiment

        text = run_experiment("suite", archs=["kepler"], kernels=["atax"],
                              tags=None)
        assert "atax" in text


class TestRunnerValidation:
    @pytest.mark.parametrize("argv,fragment", [
        (["--kernel", "nope", "fig4"], "unknown kernel"),
        (["--arch", "volta", "fig4"], "unknown architecture"),
        (["--tag", "fast", "suite"], "unknown tag"),
        (["--tag", "compute-bound", "--kernel", "dot", "suite"],
         "matches both"),
    ])
    def test_bad_filter_values_fail_fast(self, argv, fragment, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert fragment in capsys.readouterr().err
