"""The differential fuzzing harness.

Three layers: the always-on corpus replay (minimized reproducers from
past campaigns must keep passing bit-identically), the budgeted random
campaign itself (marked ``fuzz``; ``REPRO_FUZZ_BUDGET`` scales it, CI's
nightly schedule runs 10x), and the harness's own machinery -- generator
determinism, reference independence, serialization round-trips, the
delta-debugging shrinker, and the mutation smoke test proving the
differential check actually detects an injected vector-path defect.
"""

import glob
import os

import numpy as np
import pytest

from repro.fuzz import (
    CampaignResult,
    Mismatch,
    check_program,
    fuzz_budget,
    generate_program,
    load_program,
    program_from_json,
    program_to_json,
    reference_run,
    run_fuzz_campaign,
    shrink_program,
)
from repro.codegen.ast_nodes import AtomicAdd, walk_stmts
from repro.sim.vector import set_fault_hook

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


@pytest.fixture(autouse=True)
def _no_leftover_fault_hook():
    yield
    set_fault_hook(None)


class TestCorpusReplay:
    """Minimized reproducers are permanent regression locks: every file
    must replay through the full three-way check with zero diffs."""

    def test_corpus_is_populated(self):
        assert len(CORPUS_FILES) >= 3

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
    )
    def test_reproducer_replays_clean(self, path):
        program = load_program(path)
        mismatch = check_program(program)
        assert mismatch is None, str(mismatch)


class TestGenerator:
    def test_deterministic(self):
        a, b = generate_program(42), generate_program(42)
        assert program_to_json(a) == program_to_json(b)
        assert str(a.spec) == str(b.spec)

    def test_seeds_differ(self):
        assert str(generate_program(1).spec) != str(generate_program(2).spec)

    def test_barrier_programs_are_lockstep(self):
        # every barrier program must launch with N a multiple of tc*bc
        found = 0
        for seed in range(60):
            p = generate_program(seed)
            if p.spec.smem_arrays:
                found += 1
                assert p.n % (p.tc * p.bc) == 0
        assert found > 0

    def test_fresh_inputs_are_copies(self):
        p = generate_program(3)
        one, two = p.fresh_inputs(), p.fresh_inputs()
        one["out"][:] = 7.0
        assert not np.any(two["out"])


class TestReference:
    def test_masked_tail_unwritten(self):
        # lanes with i >= N must leave out[] slots untouched -- run a
        # strided program and check the reference wrote exactly [0, N)
        for seed in range(30):
            p = generate_program(seed)
            if p.note == "strided" and p.n % p.tc:
                mem = reference_run(p)
                assert mem["out"].shape == (p.n,)
                return
        pytest.skip("no strided program with a ragged tail in range")

    def test_agrees_with_emulator_on_fixed_seeds(self):
        for seed in (0, 17, 839):
            assert check_program(generate_program(seed)) is None


class TestSerialization:
    @pytest.mark.parametrize("seed", (0, 5, 839))
    def test_roundtrip(self, seed):
        p = generate_program(seed)
        q = program_from_json(program_to_json(p))
        assert str(p.spec) == str(q.spec)
        assert (p.tc, p.bc, p.output_names) == (q.tc, q.bc, q.output_names)
        for name, v in p.inputs.items():
            if isinstance(v, np.ndarray):
                assert v.tobytes() == q.inputs[name].tobytes()
                assert v.dtype == q.inputs[name].dtype
            else:
                assert v == q.inputs[name]

    def test_unknown_schema_rejected(self):
        doc = program_to_json(generate_program(0))
        doc["schema"] = 99
        with pytest.raises(ValueError, match="unknown fuzz schema"):
            program_from_json(doc)


class TestShrinker:
    def _atomic_program(self):
        for seed in range(40):
            p = generate_program(seed)
            if any(isinstance(s, AtomicAdd)
                   for s in walk_stmts(p.spec.body)):
                return p
        raise AssertionError("no atomic program in seed range")

    def test_minimizes_to_the_triggering_statement(self):
        # synthetic defect: "fails whenever an atomicAdd is present" --
        # the shrinker must strip everything else away
        program = self._atomic_program()

        def fake_check(p):
            if any(isinstance(s, AtomicAdd) for s in walk_stmts(p.spec.body)):
                return Mismatch("synthetic", "has atomic", p)
            return None

        small = shrink_program(program, fake_check, max_checks=400)
        assert fake_check(small) is not None
        body = small.spec.body[0].body
        assert len(body) == 1 and isinstance(body[0], AtomicAdd)
        # unused arrays were pruned from params and inputs alike
        assert set(p.name for p in small.spec.params) == \
            {n for n in small.inputs}
        assert len(small.spec.params) < len(program.spec.params)

    def test_passing_program_returned_unchanged(self):
        p = generate_program(0)
        assert shrink_program(p, lambda _: None) is p


class TestCampaign:
    def test_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_BUDGET", "3")
        assert fuzz_budget() == 3
        result = run_fuzz_campaign()
        assert result.programs == 3 and result.ok
        assert "no mismatches" in result.summary()

    def test_failure_summary_names_seeds(self):
        r = CampaignResult(programs=2)
        r.failures.append(
            Mismatch("counter", "x", generate_program(1))
        )
        assert "seeds: [1]" in r.summary()

    @pytest.mark.fuzz
    def test_default_budget_campaign_is_clean(self):
        # failures are shrunk and dumped next to the curated corpus so
        # the CI artifact upload ships ready-made regression locks
        result = run_fuzz_campaign(corpus_dir=CORPUS_DIR)
        assert result.programs == fuzz_budget()
        assert result.ok, "\n\n".join(str(m) for m in result.failures)


class TestMutationSmoke:
    """Inject a silent wrong-value defect into the vectorized path and
    prove the differential campaign catches it within a small budget --
    the fuzzer's own end-to-end detection guarantee."""

    def test_injected_fault_is_detected(self):
        def mutant(op, ins, val):
            arr = np.asarray(val)
            if arr.dtype == np.float32:
                return arr + np.float32(0.25)
            return val

        set_fault_hook(mutant)
        try:
            result = run_fuzz_campaign(
                budget=10, do_shrink=False, max_failures=1
            )
        finally:
            set_fault_hook(None)
        assert not result.ok
        kinds = {m.kind for m in result.failures}
        assert kinds & {"memory:scalar-vs-vector", "counter", "result"}, kinds

    def test_hook_removal_restores_agreement(self):
        set_fault_hook(lambda op, ins, val: val)
        set_fault_hook(None)
        assert check_program(generate_program(0)) is None
