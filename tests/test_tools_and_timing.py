"""Tests for the CLI tools and timing-model units."""


import pytest

from repro.arch import K20, P100
from repro.codegen.compiler import CompileOptions, compile_module
from repro.codegen.regions import MemAccess
from repro.kernels import get_benchmark
from repro.ptx.isa import DType, MemSpace
from repro.sim.timing import (
    LaunchConfig,
    ModelParams,
    TimingModel,
    measure_benchmark,
)
from repro.tools import main as tools_main


class TestToolsCLI:
    def test_analyze(self, capsys):
        assert tools_main(["analyze", "atax", "--arch", "kepler",
                           "--size", "64", "-v"]) == 0
        out = capsys.readouterr().out
        assert "T*" in out and "ptxas" in out and "pipeline" in out

    def test_disasm(self, capsys):
        assert tools_main(["disasm", "matvec2d", "--arch", "fermi"]) == 0
        out = capsys.readouterr().out
        assert ".kernel matvec2d" in out and "red.global.add" in out

    def test_occupancy(self, capsys):
        assert tools_main(["occupancy", "--arch", "kepler",
                           "-t", "256", "-r", "32"]) == 0
        out = capsys.readouterr().out
        assert "occ=" in out and "limits:" in out

    def test_suggest(self, capsys):
        assert tools_main(["suggest", "atax", "--arch", "maxwell"]) == 0
        out = capsys.readouterr().out
        assert "T* range" in out and "toolkit-style" in out

    def test_tune_static(self, capsys):
        assert tools_main(["tune", "atax", "--arch", "kepler",
                           "--size", "64", "--search", "random",
                           "--budget", "10"]) == 0
        out = capsys.readouterr().out
        assert "best" in out and "measurements" in out


class TestLaunchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 24)
        with pytest.raises(ValueError):
            LaunchConfig(32, 0)

    def test_total_threads(self):
        assert LaunchConfig(128, 4).total_threads == 512


class TestMemAccessTransactions:
    def test_coalesced_f32(self):
        a = MemAccess(MemSpace.GLOBAL, DType.F32, "coalesced", 1, False)
        assert a.transactions_per_warp() == 1

    def test_coalesced_f64_needs_two_lines_worth(self):
        a = MemAccess(MemSpace.GLOBAL, DType.F64, "coalesced", 1, False)
        assert a.transactions_per_warp() == 2

    def test_uniform(self):
        a = MemAccess(MemSpace.GLOBAL, DType.F32, "uniform", 0, False)
        assert a.transactions_per_warp() == 1

    def test_wide_stride_fully_scattered(self):
        a = MemAccess(MemSpace.GLOBAL, DType.F32, "strided", 512, False)
        assert a.transactions_per_warp() == 32

    def test_small_stride_partial(self):
        a = MemAccess(MemSpace.GLOBAL, DType.F32, "strided", 2, False)
        assert 1 < a.transactions_per_warp() <= 16

    def test_shared_single(self):
        a = MemAccess(MemSpace.SHARED, DType.F32, "strided", 32, False)
        assert a.transactions_per_warp() == 1


class TestTimingModelUnits:
    @pytest.fixture(scope="class")
    def atax_mod(self):
        bm = get_benchmark("atax")
        return compile_module("atax", list(bm.specs),
                              CompileOptions(gpu=K20))

    def test_monotone_in_problem_size(self, atax_mod):
        tm = TimingModel(K20)
        launch = LaunchConfig(128, 48)
        ts = [tm.benchmark_time(atax_mod, launch, {"N": n})
              for n in (64, 128, 256, 512)]
        assert ts == sorted(ts)

    def test_breakdown_fields_consistent(self, atax_mod):
        tm = TimingModel(K20)
        kt = tm.kernel_time(atax_mod.kernels[0], LaunchConfig(128, 48),
                            {"N": 256})
        assert kt.cycles >= max(kt.issue_cycles, kt.latency_cycles,
                                kt.mem_cycles)
        assert kt.seconds > kt.cycles * K20.cycle_time_s  # launch overhead
        assert kt.dram_bytes > 0
        assert 0 < kt.occupancy <= 1
        assert kt.waves >= 1

    def test_noise_protocol_fifth_trial(self, atax_mod):
        env = {"N": 128}
        launch = LaunchConfig(128, 48)
        a = measure_benchmark(atax_mod, launch, env)
        b = measure_benchmark(atax_mod, launch, env)
        assert a == b  # seeded: reproducible
        det = TimingModel(K20).benchmark_time(atax_mod, launch, env)
        assert a != det  # but noisy around the deterministic value
        assert abs(a - det) / det < 0.5

    def test_custom_params_change_result(self, atax_mod):
        env = {"N": 256}
        launch = LaunchConfig(512, 48)
        base = TimingModel(K20).benchmark_time(atax_mod, launch, env)
        slow = TimingModel(
            K20, ModelParams(launch_overhead_s=1e-3)
        ).benchmark_time(atax_mod, launch, env)
        assert slow > base

    def test_p100_spread_advantage(self):
        """More SMs reward spreading small-M kernels across more blocks."""
        bm = get_benchmark("atax")
        mod = compile_module("atax", list(bm.specs),
                             CompileOptions(gpu=P100))
        tm = TimingModel(P100)
        env = {"N": 512}
        concentrated = tm.benchmark_time(mod, LaunchConfig(512, 48), env)
        spread = tm.benchmark_time(mod, LaunchConfig(64, 48), env)
        assert spread < concentrated
