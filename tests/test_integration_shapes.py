"""Integration tests asserting the paper's headline qualitative results.

These are the claims EXPERIMENTS.md reports; if a refactor breaks one of
them, the reproduction no longer reproduces the paper.
"""

import numpy as np
import pytest

from repro.arch import K20
from repro.autotune import Autotuner
from repro.autotune.space import Parameter, ParameterSpace
from repro.core.analyzer import StaticAnalyzer
from repro.kernels import get_benchmark
from repro.sim.timing import LaunchConfig, TimingModel
from repro.codegen.compiler import CompileOptions, compile_module


def _rank_medians(name: str, size: int):
    space = ParameterSpace([
        Parameter("TC", tuple(range(32, 1025, 32))),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1,)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("",)),
    ])
    bm = get_benchmark(name)
    tuner = Autotuner(bm, K20, space=space)
    res = tuner.sweep(sizes=(size,))
    r1 = [rv.measurement.config["TC"] for rv in res.ranked() if rv.rank == 1]
    r2 = [rv.measurement.config["TC"] for rv in res.ranked() if rv.rank == 2]
    return float(np.median(r1)), float(np.median(r2))


class TestThreadPreferences:
    """Fig. 4 / Table V: who prefers which thread range."""

    @pytest.mark.parametrize("name", ["atax", "bicg"])
    def test_memory_kernels_prefer_lower_threads(self, name):
        m1, m2 = _rank_medians(name, 512)
        assert m1 < m2
        assert m1 <= 480

    @pytest.mark.parametrize("name,size", [("matvec2d", 512),
                                           ("ex14fj", 64)])
    def test_compute_kernels_prefer_upper_threads(self, name, size):
        m1, m2 = _rank_medians(name, size)
        assert m1 > m2


class TestIntensityRule:
    """Sec. III-C: the 4.0 threshold sends kernels to the correct range."""

    def test_rule_agrees_with_empirical_preference(self):
        """The rule-selected thread range must contain a variant within
        15% of the exhaustive optimum (reduced space)."""
        from repro.experiments.common import reduced_space

        for name, size in (("atax", 256), ("ex14fj", 32)):
            bm = get_benchmark(name)
            tuner = Autotuner(bm, K20, space=reduced_space())
            ex = tuner.tune(size=size, search="exhaustive")
            rb = tuner.tune(size=size, search="static", use_rule=True)
            assert rb.best_seconds <= 1.15 * ex.best_seconds, name


class TestUnlaunchableConfigs:
    def test_block_too_large(self):
        bm = get_benchmark("atax")
        mod = compile_module("atax", list(bm.specs), CompileOptions(gpu=K20))
        tm = TimingModel(K20)
        t = tm.kernel_time(mod.kernels[0], LaunchConfig(2048, 24), {"N": 64})
        assert t.unlaunchable and t.seconds == float("inf")


class TestFastMathHelpsEx14fj:
    def test_fast_math_faster(self):
        """-use_fast_math shortens the exp-heavy kernel measurably."""
        bm = get_benchmark("ex14fj")
        env = bm.param_env(64)
        tm = TimingModel(K20)
        slow = compile_module("e", list(bm.specs),
                              CompileOptions(gpu=K20, fast_math=False))
        fast = compile_module("e", list(bm.specs),
                              CompileOptions(gpu=K20, fast_math=True))
        launch = LaunchConfig(256, 96)
        assert (tm.benchmark_time(fast, launch, env)
                < tm.benchmark_time(slow, launch, env))


class TestUnrollingHelps:
    def test_some_unrolling_beats_none_for_loop_kernels(self):
        bm = get_benchmark("atax")
        env = bm.param_env(512)
        tm = TimingModel(K20)
        launch = LaunchConfig(128, 48)
        t1 = tm.benchmark_time(
            compile_module("a", list(bm.specs),
                           CompileOptions(gpu=K20, unroll_factor=1)),
            launch, env)
        t4 = tm.benchmark_time(
            compile_module("a", list(bm.specs),
                           CompileOptions(gpu=K20, unroll_factor=4)),
            launch, env)
        assert t4 < t1


class TestStaticAnalysisIsStatic:
    def test_no_measurement_during_analysis(self, monkeypatch):
        """The analyzer must never call the timing/measurement substrate."""
        import repro.sim.timing as timing

        def boom(*a, **k):  # pragma: no cover - should never run
            raise AssertionError("static analysis executed a kernel!")

        monkeypatch.setattr(timing, "measure_benchmark", boom)
        monkeypatch.setattr(timing, "simulate_benchmark_time", boom)
        bm = get_benchmark("ex14fj")
        rep = StaticAnalyzer(K20).analyze(
            list(bm.specs), bm.param_env(16), name="ex14fj"
        )
        assert rep.suggestion.threads
