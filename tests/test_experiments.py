"""Smoke + structure tests for every experiment module.

Each experiment must run on a trimmed configuration and render non-empty
text mentioning its subject; the cheap ones also assert the key numbers
they reproduce.
"""

import pytest

from repro.experiments import (
    fig1_divergence,
    fig3_spec,
    fig6_search_improvement,
    fig7_occupancy_calc,
    table1_gpus,
    table2_throughput,
    table6_mix_errors,
    table7_suggestions,
)
from repro.experiments.runner import run_experiment


class TestStaticExperiments:
    def test_table1(self):
        res = table1_gpus.run()
        assert res["gpus"] == ["M2050", "K20", "M40", "P100"]
        text = table1_gpus.render(res)
        assert "Multiprocessors" in text and "1024" in text

    def test_table2(self):
        res = table2_throughput.run()
        assert res["sms"] == [20, 35, 52, 60]
        assert "LogSinCos" in table2_throughput.render(res)

    def test_fig3(self):
        res = fig3_spec.run()
        assert res["size"] == 5120
        assert "PerfTuning" in fig3_spec.render(res)

    def test_table7(self):
        res = table7_suggestions.run(archs=["kepler"], kernels=["atax"])
        row = res["rows"][0]
        assert row["threads"] == [128, 256, 512, 1024]
        assert row["occ"] == 1.0
        assert "T*" in table7_suggestions.render(res)

    def test_fig7(self):
        res = fig7_occupancy_calc.run(archs=["fermi"])
        panel = res["panels"]["M2050"]
        assert max(panel["current"]) == 1.0
        assert "occupancy" in fig7_occupancy_calc.render(res)


class TestDynamicExperiments:
    def test_fig1_divergence_monotone(self):
        res = fig1_divergence.run(n=256, tc=64, bc=2,
                                  path_counts=(1, 2, 4))
        effs = [r["simd_efficiency"] for r in res["rows"]]
        assert effs[0] == pytest.approx(1.0)
        assert effs[0] > effs[1] > effs[2]
        inflations = [r["issue_inflation"] for r in res["rows"]]
        assert inflations == sorted(inflations)
        assert "divergence" in fig1_divergence.render(res)

    def test_table6_structure(self):
        res = table6_mix_errors.run(archs=["kepler"], kernels=["atax"])
        row = res["rows"][0]
        assert row["flops"] >= 0 and row["mem"] >= 0
        assert row["intensity"] == pytest.approx(3.5, abs=0.3)
        assert "static" in table6_mix_errors.render(res)

    def test_fig6_improvements(self):
        res = fig6_search_improvement.run(
            archs=["kepler"], kernels=["atax"], verify_quality=False
        )
        row = res["rows"][0]
        assert row["static_improvement"] == pytest.approx(0.875)
        assert row["rb_improvement"] == pytest.approx(0.9375)
        # the black-box baselines ride along at the static budget
        for name in ("random", "annealing", "genetic", "simplex"):
            assert 0 < row[f"{name}_evals"] <= row["static_evals"]
        text = fig6_search_improvement.render(res)
        assert "improvement" in text.lower()
        assert "annealing" in text


class TestRunner:
    def test_run_experiment_dispatch(self):
        text = run_experiment("table2")
        assert "SM35" in text

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_kwarg_filtering(self):
        # table1 accepts no kwargs; passing arch must not break it
        text = run_experiment("table1", archs=["kepler"], full=True)
        assert "M2050" in text
