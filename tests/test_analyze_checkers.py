"""Checker end-to-end tests: seeded-bug variants of real corpus kernels.

Each test plants one defect the corpus is free of -- a dropped
``bar.sync`` in dot, a barrier inside a divergent guard in a scan-shaped
kernel, an off-by-one Dirichlet frame in jacobi2d, a guarded-arm
use-before-def -- and asserts the exact diagnostic: check id, block, and
instruction index.
"""

import dataclasses

from repro.analyze import analyze_kernel, context_for_benchmark
from repro.analyze.values import LaunchContext
from repro.arch import K20
from repro.codegen import dsl
from repro.codegen.ast_nodes import Load, Store
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import get_benchmark
from repro.ptx.instruction import Imm, Instruction, Reg
from repro.ptx.isa import CmpOp, DType, Opcode
from repro.ptx.module import KernelIR, KernelParam

TILE = 128


def _compile_one(name, spec):
    module = compile_module(name, [spec], CompileOptions(gpu=K20))
    return next(iter(module))


class TestSmemRace:
    def _dot_without_first_barrier(self):
        bench = get_benchmark("dot")
        ck = _compile_one("dot", bench.specs[0])
        body = list(ck.ir.body)
        bar = next(
            i for i, it in enumerate(body)
            if isinstance(it, Instruction) and it.opcode is Opcode.BAR
        )
        return dataclasses.replace(ck.ir, body=body[:bar] + body[bar + 1:])

    def test_clean_dot_has_no_race(self):
        bench = get_benchmark("dot")
        ck = _compile_one("dot", bench.specs[0])
        report = analyze_kernel(ck.ir, context_for_benchmark(bench))
        assert report.diagnostics == []

    def test_dropped_barrier_is_a_race(self):
        bench = get_benchmark("dot")
        report = analyze_kernel(
            self._dot_without_first_barrier(), context_for_benchmark(bench)
        )
        assert [
            (d.check, d.block, d.index) for d in report.diagnostics
        ] == [("smem-race", "$L_ploop_2", 13)]
        (diag,) = report.diagnostics
        # the staging store now conflicts with the tree-reduction load
        assert "st.shared" in diag.message
        assert "ld.shared at $B2[6]" in diag.message


class TestDivergentBarrier:
    def _scan_with_guarded_sync(self):
        n = dsl.sparam("N")
        x = dsl.farray("x")
        out = dsl.farray("out")
        i = dsl.ivar("i")
        lane = dsl.ivar("lane")

        def buf(name, index):
            return Load(name, dsl._as_expr(index), DType.F32)

        return dsl.kernel(
            "scan_divbar", params=[n, x, out],
            body=[dsl.pfor(i, n, [
                dsl.assign("lane", i % TILE),
                Store("sa", lane, x[i]),
                dsl.sync(),
                dsl.when((i % TILE).ge(1), [
                    Store("sb", lane, buf("sa", lane) + buf("sa", lane - 1)),
                    dsl.sync(),  # seeded bug: barrier on one arm only
                ], [Store("sb", lane, buf("sa", lane))]),
                out.store(i, buf("sb", lane)),
                dsl.sync(),
            ])],
            smem_arrays=(("sa", TILE, DType.F32), ("sb", TILE, DType.F32)),
        )

    def test_barrier_under_divergent_guard_is_flagged(self):
        ctx = context_for_benchmark(get_benchmark("scan"))
        ck = _compile_one("scan_divbar", self._scan_with_guarded_sync())
        report = analyze_kernel(ck.ir, ctx)
        hits = [
            (d.check, d.block, d.index)
            for d in report.diagnostics
            if d.check == "divergent-barrier"
        ]
        assert ("divergent-barrier", "$B2", 11) in hits
        diag = next(d for d in report.diagnostics
                    if d.check == "divergent-barrier")
        assert "not provably block-uniform" in diag.message

    def test_real_scan_is_clean(self):
        bench = get_benchmark("scan")
        ck = _compile_one("scan", bench.specs[0])
        report = analyze_kernel(ck.ir, context_for_benchmark(bench))
        assert report.diagnostics == []


class TestOutOfBounds:
    def _jacobi2d_with_bad_frame(self):
        n = dsl.sparam("N")
        a = dsl.farray("A")
        b = dsl.farray("B")
        i, j, flat = dsl.ivars("i", "j", "n")
        fifth = dsl.f32(0.2)

        def edge(c):
            return dsl.either(c.eq(0), c.eq(n - 2))  # seeded: N-2, not N-1

        return dsl.kernel(
            "jacobi2d_oob", params=[n, a, b],
            body=[dsl.pfor2d(i, j, n, n, [
                dsl.when(
                    dsl.either(edge(flat // n), edge(flat % n)),
                    [b.store(flat, a[flat])],
                    [b.store(flat, fifth * (a[flat] + a[flat - 1]
                                            + a[flat + 1] + a[flat - n]
                                            + a[flat + n]))],
                ),
            ], flat=flat)],
        )

    def test_off_by_one_frame_reads_past_the_array(self):
        ctx = context_for_benchmark(get_benchmark("jacobi2d"))
        ck = _compile_one("jacobi2d_oob", self._jacobi2d_with_bad_frame())
        report = analyze_kernel(ck.ir, ctx)
        # the last row is now "interior": A[n+1] and A[n+N] both escape
        assert [
            (d.check, d.block, d.index) for d in report.diagnostics
        ] == [
            ("out-of-bounds", "$L_else_4", 11),
            ("out-of-bounds", "$L_else_4", 21),
        ]
        first, second = report.diagnostics
        assert "[132, 4099] exceeds A extent 4096" in first.message
        assert "[256, 4223] exceeds A extent 4096" in second.message

    def test_real_jacobi2d_is_clean(self):
        bench = get_benchmark("jacobi2d")
        ck = _compile_one("jacobi2d", bench.specs[0])
        report = analyze_kernel(ck.ir, context_for_benchmark(bench))
        assert report.diagnostics == []


class TestUninitRead:
    def _guarded_ir(self, read_negated: bool) -> KernelIR:
        r1, r2, r3 = (Reg(f"%r{k}", DType.S32) for k in (1, 2, 3))
        p = Reg("%p1", DType.PRED)
        body = [
            Instruction(Opcode.MOV, DType.S32, r1, (Imm(7, DType.S32),)),
            Instruction(Opcode.SETP, DType.S32, p,
                        (r1, Imm(0, DType.S32)), cmp=CmpOp.GT),
            Instruction(Opcode.MOV, DType.S32, r2, (Imm(1, DType.S32),),
                        pred=p),
            Instruction(Opcode.ADD, DType.S32, r3,
                        (r2, Imm(1, DType.S32)), pred=p,
                        pred_negated=read_negated),
            Instruction(Opcode.EXIT),
        ]
        return KernelIR(
            name="guarded", params=(KernelParam("N", DType.S32, False),),
            body=body, regs_per_thread=4, static_smem_bytes=0,
        )

    def test_opposite_polarity_read_is_flagged(self):
        report = analyze_kernel(
            self._guarded_ir(read_negated=True), LaunchContext(tc=32, bc=1)
        )
        assert [
            (d.check, d.block, d.index) for d in report.diagnostics
        ] == [("uninit-read", "$B1", 3)]
        (diag,) = report.diagnostics
        assert "%r2" in diag.message

    def test_same_polarity_read_is_clean(self):
        report = analyze_kernel(
            self._guarded_ir(read_negated=False), LaunchContext(tc=32, bc=1)
        )
        assert report.diagnostics == []
