"""Tests for the Table II throughput tables."""

import pytest

from repro.arch import K20, M40
from repro.arch.throughput import (
    THROUGHPUT_BY_SM,
    InstrCategory,
    PipeClass,
    ThroughputTable,
    cpi,
    ipc,
    throughput_for,
)


class TestTableIIValues:
    @pytest.mark.parametrize(
        "cat,expected",
        [
            (InstrCategory.FP32, (32, 192, 128, 64)),
            (InstrCategory.FP64, (16, 64, 4, 32)),
            (InstrCategory.COMP_MINMAX, (32, 160, 64, 32)),
            (InstrCategory.SHIFT, (16, 32, 64, 32)),
            (InstrCategory.CONV64, (16, 8, 4, 16)),
            (InstrCategory.CONV32, (16, 128, 32, 16)),
            (InstrCategory.LOG_SIN_COS, (4, 32, 32, 16)),
            (InstrCategory.INT_ADD32, (32, 160, 64, 32)),
            (InstrCategory.LDST, (16, 32, 64, 16)),
            (InstrCategory.PRED_CTRL, (16, 32, 64, 16)),
            (InstrCategory.MOVE, (32, 32, 32, 32)),
            (InstrCategory.REGS, (16, 32, 32, 16)),
        ],
    )
    def test_row(self, cat, expected):
        got = tuple(THROUGHPUT_BY_SM[sm].ipc(cat) for sm in (20, 35, 52, 60))
        assert got == expected

    def test_all_sm_versions_present(self):
        assert sorted(THROUGHPUT_BY_SM) == [20, 35, 52, 60]

    def test_every_category_covered(self):
        for sm, table in THROUGHPUT_BY_SM.items():
            for cat in InstrCategory:
                assert table.ipc(cat) > 0


class TestCPI:
    def test_cpi_is_reciprocal(self):
        t = THROUGHPUT_BY_SM[35]
        for cat in InstrCategory:
            assert t.cpi(cat) == pytest.approx(1.0 / t.ipc(cat))

    def test_pipe_cpi_uses_representatives(self):
        t = THROUGHPUT_BY_SM[35]
        assert t.pipe_cpi(PipeClass.FLOPS) == pytest.approx(1 / 192)
        assert t.pipe_cpi(PipeClass.MEM) == pytest.approx(1 / 32)
        assert t.pipe_cpi(PipeClass.CTRL) == pytest.approx(1 / 32)
        assert t.pipe_cpi(PipeClass.REG) == pytest.approx(1 / 32)

    def test_throughput_weights_higher_cost_for_slow_ops(self):
        # the paper: "an operation with a high throughput would cost less
        # to issue than an operation with a lower instruction throughput"
        t = THROUGHPUT_BY_SM[20]
        assert t.cpi(InstrCategory.LOG_SIN_COS) > t.cpi(InstrCategory.FP32)


class TestPipeMapping:
    def test_flops_class_members(self):
        flops = {c for c in InstrCategory if c.pipe is PipeClass.FLOPS}
        assert InstrCategory.FP32 in flops
        assert InstrCategory.INT_ADD32 in flops
        assert InstrCategory.LOG_SIN_COS in flops
        assert InstrCategory.LDST not in flops

    def test_mem_ctrl_reg(self):
        assert InstrCategory.LDST.pipe is PipeClass.MEM
        assert InstrCategory.PRED_CTRL.pipe is PipeClass.CTRL
        assert InstrCategory.MOVE.pipe is PipeClass.CTRL
        assert InstrCategory.REGS.pipe is PipeClass.REG


class TestAccess:
    def test_throughput_for_spec(self):
        assert throughput_for(K20).sm_version == 35
        assert throughput_for(52) is THROUGHPUT_BY_SM[52]

    def test_convenience_functions(self):
        assert ipc(M40, InstrCategory.FP32) == 128
        assert cpi(M40, InstrCategory.FP32) == pytest.approx(1 / 128)

    def test_unknown_sm_raises(self):
        with pytest.raises(KeyError):
            ThroughputTable.for_sm(70)

    def test_as_rows_shape(self):
        rows = THROUGHPUT_BY_SM[60].as_rows()
        assert len(rows) == len(InstrCategory)
        assert all(len(r) == 2 for r in rows)
