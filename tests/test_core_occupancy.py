"""Tests for the paper's occupancy model (Eqs. 1-5), including agreement
with the hardware-side block scheduler and the paper's published T* sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ALL_GPUS, K20, M2050, M40, P100
from repro.core.occupancy import (
    blocks_limited_by_registers,
    blocks_limited_by_smem,
    blocks_limited_by_warps,
    occupancy,
    occupancy_curve,
)
from repro.sim.occupancy_hw import hw_occupancy, hw_resident_blocks


class TestWarpLimiter:
    def test_full_block_fermi(self):
        # 1024 threads = 32 warps; Fermi holds 48 warps -> 1 block
        assert blocks_limited_by_warps(M2050, 1024) == 1

    def test_small_block_hits_block_limit(self):
        # 32 threads = 1 warp; limited by B^cc_mp, not warps
        assert blocks_limited_by_warps(M2050, 32) == 8
        assert blocks_limited_by_warps(K20, 32) == 16
        assert blocks_limited_by_warps(M40, 32) == 32

    def test_oversized_block(self):
        assert blocks_limited_by_warps(K20, 1056) == 0

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            blocks_limited_by_warps(K20, 0)


class TestRegisterLimiter:
    def test_case1_illegal(self):
        assert blocks_limited_by_registers(M2050, 64, 256) == 0
        assert blocks_limited_by_registers(K20, 256, 256) == 0

    def test_case3_unconstrained(self):
        assert blocks_limited_by_registers(K20, 0, 256) == K20.max_blocks_per_mp

    def test_case2_fermi_block_granularity(self):
        # 21 regs, 768 threads (24 warps, rounded to 24): Fermi fits 2 blocks
        assert blocks_limited_by_registers(M2050, 21, 768) == 2
        # 27 regs, 192 threads: ceil(27*32*6, 64)=5184 -> 6 blocks
        assert blocks_limited_by_registers(M2050, 27, 192) == 6

    def test_case2_kepler_warp_granularity(self):
        # 32 regs: 1024 regs/warp -> 64 warps fit; 8-warp blocks -> 8 blocks
        assert blocks_limited_by_registers(K20, 32, 256) == 8

    def test_more_registers_fewer_blocks(self):
        prev = 10**9
        for regs in (8, 16, 32, 64, 128):
            cur = blocks_limited_by_registers(K20, regs, 256)
            assert cur <= prev
            prev = cur


class TestSmemLimiter:
    def test_case1_illegal(self):
        assert blocks_limited_by_smem(K20, 50000) == 0

    def test_case3_unconstrained(self):
        assert blocks_limited_by_smem(K20, 0) == K20.max_blocks_per_mp

    def test_case2(self):
        assert blocks_limited_by_smem(K20, 6144) == 8
        assert blocks_limited_by_smem(M40, 6144) == 16  # 96KB per SM


class TestOccupancy:
    def test_ideal_config(self):
        r = occupancy(K20, 256, regs_u=24, smem_u=0)
        assert r.occupancy == 1.0
        assert r.active_blocks == 8
        assert r.active_warps == 64

    def test_limiter_labels(self):
        assert occupancy(K20, 32).limiter == "warps"  # block-count limit
        r = occupancy(K20, 256, regs_u=128)
        assert r.limiter == "registers"
        r = occupancy(K20, 64, smem_u=24576)
        assert r.limiter == "smem"

    def test_illegal_config_zero(self):
        assert occupancy(K20, 256, regs_u=300).occupancy == 0.0

    def test_str(self):
        assert "occ=" in str(occupancy(K20, 128))


class TestPaperTStarSets:
    """The T* sets of Table VII per architecture (warp-limited case)."""

    @pytest.mark.parametrize(
        "gpu,expected",
        [
            (M2050, [192, 256, 384, 512, 768]),
            (K20, [128, 256, 512, 1024]),
            (M40, [64, 128, 256, 512, 1024]),
            (P100, [64, 128, 256, 512, 1024]),
        ],
    )
    def test_max_occupancy_thread_counts(self, gpu, expected):
        curve = occupancy_curve(gpu)
        best = max(r.occupancy for r in curve)
        tstar = [r.threads_u for r in curve if r.occupancy == best]
        assert tstar == expected
        assert best == 1.0

    def test_bicg_fermi_register_limited(self):
        """Paper Table VII: BiCG/Fermi with 27 registers peaks at 0.75."""
        curve = occupancy_curve(M2050, regs_u=27)
        assert max(r.occupancy for r in curve) == 0.75


class TestAgreementWithHardware:
    """The analysis model (Eqs. 1-5) and the hardware block scheduler are
    independent implementations and must agree everywhere."""

    @settings(max_examples=200, deadline=None)
    @given(
        gi=st.integers(0, 3),
        warps=st.integers(1, 32),
        regs=st.integers(0, 80),
        smem=st.integers(0, 49152),
    )
    def test_blocks_agree(self, gi, warps, regs, smem):
        gpu = ALL_GPUS[gi]
        threads = warps * 32
        expected = hw_resident_blocks(gpu, threads, regs, smem)
        got = occupancy(gpu, threads, regs, smem).active_blocks
        assert got == expected

    @settings(max_examples=100, deadline=None)
    @given(gi=st.integers(0, 3), warps=st.integers(1, 32),
           regs=st.integers(0, 64))
    def test_occupancy_agrees(self, gi, warps, regs):
        gpu = ALL_GPUS[gi]
        threads = warps * 32
        assert occupancy(gpu, threads, regs).occupancy == pytest.approx(
            hw_occupancy(gpu, threads, regs)
        )


class TestInvariants:
    @settings(max_examples=150, deadline=None)
    @given(gi=st.integers(0, 3), threads=st.integers(1, 1024),
           regs=st.integers(0, 255), smem=st.integers(0, 49152))
    def test_occupancy_in_unit_interval(self, gi, threads, regs, smem):
        r = occupancy(ALL_GPUS[gi], threads, regs, smem)
        assert 0.0 <= r.occupancy <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(gi=st.integers(0, 3), warps=st.integers(1, 32),
           regs=st.integers(1, 200))
    def test_monotone_in_registers(self, gi, warps, regs):
        gpu = ALL_GPUS[gi]
        t = warps * 32
        a = occupancy(gpu, t, regs).occupancy
        b = occupancy(gpu, t, regs + 8).occupancy
        assert b <= a
