"""The keystone validation: closed-form exact counts == emulator counts.

Also covers branch-fraction exactness (ex14FJ boundary formula), the
affine-in-threads cache, and warp-level count semantics.
"""

import pytest

from repro.arch import K20, M2050
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import get_benchmark
from repro.sim.counting import exact_branch_fraction, exact_counts
from repro.sim.emulator import run_benchmark_emulated
from repro.codegen.regions import RegionKind

from tests.conftest import make_benchmark_run

ALL_NAMES = ("atax", "bicg", "matvec2d", "ex14fj")


def _model_totals(mod, env, tc, bc):
    from collections import Counter

    total = Counter()
    reg_ops = 0.0
    for ck in mod:
        dc = exact_counts(ck, env, tc, bc)
        for cat, v in dc.by_category.items():
            total[cat] += v
        reg_ops += dc.reg_ops
    return total, reg_ops


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("tc,bc", [(32, 4), (64, 3), (96, 2)])
class TestModelMatchesEmulator:
    def test_category_counts_exact(self, name, tc, bc):
        bm, n, inputs, _ = make_benchmark_run(name)
        env = bm.param_env(n)
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
        _, emu = run_benchmark_emulated(mod, inputs, tc=tc, bc=bc)
        model, model_regs = _model_totals(mod, env, tc, bc)
        for cat in set(model) | set(emu.thread_counts):
            assert model.get(cat, 0) == pytest.approx(
                emu.thread_counts.get(cat, 0), abs=0.5
            ), f"{name} {cat} tc={tc} bc={bc}"
        assert model_regs == pytest.approx(emu.reg_ops, abs=0.5)


class TestModelMatchesEmulatorVariants:
    @pytest.mark.parametrize("uf,fm", [(3, False), (2, True)])
    def test_unrolled_fast_math(self, uf, fm):
        bm, n, inputs, _ = make_benchmark_run("ex14fj")
        env = bm.param_env(n)
        mod = compile_module(
            "ex14fj", list(bm.specs),
            CompileOptions(gpu=K20, unroll_factor=uf, fast_math=fm),
        )
        _, emu = run_benchmark_emulated(mod, inputs, tc=64, bc=2)
        model, _ = _model_totals(mod, env, 64, 2)
        for cat in set(model) | set(emu.thread_counts):
            assert model.get(cat, 0) == pytest.approx(
                emu.thread_counts.get(cat, 0), abs=0.5
            )

    def test_fermi_addressing(self):
        bm, n, inputs, _ = make_benchmark_run("atax")
        env = bm.param_env(n)
        mod = compile_module("atax", list(bm.specs),
                             CompileOptions(gpu=M2050))
        _, emu = run_benchmark_emulated(mod, inputs, tc=32, bc=2)
        model, _ = _model_totals(mod, env, 32, 2)
        for cat in set(model) | set(emu.thread_counts):
            assert model.get(cat, 0) == pytest.approx(
                emu.thread_counts.get(cat, 0), abs=0.5
            )


class TestBranchFractions:
    def test_ex14fj_boundary_fraction_exact(self):
        """The THEN fraction must equal 1 - (N-2)^3 / N^3 exactly."""
        bm = get_benchmark("ex14fj")
        for n in (8, 16, 32):
            env = bm.param_env(n)
            mod = compile_module("ex14fj", list(bm.specs),
                                 CompileOptions(gpu=K20))
            ck = mod.kernels[0]
            then_regions = [
                r for r in ck.root_region.walk()
                if r.kind is RegionKind.THEN
            ]
            assert len(then_regions) == 1
            ploop = next(
                r for r in ck.root_region.walk()
                if r.kind is RegionKind.PLOOP
            )
            frac = exact_branch_fraction(then_regions[0], env, [ploop])
            expected = 1.0 - (n - 2) ** 3 / n**3
            assert frac == pytest.approx(expected, abs=1e-12)

    def test_warp_level_at_least_thread_level(self):
        bm = get_benchmark("ex14fj")
        env = bm.param_env(16)
        mod = compile_module("ex14fj", list(bm.specs),
                             CompileOptions(gpu=K20))
        ck = mod.kernels[0]
        t = exact_counts(ck, env, 64, 4, warp_level=False)
        w = exact_counts(ck, env, 64, 4, warp_level=True)
        for cat, n in t.by_category.items():
            assert w.by_category[cat] >= n - 0.5


class TestAffineCache:
    def test_counts_affine_in_threads(self):
        """counts(T) must be exactly affine: the cached reconstruction at
        any T equals a direct evaluation."""
        from repro.codegen.regions import evaluate_region_tree

        bm = get_benchmark("atax")
        env = bm.param_env(32)
        mod = compile_module("atax", list(bm.specs), CompileOptions(gpu=K20))
        ck = mod.kernels[0]
        via_cache = exact_counts(ck, env, 96, 7)
        from repro.sim.counting import exact_branch_fraction as ebf

        direct = evaluate_region_tree(
            ck.root_region, env, total_threads=96 * 7, branch_fraction=ebf
        )
        for cat, v in direct.by_category.items():
            assert via_cache.by_category[cat] == pytest.approx(v)
        assert via_cache.reg_ops == pytest.approx(direct.reg_ops)
        assert via_cache.dram_bytes == pytest.approx(direct.dram_bytes)

    def test_repeat_calls_consistent(self):
        bm = get_benchmark("matvec2d")
        env = bm.param_env(16)
        mod = compile_module("matvec2d", list(bm.specs),
                             CompileOptions(gpu=K20))
        a = exact_counts(mod.kernels[0], env, 32, 2)
        b = exact_counts(mod.kernels[0], env, 32, 2)
        assert a.by_category == b.by_category
