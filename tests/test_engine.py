"""Sweep engine tests: cache semantics, cross-process determinism, and
the cached-sweep speedup the engine exists for."""

from __future__ import annotations

import math
import time

import pytest

from repro.arch import get_gpu
from repro.autotune.measure import VariantMeasurement
from repro.autotune.space import Parameter, ParameterSpace
from repro.autotune.tuner import Autotuner
from repro.engine import (
    CacheStore,
    SweepEngine,
    build_work_list,
    compile_key,
    measurement_key,
    shard_work,
    stable_hash,
)
from repro.engine.cache import _decode, _encode
from repro.experiments import common
from repro.experiments.runner import main as runner_main
from repro.kernels import get_benchmark
from repro.sim.timing import DEFAULT_PARAMS, ModelParams


@pytest.fixture(autouse=True)
def _reset_experiment_state():
    """Runner tests mutate the process-wide sweep policy; undo it."""
    yield
    common.configure_sweeps()
    common.clear_sweep_cache()


def tiny_space() -> ParameterSpace:
    return ParameterSpace([
        Parameter("TC", (64, 128, 256, 512)),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])


ATAX = get_benchmark("atax")
K20 = get_gpu("kepler")


# ---------------------------------------------------------------------------
# keys and the store


class TestCacheKeys:
    def test_stable_hash_ignores_dict_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_key_is_reproducible(self):
        cfg = {"TC": 64, "BC": 48, "UIF": 1, "PL": 16, "CFLAGS": ""}
        k1 = measurement_key("atax", K20, cfg, 128, DEFAULT_PARAMS)
        k2 = measurement_key("atax", K20, dict(reversed(cfg.items())),
                             128, DEFAULT_PARAMS)
        assert k1 == k2

    def test_key_separates_every_axis(self):
        cfg = {"TC": 64, "BC": 48, "UIF": 1, "PL": 16, "CFLAGS": ""}
        base = measurement_key("atax", K20, cfg, 128, DEFAULT_PARAMS)
        assert measurement_key("bicg", K20, cfg, 128,
                               DEFAULT_PARAMS) != base
        assert measurement_key("atax", get_gpu("fermi"), cfg, 128,
                               DEFAULT_PARAMS) != base
        assert measurement_key("atax", K20, {**cfg, "TC": 128}, 128,
                               DEFAULT_PARAMS) != base
        assert measurement_key("atax", K20, cfg, 256,
                               DEFAULT_PARAMS) != base
        assert measurement_key("atax", K20, cfg, 128,
                               ModelParams(chain_fp=11.0)) != base
        assert measurement_key("atax", K20, cfg, 128, DEFAULT_PARAMS,
                               repetitions=20) != base

    def test_measurement_roundtrip_including_inf(self):
        m = VariantMeasurement(
            config={"TC": 2048, "BC": 48}, size=64,
            seconds=float("inf"), occupancy=0.0,
            regs_per_thread=32, reg_instructions=0.0,
        )
        back = _decode(_encode(m))
        assert back == m and math.isinf(back.seconds)


class TestCacheStore:
    def test_miss_then_hit(self, tmp_path):
        store = CacheStore(tmp_path)
        m = VariantMeasurement(config={"TC": 64}, size=32, seconds=1.5,
                               occupancy=0.5, regs_per_thread=20,
                               reg_instructions=10.0)
        assert store.get("k") is None
        assert store.misses == 1
        store.put("k", m)
        assert store.get("k") == m
        assert store.hits == 1
        assert len(store) == 1

    def test_batch_api_and_clear(self, tmp_path):
        store = CacheStore(tmp_path / "sweeps.sqlite")
        items = {
            f"k{i}": VariantMeasurement(
                config={"TC": i}, size=32, seconds=float(i),
                occupancy=0.5, regs_per_thread=20, reg_instructions=1.0,
            )
            for i in range(500)  # > one SELECT chunk
        }
        store.put_many(items.items())
        found = store.get_many(list(items) + ["absent"])
        assert found == items
        assert store.misses == 1
        store.clear()
        assert len(store) == 0

    def test_persists_across_connections(self, tmp_path):
        m = VariantMeasurement(config={"TC": 64}, size=32, seconds=1.5,
                               occupancy=0.5, regs_per_thread=20,
                               reg_instructions=10.0)
        CacheStore(tmp_path).put("k", m)
        assert CacheStore(tmp_path).get("k") == m


# ---------------------------------------------------------------------------
# work list and sharding


class TestSharding:
    def test_work_list_is_canonical_serial_order(self):
        space = tiny_space()
        items = build_work_list(space, (32, 64))
        expected = [
            (dict(cfg), n) for n in (32, 64) for cfg in space
        ]
        assert [(it.config, it.size) for it in items] == expected
        assert [it.index for it in items] == list(range(len(items)))

    def test_shards_partition_items_by_compile_key(self):
        items = build_work_list(tiny_space(), (32,))
        shards = shard_work(items, 3)
        flat = [it for shard in shards for it in shard]
        assert sorted(it.index for it in flat) == [it.index for it in items]
        owner = {}
        for i, shard in enumerate(shards):
            for it in shard:
                key = compile_key(it.config)
                assert owner.setdefault(key, i) == i, (
                    "compile group split across shards"
                )

    def test_sharding_is_deterministic(self):
        items = build_work_list(tiny_space(), (32, 64))
        a = shard_work(items, 4)
        b = shard_work(list(items), 4)
        assert [[it.index for it in s] for s in a] == [
            [it.index for it in s] for s in b
        ]


# ---------------------------------------------------------------------------
# the engine


class TestSweepEngine:
    SIZES = ATAX.sizes[:2]

    def serial(self):
        return Autotuner(ATAX, K20, space=tiny_space()).sweep(
            sizes=self.SIZES
        )

    def test_parallel_matches_serial_exactly(self):
        serial = self.serial()
        engine = SweepEngine(jobs=2)
        par = Autotuner(ATAX, K20, space=tiny_space()).sweep(
            sizes=self.SIZES, engine=engine
        )
        assert par.measurements == serial.measurements
        # byte-identical, not merely approximately equal
        assert [_encode(m) for m in par.measurements] == [
            _encode(m) for m in serial.measurements
        ]

    def test_cache_miss_then_hit_semantics(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=CacheStore(tmp_path))
        first = engine.sweep(ATAX, K20, tiny_space(), self.SIZES)
        assert engine.last_stats.hits == 0
        assert engine.last_stats.measured == len(first)
        second = engine.sweep(ATAX, K20, tiny_space(), self.SIZES)
        assert engine.last_stats.hits == len(second)
        assert engine.last_stats.measured == 0
        assert second == first == self.serial().measurements

    def test_parallel_cached_still_identical(self, tmp_path):
        serial = self.serial().measurements
        engine = SweepEngine(jobs=2, cache=CacheStore(tmp_path))
        assert engine.sweep(ATAX, K20, tiny_space(), self.SIZES) == serial
        assert engine.sweep(ATAX, K20, tiny_space(), self.SIZES) == serial

    def test_model_params_change_invalidates_cache(self, tmp_path):
        store = CacheStore(tmp_path)
        engine = SweepEngine(jobs=1, cache=store)
        engine.sweep(ATAX, K20, tiny_space(), self.SIZES)
        n = len(store)
        recal = ModelParams(chain_fp=11.0)
        engine.sweep(ATAX, K20, tiny_space(), self.SIZES, params=recal)
        assert engine.last_stats.hits == 0, (
            "recalibrated model must not be served stale measurements"
        )
        assert len(store) == 2 * n

    def test_kernel_spec_edit_invalidates_cache(self, tmp_path):
        """Editing a kernel's specs (same name!) must not serve stale
        measurements."""
        import dataclasses

        engine = SweepEngine(jobs=1, cache=CacheStore(tmp_path))
        engine.sweep(ATAX, K20, tiny_space(), self.SIZES)
        edited = dataclasses.replace(ATAX, specs=ATAX.specs[:1])
        engine.sweep(edited, K20, tiny_space(), self.SIZES)
        assert engine.last_stats.hits == 0

    def test_unregistered_benchmark_parallel_falls_back_inline(self):
        """A benchmark object that is not the registered one carries
        unpicklable closures; jobs>1 must degrade to inline, not crash."""
        import dataclasses

        copy = dataclasses.replace(ATAX)
        engine = SweepEngine(jobs=2)
        out = engine.sweep(copy, K20, tiny_space(), self.SIZES)
        assert out == self.serial().measurements

    def test_pool_is_reused_across_runs_and_closeable(self):
        engine = SweepEngine(jobs=2)
        engine.sweep(ATAX, K20, tiny_space(), self.SIZES)
        pids = sorted(w.proc.pid for w in engine._executor._workers)
        assert pids
        engine.sweep(ATAX, K20, tiny_space(), (ATAX.sizes[2],))
        assert sorted(
            w.proc.pid for w in engine._executor._workers
        ) == pids, "workers were not reused"
        engine.close()
        assert engine._executor._workers == []

    def test_cached_rerun_at_least_5x_faster(self, tmp_path):
        """The acceptance bar: a warm sweep is >= 5x the cold one."""
        space = common.reduced_space()
        sizes = ATAX.sizes[::2]
        engine = SweepEngine(jobs=1, cache=CacheStore(tmp_path))
        t0 = time.perf_counter()
        cold = engine.sweep(ATAX, K20, space, sizes)
        cold_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = engine.sweep(ATAX, K20, space, sizes)
        warm_t = time.perf_counter() - t0
        assert warm == cold
        assert engine.last_stats.hit_rate == 1.0
        assert cold_t >= 5.0 * warm_t, (
            f"cached sweep only {cold_t / warm_t:.1f}x faster "
            f"(cold {cold_t:.3f}s, warm {warm_t:.3f}s)"
        )


class TestTunerIntegration:
    def test_measure_many_matches_measure(self):
        from repro.autotune.measure import Measurer

        space = tiny_space()
        pairs = [(cfg, 64) for cfg in space]
        batch = Measurer(ATAX, K20).measure_many(pairs)
        single = [Measurer(ATAX, K20).measure(c, s) for c, s in pairs]
        assert batch == single

    def test_exhaustive_tune_via_engine_identical(self, tmp_path):
        base = Autotuner(ATAX, K20, space=tiny_space()).tune(
            size=64, search="exhaustive"
        )
        engine = SweepEngine(jobs=2, cache=CacheStore(tmp_path))
        for _ in range(2):  # second pass fully cache-served
            out = Autotuner(ATAX, K20, space=tiny_space()).tune(
                size=64, search="exhaustive", engine=engine
            )
            assert out.best_config == base.best_config
            assert out.best_seconds == base.best_seconds
            assert out.search.history == base.search.history
            assert [m.seconds for m in out.results.measurements] == [
                m.seconds for m in base.results.measurements
            ]

    def test_static_search_routes_through_engine(self, tmp_path):
        base = Autotuner(ATAX, K20, space=tiny_space()).tune(
            size=64, search="static"
        )
        engine = SweepEngine(jobs=2, cache=CacheStore(tmp_path))
        out = Autotuner(ATAX, K20, space=tiny_space()).tune(
            size=64, search="static", engine=engine
        )
        assert out.best_config == base.best_config
        assert out.search.history == base.search.history
        assert out.search.space_reduction == base.search.space_reduction
        assert engine.last_stats is not None, "engine was never consulted"

    def test_tuner_jobs_cache_shorthand(self, tmp_path):
        serial = Autotuner(ATAX, K20, space=tiny_space()).sweep(sizes=(64,))
        cached = Autotuner(ATAX, K20, space=tiny_space()).sweep(
            sizes=(64,), jobs=2, cache=tmp_path
        )
        assert cached.measurements == serial.measurements


# ---------------------------------------------------------------------------
# the fig6 acceptance bar: every strategy batches through the engine


class TestFig6Batching:
    def test_warm_fig6_rerun_measures_nothing(self, tmp_path):
        """A fig6 re-run against a warm cache -- exhaustive, static, RB,
        and all four black-box strategies -- performs zero fresh
        measurements."""
        from repro.experiments import fig6_search_improvement

        common.configure_sweeps(jobs=1, cache_dir=tmp_path)
        kwargs = dict(archs=["kepler"], kernels=["atax"])
        cold = fig6_search_improvement.run(**kwargs)
        engine = common.shared_engine()
        measured = engine.total_measured
        assert measured > 0
        common.clear_sweep_cache()
        warm = fig6_search_improvement.run(**kwargs)
        assert engine.total_measured == measured, (
            "warm fig6 re-run performed fresh measurements"
        )
        assert warm == cold

    def test_fig6_runs_all_black_box_strategies(self, tmp_path):
        from repro.experiments import fig6_search_improvement

        common.configure_sweeps(jobs=1, cache_dir=tmp_path)
        res = fig6_search_improvement.run(archs=["kepler"],
                                          kernels=["atax"])
        row = res["rows"][0]
        assert res["heuristics"] == ["random", "annealing", "genetic",
                                     "simplex"]
        for name in res["heuristics"]:
            # same measurement budget as the static module
            assert 0 < row[f"{name}_evals"] <= row["static_evals"]
            assert row[f"{name}_quality"] >= 1.0 - 1e-9


# ---------------------------------------------------------------------------
# the runner CLI


class TestRunnerCLI:
    ARGS = ["--arch", "kepler", "--kernel", "atax", "fig4", "table5"]

    def test_parallel_cached_output_identical_to_serial(self, tmp_path,
                                                        capsys):
        serial_out = tmp_path / "serial"
        par_out = tmp_path / "parallel"
        warm_out = tmp_path / "warm"
        cache = tmp_path / "cache"

        assert runner_main(
            ["--no-cache", "--out", str(serial_out)] + self.ARGS
        ) == 0
        common.clear_sweep_cache()
        assert runner_main(
            ["--jobs", "2", "--cache-dir", str(cache),
             "--out", str(par_out)] + self.ARGS
        ) == 0
        common.clear_sweep_cache()
        assert runner_main(
            ["--jobs", "2", "--cache-dir", str(cache),
             "--out", str(warm_out)] + self.ARGS
        ) == 0
        capsys.readouterr()

        for name in ("fig4", "table5"):
            expected = (serial_out / f"{name}.txt").read_text()
            assert (par_out / f"{name}.txt").read_text() == expected
            assert (warm_out / f"{name}.txt").read_text() == expected

    def test_independent_experiments_run_concurrently(self, capsys):
        assert runner_main(
            ["--jobs", "2", "--no-cache", "table1", "table2", "fig3"]
        ) == 0
        out = capsys.readouterr().out
        # printed strictly in the requested order
        assert out.index("##### table1") < out.index("##### table2")
        assert out.index("##### table2") < out.index("##### fig3")

    def test_bad_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            runner_main(["--jobs", "-1", "table1"])
