"""Observability-layer tests: deterministic span identity, worker buffer
shipping, SweepStats/metrics reconciliation, export schema validation,
and the runner's ``--trace``/``--metrics`` integration.

The headline invariant: the span tree of a sweep (IDs, parentage, span
counts -- not timestamps) is *identical* at any ``--jobs`` level, clean
or under seeded chaos, because span IDs are pure functions of
``(parent, name, key)`` and sharding is jobs-independent.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.arch import get_gpu
from repro.autotune.space import Parameter, ParameterSpace
from repro.codegen.compiler import CompileOptions, compile_module
from repro.engine import CacheStore, RetryPolicy, SweepEngine, chaos
from repro.engine.cache import _encode
from repro.experiments import common
from repro.experiments.runner import main as runner_main
from repro.kernels import get_benchmark
from repro.obs.cli import main as cli_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_metrics, validate_trace
from repro.obs.trace import (
    NULL_SPAN,
    ROOT,
    Span,
    Tracer,
    ascii_tree,
    child_id,
    chrome_trace,
    spans_from_chrome,
)
from repro.sim.emulator import emulate_kernel, run_benchmark_emulated
from repro.util.rng import rng_for

ATAX = get_benchmark("atax")
K20 = get_gpu("kepler")

FAST = RetryPolicy(backoff_base_s=0.005, backoff_max_s=0.05)


def tiny_space() -> ParameterSpace:
    # 4 compile keys (UIF x CFLAGS) -> 4 shards at any jobs level
    return ParameterSpace([
        Parameter("TC", (64, 128, 256, 512)),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])


SIZES = ATAX.sizes[:2]


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Every test starts and ends on the disabled fast path."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(autouse=True)
def _no_leftover_chaos():
    chaos.uninstall()
    yield
    chaos.uninstall()


# ---------------------------------------------------------------------------
# span identity


class TestChildId:
    def test_pure_and_stable(self):
        a = child_id("ab" * 8, "measure", 7)
        assert a == child_id("ab" * 8, "measure", 7)
        assert len(a) == 16 and set(a) <= set("0123456789abcdef")

    def test_every_component_separates(self):
        base = child_id("ab" * 8, "measure", 7)
        assert child_id("cd" * 8, "measure", 7) != base
        assert child_id("ab" * 8, "attempt", 7) != base
        assert child_id("ab" * 8, "measure", 8) != base
        assert child_id("ab" * 8, "measure", 7, occurrence=1) != base


class TestTracer:
    def test_nesting_allocates_deterministic_ids(self):
        t = Tracer()
        with t.span("sweep", key="s") as outer:
            assert t.current_parent == outer.span_id
            with t.span("shard", key=[0, 1]) as inner:
                assert inner.parent_id == outer.span_id
                assert inner.span_id == child_id(
                    outer.span_id, "shard", [0, 1]
                )
        assert t.current_parent == ROOT
        # closed inner-first
        assert [s.name for s in t.spans] == ["shard", "sweep"]

    def test_repeated_siblings_disambiguated_in_program_order(self):
        t = Tracer()
        with t.span("round", key=0):
            pass
        with t.span("round", key=0):
            pass
        a, b = t.spans
        assert a.span_id != b.span_id
        assert a.span_id == child_id(ROOT, "round", 0, occurrence=0)
        assert b.span_id == child_id(ROOT, "round", 0, occurrence=1)

    def test_attach_parents_under_remote_id(self):
        t = Tracer()
        remote = "ef" * 8
        with t.attach(remote):
            with t.span("measure", key=3) as sp:
                pass
            t.instant("note")
        assert sp.parent_id == remote
        assert sp.span_id == child_id(remote, "measure", 3)
        assert t.instants[0].parent_id == remote

    def test_drain_and_absorb_round_trip(self):
        worker, main = Tracer(), Tracer()
        with worker.span("measure", key=1):
            worker.instant("chaos.delay")
        buffer = worker.drain()
        assert worker.spans == [] and worker.instants == []
        main.absorb(buffer)
        main.absorb(None)  # untraced reply ships no buffer
        assert [s.name for s in main.spans] == ["measure"]
        assert [i.name for i in main.instants] == ["chaos.delay"]

    def test_capture_ships_only_nonempty_buffers(self):
        parent = "ab" * 8
        handle = obs.begin_capture(parent)
        with obs.span("measure", key=3):
            pass
        spans, instants = obs.end_capture(handle)
        assert obs.tracer is None  # prior (disabled) state restored
        assert spans[0].parent_id == parent
        assert spans[0].span_id == child_id(parent, "measure", 3)
        assert instants == []
        handle = obs.begin_capture(parent)
        assert obs.end_capture(handle) is None


class TestDisabledFastPath:
    def test_every_facade_call_degrades_to_noop(self):
        assert not obs.enabled()
        with obs.span("sweep", key="x") as sp:
            assert sp is NULL_SPAN
            sp.annotate(points=1)
        with obs.attach("ab" * 8):
            assert obs.current_parent_id() == ROOT
        obs.instant("note")
        obs.record_span("ab" * 8, "", "shard", None, 0.0, 0.0)
        obs.add("engine.measured", 5, kernel="atax")
        obs.set_gauge("pool.queue_depth", 3)
        obs.observe("engine.run_seconds", 0.1)
        obs.absorb(([], []))
        assert obs.tracer is None and obs.metrics is None
        assert obs.render_tree() == "(tracing disabled)"

    def test_enable_installs_fresh_collectors(self):
        obs.enable()
        assert obs.enabled()
        obs.add("engine.runs")
        first = obs.metrics
        obs.enable()  # re-enabling replaces, not accumulates
        assert obs.metrics is not first
        assert obs.metrics.value("engine.runs") == 0


# ---------------------------------------------------------------------------
# metrics registry


class TestMetricsRegistry:
    def test_counter_label_separation(self):
        m = MetricsRegistry()
        m.add("engine.measured", 3, kernel="atax")
        m.add("engine.measured", 2, kernel="atax")
        m.add("engine.measured", 7, kernel="bicg")
        assert m.value("engine.measured", kernel="atax") == 5
        assert m.value("engine.measured", kernel="bicg") == 7
        assert m.value("engine.measured", kernel="mvt") == 0

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.set_gauge("pool.queue_depth", 5)
        m.set_gauge("pool.queue_depth", 2)
        assert m.value("pool.queue_depth") == 2

    def test_histogram_accounting(self):
        m = MetricsRegistry()
        for v in (1e-6, 0.5, 2000.0):
            m.observe("engine.run_seconds", v)
        snap = m.snapshot()
        assert validate_metrics(snap) == []
        (h,) = snap["histograms"]
        assert h["count"] == 3
        assert h["min"] == 1e-6 and h["max"] == 2000.0
        assert sum(h["buckets"]) == h["count"]
        assert h["buckets"][-1] == 1  # 2000s overflows the last bound

    def test_absorb_cache_stats_mirrors_not_accumulates(self, tmp_path):
        store = CacheStore(tmp_path)
        store.get("absent")
        m = MetricsRegistry()
        m.absorb_cache_stats(store)
        m.absorb_cache_stats(store)  # idempotent: gauges, not counters
        assert m.value("cache.misses") == 1
        assert m.value("cache.hits") == 0


# ---------------------------------------------------------------------------
# export + validation


class TestExportSchema:
    def test_chrome_round_trip_and_tree(self):
        t = Tracer()
        with t.span("sweep", key="k", args={"points": 4}):
            t.instant("note", args={"message": "hi"})
        doc = chrome_trace(t.spans, t.instants)
        assert validate_trace(doc) == []
        spans, instants = spans_from_chrome(doc)
        assert len(spans) == 1 and len(instants) == 1
        assert spans[0].span_id == t.spans[0].span_id
        assert spans[0].args["points"] == 4
        assert instants[0].parent_id == t.spans[0].span_id
        tree = ascii_tree(spans, instants)
        assert "sweep (1)" in tree and "! note (1)" in tree

    def test_validator_reports_every_defect(self):
        bad = {
            "metadata": {"schema": "nope"},
            "traceEvents": [
                {"ph": "X", "name": "x", "ts": 0, "dur": -1, "pid": 1,
                 "tid": 0, "args": {"span_id": "zz", "parent_id": "1234"}},
                {"ph": "q"},
            ],
        }
        problems = validate_trace(bad)
        assert any("schema" in p for p in problems)
        assert any("dur" in p for p in problems)
        assert any("span_id" in p for p in problems)
        assert any("ph" in p for p in problems)

    def test_dangling_span_parent_is_structural(self):
        orphan = Span("a" * 16, "b" * 16, "shard", None, 0.0, 1.0, 1)
        problems = validate_trace(chrome_trace([orphan], []))
        assert any("not in file" in p for p in problems)

    def test_dangling_instant_parent_is_tolerated(self):
        # a chaos-killed worker's instants may outlive their span
        t = Tracer()
        t.instant("fault.worker-died", parent_id="c" * 16)
        assert validate_trace(chrome_trace([], t.instants)) == []

    def test_metrics_validator_rejects_malformed_rows(self):
        assert validate_metrics([]) == ["metrics document is not a JSON object"]
        bad = MetricsRegistry().snapshot()
        bad["counters"].append({"name": "", "labels": None, "value": "x"})
        problems = validate_metrics(bad)
        assert any("name" in p for p in problems)
        assert any("labels" in p for p in problems)
        assert any("value" in p for p in problems)


# ---------------------------------------------------------------------------
# sweep tracing: determinism across jobs, worker shipping, reconciliation


def traced_sweep(jobs: int, spec: chaos.ChaosSpec | None = None):
    """One fully traced sweep; returns everything it collected."""
    obs.enable()
    with SweepEngine(jobs=jobs, policy=FAST) as engine:
        if spec is not None:
            with chaos.injected(spec):
                out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        else:
            out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        stats = engine.last_stats
    spans, instants = list(obs.tracer.spans), list(obs.tracer.instants)
    metrics = obs.metrics
    obs.disable()
    return out, stats, spans, instants, metrics


def span_identity(spans):
    """The jobs-invariant part of a trace (no timestamps, no pids)."""
    return sorted((s.span_id, s.parent_id, s.name) for s in spans)


def assert_byte_identical(out, serial):
    assert [_encode(m) for m in out] == [_encode(m) for m in serial]


CHAOS_SPEC = chaos.ChaosSpec(seed=2, kill_rate=0.5, raise_rate=0.5)


@pytest.fixture(scope="module")
def clean_serial():
    return traced_sweep(jobs=1)


class TestSweepTraceDeterminism:
    def test_span_tree_identical_across_jobs(self, clean_serial):
        out1, _, spans1, _, _ = clean_serial
        out4, _, spans4, _, _ = traced_sweep(jobs=4)
        assert_byte_identical(out4, out1)
        assert span_identity(spans4) == span_identity(spans1)
        names = {s.name for s in spans1}
        assert {"sweep", "shard", "attempt", "measure"} <= names
        # and the parallel run really shipped spans from worker processes
        assert any(
            s.pid != os.getpid() and s.name == "measure" for s in spans4
        )

    def test_span_tree_identical_across_jobs_under_chaos(self, clean_serial):
        clean_out, _, clean_spans, _, _ = clean_serial
        out1, s1, spans1, _, _ = traced_sweep(jobs=1, spec=CHAOS_SPEC)
        out4, s4, spans4, _, _ = traced_sweep(jobs=4, spec=CHAOS_SPEC)
        assert_byte_identical(out1, clean_out)
        assert_byte_identical(out4, clean_out)
        assert s1.retries == s4.retries > 0
        assert span_identity(spans4) == span_identity(spans1)
        # chaos adds retry attempts on top of the clean tree
        assert len(spans1) > len(clean_spans)

    def test_measure_spans_cover_every_fresh_measurement(self, clean_serial):
        _, stats, spans, _, _ = clean_serial
        assert sum(s.name == "measure" for s in spans) == stats.measured
        shard_ids = {s.span_id for s in spans if s.name == "shard"}
        attempts = [s for s in spans if s.name == "attempt"]
        assert attempts and all(
            s.parent_id in shard_ids for s in attempts
        )

    def test_exported_artifacts_validate(self, clean_serial, tmp_path):
        _, _, spans, instants, metrics = clean_serial
        assert validate_trace(chrome_trace(spans, instants)) == []
        assert validate_metrics(metrics.snapshot()) == []
        tree = ascii_tree(spans, instants)
        assert "sweep (1)" in tree and "measure" in tree


class TestSweepMetricsReconciliation:
    def test_registry_reconciles_exactly_with_sweep_stats(self, tmp_path):
        obs.enable()
        with SweepEngine(jobs=1, cache=tmp_path / "cache") as engine:
            engine.sweep(ATAX, K20, tiny_space(), SIZES)
            first = engine.last_stats
            engine.sweep(ATAX, K20, tiny_space(), SIZES)
            second = engine.last_stats
        m = obs.metrics
        labels = {"kernel": ATAX.name, "gpu": K20.name}
        points = m.value("engine.points", **labels)
        hits = m.value("engine.cache_hits", **labels)
        measured = m.value("engine.measured", **labels)
        quarantined = m.value("engine.quarantined", **labels)
        assert points == hits + measured + quarantined
        assert points == first.total + second.total
        assert hits == first.hits + second.hits == second.total
        assert measured == first.measured + second.measured == first.total
        assert m.value("engine.runs", **labels) == 2
        snap = m.snapshot()
        (h,) = [r for r in snap["histograms"]
                if r["name"] == "engine.run_seconds"]
        assert h["count"] == 2

    def test_chaos_faults_land_in_instants_and_counters(self):
        spec = chaos.ChaosSpec(seed=2, raise_rate=0.9)
        _, stats, spans, instants, m = traced_sweep(jobs=1, spec=spec)
        assert stats.retries > 0
        names = {i.name for i in instants}
        assert "chaos.raise" in names and "fault.raised" in names
        faults = [i for i in instants if i.name == "fault.raised"]
        span_ids = {s.span_id for s in spans}
        # every supervisor fault instant hangs off a recorded attempt span
        assert all(f.parent_id in span_ids for f in faults)
        assert m.value("pool.faults", fate="raised") == len(faults)
        assert m.value("pool.retries") == stats.retries


# ---------------------------------------------------------------------------
# emulator profile metrics


class TestEmulatorMetrics:
    def test_launch_profile_feeds_registry_and_trace(self):
        bm = get_benchmark("atax")
        n = bm.smallest_size
        inputs = bm.make_inputs(n, rng_for("tests", "obs", "emu", n))
        mod = compile_module(bm.name, list(bm.specs), CompileOptions(gpu=K20))
        tc, bc = bm.emu_launch(n)
        obs.enable()
        run_benchmark_emulated(mod, inputs, tc=tc, bc=bc)
        m, t = obs.metrics, obs.tracer

        launches = [r for r in m.snapshot()["counters"]
                    if r["name"] == "emu.launches"]
        assert sum(r["value"] for r in launches) == len(mod)
        assert all(r["labels"]["kernel"] and r["labels"]["mode"]
                   for r in launches)
        ips = [r for r in m.snapshot()["gauges"]
               if r["name"] == "emu.issues_per_second"]
        assert ips and all(r["value"] > 0 for r in ips)
        widths = [r for r in m.snapshot()["histograms"]
                  if r["name"] == "emu.stack_width"]
        assert sum(r["count"] for r in widths) == len(mod)

        emu = [s for s in t.spans if s.name == "emulate"]
        launch = [s for s in t.spans if s.name == "launch"]
        assert len(emu) == 1 and len(launch) == len(mod)
        assert all(s.parent_id == emu[0].span_id for s in launch)
        assert all("issue_slots" in s.args and "mode" in s.args
                   for s in launch)

    def test_emulation_result_carries_profile(self):
        bm = get_benchmark("atax")
        n = bm.smallest_size
        inputs = bm.make_inputs(n, rng_for("tests", "obs", "prof", n))
        mod = compile_module(bm.name, list(bm.specs), CompileOptions(gpu=K20))
        tc, bc = bm.emu_launch(n)
        res, _ = emulate_kernel(next(iter(mod)), inputs, tc=tc, bc=bc)
        assert res.profile is not None
        assert res.profile.issue_slots > 0
        assert res.profile.mode and isinstance(res.profile.mode, str)
        assert res.profile.wall_seconds > 0


# ---------------------------------------------------------------------------
# runner integration + CLI


class TestRunnerObs:
    @pytest.fixture(autouse=True)
    def _reset_experiment_state(self):
        yield
        common.configure_sweeps()
        common.clear_sweep_cache()

    def test_traced_suite_run_produces_valid_artifacts(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert runner_main([
            "suite", "--kernel", "atax", "--arch", "kepler",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace", str(trace), "--metrics", str(metrics),
        ]) == 0
        err = capsys.readouterr().err
        # satellite: the lifetime summary prints without --progress
        assert "[engine]" in err and "measured" in err
        assert f"[obs] trace written to {trace}" in err
        assert f"[obs] metrics written to {metrics}" in err

        tdoc = json.loads(trace.read_text())
        mdoc = json.loads(metrics.read_text())
        assert validate_trace(tdoc) == []
        assert validate_metrics(mdoc) == []
        cats = {ev["cat"] for ev in tdoc["traceEvents"] if ev["ph"] == "X"}
        assert {"sweep", "shard", "attempt", "measure",
                "tune", "round", "emulate", "launch"} <= cats
        gauges = {r["name"] for r in mdoc["gauges"]}
        assert "engine.lifetime_measured" in gauges
        assert "cache.hits" in gauges

        # the CLI agrees, end to end
        assert cli_main([
            "validate", "--trace", str(trace), "--metrics", str(metrics),
            "--expect-spans", "sweep,shard,attempt,measure",
        ]) == 0
        assert cli_main(["tree", str(trace)]) == 0
        capsys.readouterr()

    def test_cli_flags_missing_expectations(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        t = Tracer()
        with t.span("sweep", key="s"):
            pass
        trace.write_text(json.dumps(chrome_trace(t.spans, t.instants)))
        assert cli_main(["validate", "--trace", str(trace)]) == 0
        assert cli_main([
            "validate", "--trace", str(trace), "--expect-spans", "shard",
        ]) == 1
        assert cli_main([
            "validate", "--trace", str(trace), "--expect-fault",
        ]) == 1
        with pytest.raises(SystemExit):
            cli_main(["validate", "--trace", str(tmp_path / "absent.json")])
        capsys.readouterr()
