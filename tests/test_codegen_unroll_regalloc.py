"""Tests for loop unrolling and register allocation."""

import numpy as np
import pytest

from repro.arch import K20, M2050
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_kernel, compile_module
from repro.codegen.regalloc import allocate_registers, _live_intervals
from repro.codegen.transforms.unroll import unroll_innermost, unroll_loop
from repro.kernels import get_benchmark
from repro.ptx.isa import DType, Opcode
from repro.sim.counting import exact_counts
from repro.sim.emulator import run_benchmark_emulated
from repro.util.rng import rng_for


class TestUnrollTransform:
    def test_factor_one_is_identity(self, matvec_spec):
        assert unroll_innermost(matvec_spec, 1) is matvec_spec

    def test_bad_factor_rejected(self, matvec_spec):
        with pytest.raises(ValueError):
            unroll_innermost(matvec_spec, 0)

    def test_parallel_loop_not_unrolled(self, matvec_spec):
        out = unroll_innermost(matvec_spec, 4)
        ploops = [s for s in out.body if getattr(s, "parallel", False)]
        assert len(ploops) == 1
        # inner loop was replaced by main + remainder
        inner = [s for s in ploops[0].body if type(s).__name__ == "For"]
        assert len(inner) == 2
        assert inner[0].step == 4 and inner[1].step == 1

    def test_cannot_unroll_parallel_directly(self, matvec_spec):
        ploop = matvec_spec.body[0]
        with pytest.raises(ValueError, match="parallel"):
            unroll_loop(ploop, 2)

    @pytest.mark.parametrize("factor", [2, 3, 5])
    def test_unrolled_counts_preserve_work(self, matvec_spec, factor):
        """FMA work (the real computation) is invariant under unrolling."""
        from repro.arch.throughput import InstrCategory

        base = compile_kernel(matvec_spec, CompileOptions(gpu=K20))
        unr = compile_kernel(
            matvec_spec, CompileOptions(gpu=K20, unroll_factor=factor)
        )
        env = {"N": 37}  # deliberately not a multiple of the factor
        cb = exact_counts(base, env, 32, 4)
        cu = exact_counts(unr, env, 32, 4)
        assert cb.by_category[InstrCategory.FP32] == pytest.approx(
            cu.by_category[InstrCategory.FP32]
        )
        # loop overhead must strictly decrease
        assert (cu.by_category[InstrCategory.PRED_CTRL]
                < cb.by_category[InstrCategory.PRED_CTRL])

    @pytest.mark.parametrize("factor", [2, 4])
    def test_unrolled_results_equal(self, factor):
        """Unrolled kernels compute identical results (emulated)."""
        bm = get_benchmark("atax")
        inputs = bm.make_inputs(13, rng_for("unroll-test"))
        outs = {}
        for uf in (1, factor):
            mod = compile_module(
                "atax", list(bm.specs),
                CompileOptions(gpu=K20, unroll_factor=uf),
            )
            o, _ = run_benchmark_emulated(mod, inputs, tc=32, bc=2)
            outs[uf] = o
        for name in bm.output_names:
            np.testing.assert_allclose(
                outs[1][name], outs[factor][name], rtol=1e-5
            )


class TestRegisterAllocation:
    def test_live_interval_loop_extension(self):
        """A value defined before a loop and used inside must survive the
        whole loop (its register may not be reused mid-loop)."""
        from repro.ptx.parser import parse_kernel

        k = parse_kernel("""
.kernel t(.param .s32 N)
.reg 0
.shared 0
.target sm_35
{
  ld.param.s32 %v1, [N];
  mov.s32 %v2, 0;
$L_loop:
  add.s32 %v3, %v2, %v1;
  add.s32 %v2, %v2, 1;
  setp.lt.s32 %v4, %v2, %v1;
  @%v4 bra $L_loop;
  exit;
}
""")
        intervals = _live_intervals(k.body)
        # %v1 (N) is read inside the loop: its interval must reach the latch
        start, end, _ = intervals["%v1"]
        latch_pos = 5  # the bra
        assert end >= latch_pos - 1

    def test_allocation_is_executable(self, matvec_spec):
        """The strongest regalloc test: allocated code still computes the
        right answer (register reuse did not clobber live values)."""
        bm = get_benchmark("matvec2d")
        inputs = bm.make_inputs(16, rng_for("regalloc"))
        mod = compile_module(
            "matvec2d", list(bm.specs), CompileOptions(gpu=K20)
        )
        outs, _ = run_benchmark_emulated(mod, inputs, tc=64, bc=2)
        ref = bm.reference(inputs)
        np.testing.assert_allclose(outs["y"], ref["y"], rtol=2e-3, atol=2e-4)

    def test_regs_per_thread_reported(self, matvec_spec):
        ck = compile_kernel(matvec_spec, CompileOptions(gpu=K20))
        assert 8 <= ck.regs_per_thread <= 64
        # physical names only
        names = {r.name for r in ck.ir.registers_used()}
        assert not any(n.startswith("%v") for n in names)

    def test_64bit_values_cost_two_slots(self):
        N = dsl.sparam("N")
        x, y = dsl.farrays("x", "y")
        n = dsl.ivar("n")
        spec = dsl.kernel("t", [N, x, y],
                          [dsl.pfor(n, N, [y.store(n, x[n])])])
        kep = compile_kernel(spec, CompileOptions(gpu=K20))
        fer = compile_kernel(spec, CompileOptions(gpu=M2050))
        # 64-bit addressing on Kepler uses register pairs -> more registers
        assert kep.regs_per_thread > fer.regs_per_thread

    def test_spill_clamp(self):
        from repro.ptx.module import KernelIR
        from repro.ptx.instruction import Instruction, Reg
        from repro.ptx.isa import DType as DT

        body = []
        prev = None
        regs = []
        for i in range(80):
            dst = Reg(f"%v{i+1}", DT.F32)
            body.append(Instruction(Opcode.MOV, dtype=DT.F32, dst=dst,
                                    srcs=(Imm0,)))
            regs.append(dst)
        # keep everything live to the end
        acc = Reg("%v100", DT.F32)
        body.append(Instruction(Opcode.MOV, dtype=DT.F32, dst=acc,
                                srcs=(Imm0,)))
        for rg in regs:
            body.append(Instruction(Opcode.ADD, dtype=DT.F32, dst=acc,
                                    srcs=(acc, rg)))
        body.append(Instruction(Opcode.EXIT))
        ir = KernelIR("fat", (), body)
        res = allocate_registers(ir, reserved=2, max_regs=63)
        assert res.spilled > 0
        assert res.regs_per_thread == 63


from repro.ptx.instruction import Imm  # noqa: E402

Imm0 = Imm(0.0, DType.F32)
