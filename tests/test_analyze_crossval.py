"""Analyzer-vs-sanitizer cross-validation: the happens-before shared
memory sanitizer, its agreement across both emulator paths, and the fuzz
campaign that empirically pins the static checkers' soundness."""

import dataclasses
import os

import pytest

from repro.arch import K20
from repro.codegen.compiler import CompileOptions, compile_module
from repro.fuzz.differential import (
    analysis_context,
    crossval_program,
    fuzz_budget,
    run_crossval_campaign,
)
from repro.fuzz.generator import generate_program
from repro.kernels import get_benchmark
from repro.ptx.instruction import Instruction
from repro.ptx.isa import Opcode
from repro.sim.emulator import SmemSanitizer, emulate_kernel
from repro.util.rng import rng_for


def _dot_case():
    bench = get_benchmark("dot")
    module = compile_module(
        "dot", list(bench.specs), CompileOptions(gpu=K20)
    )
    ck = next(iter(module))
    n = bench.smallest_size
    inputs = dict(bench.make_inputs(n, rng_for("sanitizer", "dot", n)))
    inputs.update(bench.param_env(n))
    tc, bc = bench.emu_launch(n)
    return ck, inputs, tc, bc


def _drop_first_barrier(ck):
    body = list(ck.ir.body)
    bar = next(
        i for i, it in enumerate(body)
        if isinstance(it, Instruction) and it.opcode is Opcode.BAR
    )
    return dataclasses.replace(
        ck, ir=dataclasses.replace(ck.ir, body=body[:bar] + body[bar + 1:])
    )


class TestSmemSanitizer:
    @pytest.mark.parametrize("mode", ["scalar", "vector"])
    def test_correct_dot_is_race_free(self, mode):
        ck, inputs, tc, bc = _dot_case()
        sanitizer = SmemSanitizer()
        emulate_kernel(ck, dict(inputs), tc, bc, mode=mode,
                       sanitizer=sanitizer)
        assert sanitizer.races == []

    @pytest.mark.parametrize("mode", ["scalar", "vector"])
    def test_dropped_barrier_races_on_both_paths(self, mode):
        ck, inputs, tc, bc = _dot_case()
        sanitizer = SmemSanitizer()
        emulate_kernel(_drop_first_barrier(ck), dict(inputs), tc, bc,
                       mode=mode, sanitizer=sanitizer)
        assert sanitizer.races
        race = sanitizer.races[0]
        # the staging store vs the first tree-reduction load, phase 0
        assert race.phase == 0
        assert {race.kind_a, race.kind_b} == {"ld", "st"}
        assert "shared-memory race" in str(race)

    def test_launch_reset_keeps_races_across_kernels(self):
        ck, inputs, tc, bc = _dot_case()
        sanitizer = SmemSanitizer()
        bad = _drop_first_barrier(ck)
        emulate_kernel(bad, dict(inputs), tc, bc, mode="scalar",
                       sanitizer=sanitizer)
        first = len(sanitizer.races)
        assert first > 0
        # a second (clean) launch must not erase earlier findings
        emulate_kernel(ck, dict(inputs), tc, bc, mode="scalar",
                       sanitizer=sanitizer)
        assert len(sanitizer.races) == first


class TestCrossValidation:
    def test_analysis_context_splits_scalars_and_extents(self):
        program = generate_program(0)
        ctx = analysis_context(program)
        assert ctx.tc == program.tc and ctx.bc == program.bc
        assert "N" in ctx.params
        assert all(nbytes > 0 for nbytes in ctx.extents.values())

    @pytest.mark.parametrize("seed", range(8))
    def test_fixed_seeds_cross_validate(self, seed):
        assert crossval_program(generate_program(seed)) is None

    def test_small_campaign_is_clean(self):
        result = run_crossval_campaign(budget=20, do_shrink=False)
        assert result.ok, result.summary()
        assert result.programs == 20

    @pytest.mark.fuzz
    def test_default_budget_campaign_is_clean(self):
        # mismatches are shrunk and dumped next to the curated corpus so
        # the CI artifact upload ships ready-made regression locks
        corpus = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
        result = run_crossval_campaign(corpus_dir=corpus)
        assert result.ok, result.summary()
        assert result.programs == fuzz_budget()
