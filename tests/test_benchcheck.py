"""The CI benchmark-regression gate (repro.util.benchcheck)."""

import json

import pytest

from repro.util.benchcheck import find_regressions, load_medians, main


def _bench_json(path, medians):
    path.write_text(json.dumps({
        "benchmarks": [
            {"fullname": name, "stats": {"median": med}}
            for name, med in medians.items()
        ]
    }))
    return path


@pytest.fixture
def files(tmp_path):
    def make(name, medians):
        return _bench_json(tmp_path / name, medians)

    return make


class TestFindRegressions:
    def test_flags_watched_slowdown_beyond_threshold(self):
        cur = {"b/test_bench_emulator.py::t": 1.4, "b/other.py::t": 9.0}
        base = {"b/test_bench_emulator.py::t": 1.0, "b/other.py::t": 1.0}
        regs = find_regressions(cur, base, threshold=0.30)
        assert [r[0] for r in regs] == ["b/test_bench_emulator.py::t"]
        assert regs[0][3] == pytest.approx(1.4)

    def test_within_threshold_passes(self):
        cur = {"x emulator": 1.29}
        assert find_regressions(cur, {"x emulator": 1.0}) == []

    def test_unwatched_names_ignored(self):
        cur = {"b/test_bench_tables.py::t": 99.0}
        base = {"b/test_bench_tables.py::t": 1.0}
        assert find_regressions(cur, base) == []
        assert find_regressions(cur, base, patterns=("tables",)) != []

    def test_new_benchmark_is_not_a_regression(self):
        assert find_regressions({"new sweep": 5.0}, {}) == []

    def test_worst_first(self):
        cur = {"a sweep": 2.0, "b sweep": 3.0}
        base = {"a sweep": 1.0, "b sweep": 1.0}
        regs = find_regressions(cur, base)
        assert [r[0] for r in regs] == ["b sweep", "a sweep"]


class TestCli:
    def test_missing_baseline_is_ok(self, files, tmp_path, capsys):
        cur = files("cur.json", {"a emulator": 1.0})
        rc = main([str(cur), str(tmp_path / "absent.json")])
        assert rc == 0
        assert "no baseline" in capsys.readouterr().out

    def test_regression_fails(self, files, capsys):
        cur = files("cur.json", {"a emulator": 2.0})
        base = files("base.json", {"a emulator": 1.0})
        assert main([str(cur), str(base)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_clean_run_passes(self, files, capsys):
        cur = files("cur.json", {"a emulator": 1.0, "b sweep": 1.0})
        base = files("base.json", {"a emulator": 1.0, "b sweep": 0.9})
        assert main([str(cur), str(base)]) == 0
        assert "within 30%" in capsys.readouterr().out

    def test_custom_threshold_and_pattern(self, files):
        cur = files("cur.json", {"a tables": 1.2})
        base = files("base.json", {"a tables": 1.0})
        assert main([str(cur), str(base), "--pattern", "tables",
                     "--threshold", "0.10"]) == 1

    def test_load_medians(self, files):
        path = files("cur.json", {"a": 0.25})
        assert load_medians(path) == {"a": 0.25}
