"""Protocol round-trip property tests for every ``repro.api`` type.

The contract under test (ISSUE 10 acceptance): every type satisfies
``from_json(to_json(x)) == x`` -- including non-finite floats --
tolerates unknown fields, and rejects missing or major-incompatible
protocol versions.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.api.protocol import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    AskBatch,
    ErrorEnvelope,
    MeasurementRecord,
    ProtocolError,
    ServerInfo,
    SessionResult,
    SessionStatus,
    SpaceSpec,
    StoreStats,
    TellResult,
    TuneRequest,
    check_version,
    parse_message,
    parse_version,
)
from repro.autotune.space import Parameter, ParameterSpace

# -- instance generators -----------------------------------------------------
#
# Seeded random instances exercise optional fields, non-finite floats,
# and empty/degenerate collections; each generator returns a fresh
# instance for a given rng.

INF = float("inf")


def _config(rng):
    out = {"TC": rng.choice([32, 64, 128]), "BC": rng.choice([16, 48])}
    if rng.random() < 0.5:
        out["CFLAGS"] = rng.choice(["", "-use_fast_math"])
    if rng.random() < 0.3:
        out["UIF"] = rng.choice([1, 2, 4])
    return out


def _value(rng):
    return rng.choice([
        rng.random() * 1e-3, INF, -INF, 0.0, 1e-30,
    ])


def gen_space(rng):
    return SpaceSpec(parameters=(
        ("TC", tuple(sorted(rng.sample(range(32, 1025, 32), 3)))),
        ("CFLAGS", ("", "-use_fast_math")),
    ))


def gen_tune_request(rng):
    return TuneRequest(
        kernel=rng.choice(["atax", "bicg", "matvec2d"]),
        gpu=rng.choice(["kepler", "fermi"]),
        size=rng.choice([16, 64, 256]),
        search=rng.choice(["exhaustive", "random", "static"]),
        budget=rng.choice([None, 10, 100]),
        use_rule=rng.random() < 0.5,
        mode=rng.choice(["managed", "external"]),
        space=gen_space(rng) if rng.random() < 0.5 else None,
        search_args={"seed": rng.randrange(100)}
        if rng.random() < 0.5 else {},
        tenant=rng.choice(["default", "team-a"]),
    )


def gen_measurement(rng):
    return MeasurementRecord(
        config=_config(rng),
        size=rng.choice([16, 64]),
        seconds=_value(rng),
        occupancy=rng.random(),
        regs_per_thread=rng.randrange(16, 64),
        reg_instructions=rng.choice([rng.random() * 1e6, INF]),
        key=rng.choice([None, "a" * 64]),
    )


def gen_ask_batch(rng):
    return AskBatch(
        session_id=f"s{rng.randrange(100):04d}-default",
        round=rng.randrange(10),
        configs=tuple(_config(rng) for _ in range(rng.randrange(4))),
        remaining=rng.choice([None, 0, 32]),
        done=rng.random() < 0.3,
    )


def gen_tell_result(rng):
    return TellResult(
        session_id="s0001-default",
        round=rng.randrange(10),
        values=tuple(_value(rng) for _ in range(rng.randrange(1, 5))),
    )


def gen_error(rng):
    return ErrorEnvelope(
        code=rng.choice(["bad-request", "not-found"]),
        message="something broke",
        detail=rng.choice([None, "a traceback"]),
    )


def gen_status(rng):
    return SessionStatus(
        session_id="s0001-default",
        state=rng.choice(["pending", "running", "waiting", "done",
                          "failed", "cancelled"]),
        kernel="atax", gpu="kepler", size=64,
        search="random", mode=rng.choice(["managed", "external"]),
        rounds=rng.randrange(5),
        evaluations=rng.randrange(100),
        best_value=rng.choice([None, 1e-4, INF]),
        best_config=_config(rng) if rng.random() < 0.5 else None,
        error=gen_error(rng) if rng.random() < 0.3 else None,
    )


def gen_result(rng):
    history = tuple(
        (_config(rng), _value(rng)) for _ in range(rng.randrange(1, 4))
    )
    return SessionResult(
        session_id="s0001-default",
        best_config=history[0][0],
        best_value=history[0][1],
        evaluations=len(history),
        space_size=rng.randrange(1, 100),
        full_space_size=rng.randrange(100, 200),
        history=history,
        measurements=tuple(
            gen_measurement(rng) for _ in range(rng.randrange(3))
        ),
    )


def gen_store_stats(rng):
    return StoreStats(
        entries=rng.randrange(1000), hits=rng.randrange(1000),
        misses=rng.randrange(1000), corrupt=rng.randrange(3),
        evicted=rng.randrange(10), measured=rng.randrange(500),
        served_from_cache=rng.randrange(500), sessions=rng.randrange(8),
        max_entries=rng.choice([None, 512]),
        schema_version=1,
    )


def gen_server_info(rng):
    return ServerInfo(
        protocol=PROTOCOL_VERSION, server="repro-service/1",
        sessions=rng.randrange(8), store_entries=rng.randrange(1000),
    )


GENERATORS = {
    SpaceSpec: gen_space,
    TuneRequest: gen_tune_request,
    MeasurementRecord: gen_measurement,
    AskBatch: gen_ask_batch,
    TellResult: gen_tell_result,
    ErrorEnvelope: gen_error,
    SessionStatus: gen_status,
    SessionResult: gen_result,
    StoreStats: gen_store_stats,
    ServerInfo: gen_server_info,
}


def _eq(a, b) -> bool:
    """Dataclass equality that treats NaN == NaN (it round-trips)."""
    return _norm(a) == _norm(b)


def _norm(x):
    if isinstance(x, float) and math.isnan(x):
        return "nan-sentinel"
    if isinstance(x, tuple):
        return tuple(_norm(v) for v in x)
    if isinstance(x, dict):
        return {k: _norm(v) for k, v in x.items()}
    if hasattr(x, "__dataclass_fields__"):
        return {
            f: _norm(getattr(x, f)) for f in x.__dataclass_fields__
        }
    return x


@pytest.mark.parametrize("cls", list(GENERATORS), ids=lambda c: c.TYPE)
def test_round_trip(cls):
    """from_json(to_json(x)) == x for 50 seeded random instances, and
    the wire document survives strict JSON (allow_nan=False)."""
    rng = random.Random(f"round-trip/{cls.TYPE}")
    for _ in range(50):
        x = GENERATORS[cls](rng)
        doc = x.to_json()
        assert doc["type"] == cls.TYPE
        assert doc["v"] == PROTOCOL_VERSION
        wire = json.dumps(doc, allow_nan=False)  # raises on a raw inf/nan
        back = cls.from_json(json.loads(wire))
        assert _eq(back, x), (x, back)


@pytest.mark.parametrize("cls", list(GENERATORS), ids=lambda c: c.TYPE)
def test_unknown_fields_tolerated(cls):
    """A newer peer's extra fields parse clean (additive evolution)."""
    rng = random.Random(f"unknown/{cls.TYPE}")
    x = GENERATORS[cls](rng)
    doc = x.to_json()
    doc["some_future_field"] = {"nested": [1, 2, 3]}
    doc["another"] = "ignored"
    assert _eq(cls.from_json(doc), x)


@pytest.mark.parametrize("cls", list(GENERATORS), ids=lambda c: c.TYPE)
def test_version_enforcement(cls):
    """Missing and major-mismatched versions are rejected; a newer minor
    under our major is accepted."""
    rng = random.Random(f"version/{cls.TYPE}")
    x = GENERATORS[cls](rng)
    doc = x.to_json()

    major, minor = parse_version(PROTOCOL_VERSION)

    missing = dict(doc)
    del missing["v"]
    with pytest.raises(ProtocolError, match="protocol version"):
        cls.from_json(missing)

    wrong_major = dict(doc, v=f"{major + 1}.0")
    with pytest.raises(ProtocolError, match="incompatible"):
        cls.from_json(wrong_major)

    newer_minor = dict(doc, v=f"{major}.{minor + 3}")
    if cls is ServerInfo:
        # ServerInfo also validates its payload's protocol field; only
        # the envelope version is under test here
        newer_minor["protocol"] = PROTOCOL_VERSION
    assert _eq(cls.from_json(newer_minor), x if cls is not ServerInfo
               else x)


def test_version_parsing():
    assert parse_version("1.0") == (1, 0)
    assert parse_version("12.34") == (12, 34)
    for bad in ("1", "1.0.0", "a.b", "", "1.x", None, 1.0):
        with pytest.raises(ProtocolError):
            parse_version(bad)
    check_version(PROTOCOL_VERSION)
    with pytest.raises(ProtocolError):
        check_version(None)


def test_wrong_type_field_rejected():
    doc = gen_ask_batch(random.Random(0)).to_json()
    doc["type"] = "tune-request"
    with pytest.raises(ProtocolError, match="expected"):
        AskBatch.from_json(doc)


def test_parse_message_dispatch():
    rng = random.Random("dispatch")
    for cls, gen in GENERATORS.items():
        x = gen(rng)
        assert _eq(parse_message(x.to_json()), x)
    with pytest.raises(ProtocolError, match="unknown message type"):
        parse_message({"type": "no-such-type", "v": PROTOCOL_VERSION})
    with pytest.raises(ProtocolError):
        parse_message(["not", "an", "object"])


def test_non_finite_floats_travel_as_strings():
    m = MeasurementRecord(
        config={"TC": 32}, size=16, seconds=INF, occupancy=0.5,
        regs_per_thread=20, reg_instructions=float("nan"),
    )
    doc = m.to_json()
    assert doc["seconds"] == "Infinity"
    assert doc["reg_instructions"] == "NaN"
    back = MeasurementRecord.from_json(doc)
    assert back.seconds == INF
    assert math.isnan(back.reg_instructions)
    # config values are never float-decoded: a literal string survives
    r = TellResult(session_id="s", round=0, values=(-INF,))
    assert TellResult.from_json(r.to_json()).values == (-INF,)


def test_space_spec_round_trips_through_parameter_space():
    space = ParameterSpace([
        Parameter("TC", (32, 64, 128)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])
    spec = SpaceSpec.from_space(space)
    rebuilt = spec.to_space()
    assert [(p.name, tuple(p.values)) for p in rebuilt.parameters] == \
        [(p.name, tuple(p.values)) for p in space.parameters]
    assert list(rebuilt) == list(space)


def test_tune_request_validation():
    base = gen_tune_request(random.Random(1)).to_json()
    for field, bad in [
        ("size", 0), ("size", -4), ("budget", 0),
        ("mode", "telepathic"), ("kernel", 7),
        ("search_args", {"k": [1, 2]}),
    ]:
        doc = dict(base, **{field: bad})
        with pytest.raises(ProtocolError):
            TuneRequest.from_json(doc)


def test_measurement_record_matches_variant_measurement():
    from repro.autotune.measure import VariantMeasurement

    vm = VariantMeasurement(
        config={"TC": 64, "BC": 48}, size=32, seconds=1.5e-4,
        occupancy=0.75, regs_per_thread=24, reg_instructions=1024.0,
    )
    rec = MeasurementRecord.from_measurement(vm, key="k")
    assert rec.key == "k"
    assert rec.to_measurement() == vm
    assert MeasurementRecord.from_json(rec.to_json()).to_measurement() == vm


def test_registry_covers_every_type():
    assert set(MESSAGE_TYPES.values()) == set(GENERATORS)
