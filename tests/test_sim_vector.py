"""Scalar-vs-vectorized emulator equivalence.

The vectorized grid-level fast path must be *bit-identical* to the
per-warp reference path: memory state, thread-level and warp-issue
``Counter``s, and every divergence statistic.  The corpus test runs
every registered benchmark on both paths; the targeted tests force the
interesting control shapes (peel + merge at the join, barriers inside
stacked execution, failed atomic-replay speculation, the ``REPRO_EMU``
escape hatch).
"""

import numpy as np
import pytest

from repro.arch import K20
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import BENCHMARKS, get_benchmark
from repro.sim.emulator import (
    EmulationError,
    emulate_kernel,
    emulation_mode,
    run_benchmark_emulated,
)
from repro.sim.memory import DeviceMemory
from repro.sim.vector import has_global_atomics
from repro.util.rng import rng_for

COUNTER_FIELDS = (
    "thread_counts", "warp_issues", "reg_ops", "branch_count",
    "divergent_branches", "partial_issues", "total_issues",
)


def assert_equivalent(scalar, vector, outs_s=None, outs_v=None):
    """Bitwise equality of results (and memory state when given)."""
    res_s, res_v = scalar, vector
    for f in COUNTER_FIELDS:
        assert getattr(res_s, f) == getattr(res_v, f), f
    assert res_s == res_v  # dataclass equality, profile excluded
    if outs_s is not None:
        assert set(outs_s) == set(outs_v)
        for name in outs_s:
            assert outs_s[name].tobytes() == outs_v[name].tobytes(), name


def run_both(module, inputs, tc, bc):
    outs_s, res_s = run_benchmark_emulated(
        module, inputs, tc=tc, bc=bc, mode="scalar"
    )
    outs_v, res_v = run_benchmark_emulated(
        module, inputs, tc=tc, bc=bc, mode="vector"
    )
    return (outs_s, res_s), (outs_v, res_v)


@pytest.mark.parametrize("seed", (0, 1))
@pytest.mark.parametrize("size_idx", (0, 1, 2))
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestCorpusEquivalence:
    """Every registered benchmark, emulated at its three smallest sizes
    with two input seeds under its declared launch, must behave
    identically on both paths -- data-dependent members (the irregular
    quartet) change control flow with the inputs, so one size/seed point
    is not representative."""

    def test_bit_identical(self, name, size_idx, seed):
        bm = get_benchmark(name)
        n = bm.sizes[size_idx]
        inputs = bm.make_inputs(
            n, rng_for("tests", "vector", name, n, seed)
        )
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
        tc, bc = bm.emu_launch(n)
        (outs_s, res_s), (outs_v, res_v) = run_both(mod, inputs, tc, bc)
        assert_equivalent(res_s, res_v, outs_s, outs_v)
        assert res_s.profile.mode == "scalar"
        assert res_v.profile.mode in ("grid", "scalar")
        if res_v.profile.mode == "grid":
            assert res_v.profile.dispatch_steps < res_s.profile.dispatch_steps


class TestForcedPeel:
    """The PR 3 regression shape: a divergent if *without* an else arm.
    Warps split at the branch, the taken rows peel onto the arm entry,
    and both sides must re-merge at the join exactly once -- the
    join-side atomic fires once per thread on both paths."""

    def _kernel(self):
        N = dsl.sparam("N")
        x, y, z, cnt = dsl.farrays("x", "y", "z", "cnt")
        i = dsl.ivar("i")
        return dsl.kernel(
            "onearm",
            params=[N, x, y, z, cnt],
            body=[
                dsl.pfor(i, N, [
                    dsl.when((i % 4).lt(2), [
                        y.store(i, x[i] * x[i] + x[i] + 1.0),
                        z.store(i, x[i] * 2.0 - 3.0),
                    ]),
                    cnt.atomic_add(0, dsl.f32(1.0)),
                ]),
            ],
        )

    def test_peel_and_merge_matches_scalar(self):
        n = 128
        mod = compile_module("onearm", [self._kernel()],
                            CompileOptions(gpu=K20))
        xv = rng_for("tests", "peel").standard_normal(n).astype(np.float32)
        inputs = {"N": n, "x": xv, "y": np.zeros(n, np.float32),
                  "z": np.zeros(n, np.float32),
                  "cnt": np.zeros(1, np.float32)}
        (outs_s, res_s), (outs_v, res_v) = run_both(mod, inputs, 32, 2)
        assert res_v.divergent_branches > 0
        assert res_v.profile.mode == "grid"  # atomics deferred, not peeled
        assert_equivalent(res_s, res_v, outs_s, outs_v)
        assert outs_v["cnt"][0] == n

    def test_intra_warp_divergence_both_arms(self):
        """Even/odd split: every warp diverges, both arms carry work."""
        N = dsl.sparam("N")
        y = dsl.farray("y")
        n = dsl.ivar("n")
        v = dsl.var("v", "f32")
        spec = dsl.kernel("eo", [N, y], [
            dsl.pfor(n, N, [
                dsl.assign("v", dsl.to_f32(n)),
                dsl.when((n % 2).eq(0),
                         [dsl.assign("v", v * 2.0 + 1.0)] * 4,
                         [dsl.assign("v", v * 3.0 - 1.0)] * 4),
                y.store(n, v),
            ]),
        ])
        mod = compile_module("eo", [spec], CompileOptions(gpu=K20))
        inputs = {"N": 96, "y": np.zeros(96, np.float32)}
        (outs_s, res_s), (outs_v, res_v) = run_both(mod, inputs, 64, 2)
        assert res_v.divergent_branches >= 2
        assert res_v.simd_efficiency < 1.0
        assert_equivalent(res_s, res_v, outs_s, outs_v)


class TestBarriers:
    def test_divergent_barrier_raises_on_both_paths(self):
        """A warp-varying guard around bar.sync: some warps of the block
        reach the barrier, others never do.  Both paths must reject it
        with the scalar path's error."""
        N = dsl.sparam("N")
        x, y = dsl.farrays("x", "y")
        i = dsl.ivar("i")
        spec = dsl.kernel(
            "badbar", [N, x, y],
            [
                dsl.pfor(i, N, [
                    dsl.when((i // 32).eq(0), [
                        y.store(i, x[i] + 1.0),
                        dsl.sync(),
                        y.store(i, x[i] + 2.0),
                    ]),
                ]),
            ],
            smem_arrays=(("pad", 1, dsl.DType.F32),),
        )
        mod = compile_module("badbar", [spec], CompileOptions(gpu=K20))
        inputs = {"N": 64, "x": np.ones(64, np.float32),
                  "y": np.zeros(64, np.float32)}
        for mode in ("scalar", "vector"):
            with pytest.raises(EmulationError, match="divergent bar.sync"):
                run_benchmark_emulated(mod, inputs, tc=64, bc=1, mode=mode)


class TestAtomicReplaySpeculation:
    def _kernel(self):
        """Loads the array it atomically reduces into -- the shape the
        deferred-replay speculation must detect and retract."""
        N = dsl.sparam("N")
        x, acc, out = dsl.farrays("x", "acc", "out")
        i = dsl.ivar("i")
        return dsl.kernel(
            "specfail", [N, x, acc, out],
            [
                dsl.pfor(i, N, [
                    acc.atomic_add(0, x[i]),
                    out.store(i, acc[0]),
                ]),
            ],
        )

    def test_falls_back_to_scalar_path(self):
        n = 64
        mod = compile_module("specfail", [self._kernel()],
                            CompileOptions(gpu=K20))
        xv = rng_for("tests", "spec").standard_normal(n).astype(np.float32)

        def inputs():
            return {"N": n, "x": xv.copy(),
                    "acc": np.zeros(1, np.float32),
                    "out": np.zeros(n, np.float32)}

        (outs_s, res_s), _ = run_both(mod, inputs(), 32, 2)
        outs_v, res_v = run_benchmark_emulated(mod, inputs(), tc=32, bc=2,
                                               mode="vector")
        assert res_v.profile.mode == "scalar"  # speculation retracted
        assert_equivalent(res_s, res_v, outs_s, outs_v)

    def test_safe_atomics_stay_stacked(self):
        bm = get_benchmark("dot")
        ck = compile_module("dot", list(bm.specs),
                            CompileOptions(gpu=K20)).kernels[0]
        assert has_global_atomics(ck)
        _outs, res = bm.emulate(mode="vector")
        assert res.profile.mode == "grid"

    def test_shared_atomics_run_scalar(self):
        """red.shared accumulation order cannot be replayed (shared
        memory is read back by design): such kernels must take the
        scalar path, bit-identically."""
        from repro.codegen.ast_nodes import AtomicAdd, Load
        from repro.ptx.isa import DType
        from repro.sim.vector import has_shared_atomics

        N = dsl.sparam("N")
        x, out = dsl.farrays("x", "out")
        i = dsl.ivar("i")
        lane = dsl.ivar("lane")
        spec = dsl.kernel(
            "smematomic", [N, x, out],
            [
                dsl.pfor(i, N, [
                    dsl.assign("lane", i % 64),
                    AtomicAdd("acc", lane % 2, x[i]),
                    dsl.sync(),
                    out.store(i, Load("acc", lane % 2, DType.F32)),
                ]),
            ],
            smem_arrays=(("acc", 2, DType.F32),),
        )
        mod = compile_module("smematomic", [spec], CompileOptions(gpu=K20))
        assert has_shared_atomics(mod.kernels[0])
        xv = rng_for("tests", "smem-atomic").standard_normal(64)
        inputs = {"N": 64, "x": xv.astype(np.float32),
                  "out": np.zeros(64, np.float32)}
        (outs_s, res_s), (outs_v, res_v) = run_both(mod, inputs, 64, 1)
        assert res_v.profile.mode == "scalar"
        assert_equivalent(res_s, res_v, outs_s, outs_v)


class TestRouting:
    def test_env_escape_hatch(self, monkeypatch, matvec_spec):
        from repro.codegen.compiler import compile_kernel

        ck = compile_kernel(matvec_spec, CompileOptions(gpu=K20))

        def run():
            memory = DeviceMemory()
            memory.alloc("A", np.ones(16, np.float32))
            memory.alloc("x", np.ones(4, np.float32))
            memory.alloc("y", np.zeros(4, np.float32))
            params = {"N": 4, "A": None, "x": None, "y": None}
            res, _ = emulate_kernel(ck, params, tc=32, bc=1, memory=memory)
            return res

        monkeypatch.setenv("REPRO_EMU", "scalar")
        assert run().profile.mode == "scalar"
        monkeypatch.setenv("REPRO_EMU", "vector")
        assert run().profile.mode == "grid"
        monkeypatch.delenv("REPRO_EMU")
        assert run().profile.mode == "grid"  # fast path is the default

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown emulator mode"):
            emulation_mode("turbo")

    def test_benchmark_emulate_routes_modes(self, monkeypatch):
        bm = get_benchmark("atax")
        outs_v, res_v = bm.emulate()
        assert res_v.profile.mode == "grid"
        monkeypatch.setenv("REPRO_EMU", "scalar")
        outs_s, res_s = bm.emulate()
        assert res_s.profile.mode == "scalar"
        assert_equivalent(res_s, res_v, outs_s, outs_v)


class TestLaunchProfile:
    def test_width_and_merge(self):
        bm = get_benchmark("gemm")
        _outs, res = bm.emulate(mode="vector")
        prof = res.profile
        assert prof.mode == "grid"
        assert prof.mean_stack_width > 1.0
        assert prof.issue_slots == res.total_issues
        assert prof.wall_seconds > 0
        merged = prof.merged(prof)
        assert merged.issue_slots == 2 * prof.issue_slots
        assert merged.mode == "grid"
