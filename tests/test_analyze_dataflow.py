"""Dataflow framework units: solver, reaching defs, liveness, guards."""

import pytest

from repro.analyze.dataflow import (
    ALWAYS,
    UNDEF,
    Guard,
    GuardedDefinitions,
    Liveness,
    ReachingDefinitions,
    first_undefined_read,
    linear_blocks,
)
from repro.arch import K20
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import BENCHMARKS, get_benchmark
from repro.ptx.cfg import build_cfg
from repro.ptx.instruction import Imm, Instruction, Reg
from repro.ptx.isa import CmpOp, DType, Opcode
from repro.ptx.module import KernelIR, KernelParam
from repro.ptx.parser import parse_kernel
from repro.ptx.verifier import VerificationError, verify_kernel


def _kernel(body: str, params=".param .s32 N, .param .f32* x", regs=8):
    text = (
        f".kernel k({params})\n.reg {regs}\n.shared 0\n.target sm_35\n"
        "{\n" + body + "\n}"
    )
    return parse_kernel(text)


def _compiled(name: str):
    bench = get_benchmark(name)
    module = compile_module(
        bench.name, list(bench.specs), CompileOptions(gpu=K20)
    )
    return next(iter(module))


_R = {i: Reg(f"%r{i}", DType.S32) for i in range(1, 6)}
_P = Reg("%p1", DType.PRED)


def _guarded_ir(read_negated: bool) -> KernelIR:
    """%r2 defined under @%p1, read back under @%p1 or @!%p1."""
    body = [
        Instruction(Opcode.MOV, DType.S32, _R[1], (Imm(7, DType.S32),)),
        Instruction(Opcode.SETP, DType.S32, _P,
                    (_R[1], Imm(0, DType.S32)), cmp=CmpOp.GT),
        Instruction(Opcode.MOV, DType.S32, _R[2], (Imm(1, DType.S32),),
                    pred=_P),
        Instruction(Opcode.ADD, DType.S32, _R[3],
                    (_R[2], Imm(1, DType.S32)), pred=_P,
                    pred_negated=read_negated),
        Instruction(Opcode.EXIT),
    ]
    return KernelIR(
        name="guarded", params=(KernelParam("N", DType.S32, False),),
        body=body, regs_per_thread=4, static_smem_bytes=0,
    )


class TestLinearBlocks:
    def test_global_indices_cover_the_body(self):
        ck = _compiled("dot")
        cfg = build_cfg(ck.ir)
        blocks = linear_blocks(cfg)
        # starts are a running sum of block lengths, in body order
        total = 0
        for name, block, start in blocks:
            assert start == total
            total += len(block.instructions)
        assert total == len(ck.ir.instructions())


class TestReachingDefinitions:
    def test_compiled_corpus_has_no_undefined_reads(self):
        for name in BENCHMARKS:
            ck = _compiled(name)
            assert first_undefined_read(build_cfg(ck.ir)) is None, name

    def test_flags_read_of_never_written_register(self):
        k = _kernel("  add.s32 %r1, %r2, %r3;\n  exit;")
        hit = first_undefined_read(build_cfg(k))
        assert hit is not None
        idx, _ins, reg = hit
        assert (idx, reg) == (0, "%r2")

    def test_one_armed_definition_still_reaches_undef(self):
        # %r2 written only on the taken path; the fall-through still
        # carries the synthetic UNDEF site to the join
        k = _kernel(
            "  ld.param.s32 %r1, [N];\n"
            "  setp.gt.s32 %p1, %r1, 0;\n"
            "  @%p1 bra $L_then;\n"
            "  bra $L_join;\n"
            "$L_then:\n"
            "  mov.s32 %r2, 1;\n"
            "$L_join:\n"
            "  add.s32 %r3, %r2, 1;\n"
            "  exit;",
        )
        cfg = build_cfg(k)
        hit = first_undefined_read(cfg)
        assert hit is not None and hit[2] == "%r2"
        rd = ReachingDefinitions(cfg).solve()
        sites = rd.block_in["$L_join"]["%r2"]
        assert UNDEF in sites and len(sites) == 2

    def test_verifier_delegates_with_same_message(self):
        k = _kernel("  add.s32 %r1, %r2, %r3;\n  exit;")
        with pytest.raises(
            VerificationError,
            match=r"k\[0\].*register %r2 read before definition",
        ):
            verify_kernel(k)

    def test_verifier_accepts_loop_carried_registers(self):
        # pre-initialized before the header, redefined in the latch --
        # the structured shape RD must prove defined
        verify_kernel(_compiled("dot").ir)


class TestLiveness:
    def test_straight_line_live_sets(self):
        k = _kernel(
            "  ld.param.s32 %r1, [N];\n"
            "  add.s32 %r2, %r1, 1;\n"
            "  add.s32 %r3, %r2, %r1;\n"
            "  exit;",
        )
        cfg = build_cfg(k)
        lv = Liveness(cfg).solve()
        entry = cfg.entry_block
        assert lv.live_out(entry) == frozenset()
        assert lv.live_in(entry) == frozenset()

    def test_loop_carried_register_live_at_latch(self):
        ck = _compiled("dot")
        cfg = build_cfg(ck.ir)
        lv = Liveness(cfg).solve()
        loops = cfg.natural_loops()
        assert loops
        # something must be live around every back edge of a real loop
        assert all(lv.live_out(loop.latch) for loop in loops)


class TestGuardedDefinitions:
    def _state_at_read(self, k: KernelIR) -> dict:
        cfg = build_cfg(k)
        gd = GuardedDefinitions(cfg).solve()
        name = cfg.entry_block
        state = dict(gd.block_in[name])
        for ins in cfg.blocks[name].instructions[:3]:
            gd._transfer(ins, state)
        return state

    def test_same_guard_read_is_covered(self):
        k = _guarded_ir(read_negated=False)
        state = self._state_at_read(k)
        read = k.instructions()[3]
        assert GuardedDefinitions.read_ok(read, "%r2", state)

    def test_opposite_guard_read_is_not(self):
        k = _guarded_ir(read_negated=True)
        state = self._state_at_read(k)
        read = k.instructions()[3]
        assert not GuardedDefinitions.read_ok(read, "%r2", state)

    def test_both_polarities_promote_to_always(self):
        state: dict = {}
        write = Instruction(Opcode.MOV, DType.S32, _R[2],
                            (Imm(1, DType.S32),), pred=_P)
        GuardedDefinitions._transfer(write, state)
        assert state["%r2"] == frozenset({Guard("%p1", False)})
        write_neg = Instruction(Opcode.MOV, DType.S32, _R[2],
                                (Imm(2, DType.S32),), pred=_P,
                                pred_negated=True)
        GuardedDefinitions._transfer(write_neg, state)
        assert state["%r2"] is ALWAYS

    def test_predicate_redefinition_invalidates_guards(self):
        state: dict = {}
        write = Instruction(Opcode.MOV, DType.S32, _R[2],
                            (Imm(1, DType.S32),), pred=_P)
        GuardedDefinitions._transfer(write, state)
        redef = Instruction(Opcode.SETP, DType.S32, _P,
                            (_R[1], Imm(5, DType.S32)), cmp=CmpOp.LT)
        GuardedDefinitions._transfer(redef, state)
        assert state["%r2"] == frozenset()
