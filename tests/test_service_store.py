"""The shared measurement store and the hardened CacheStore beneath it:
per-connection WAL pragmas, cross-thread access, idempotent flush,
schema-version adoption, and LRU eviction.
"""

from __future__ import annotations

import sqlite3
import threading

from repro.autotune.measure import VariantMeasurement
from repro.engine.cache import CacheStore
from repro.service.store import STORE_SCHEMA_VERSION, MeasurementStore


def _m(i: int) -> VariantMeasurement:
    return VariantMeasurement(
        config={"TC": 32 * (i + 1), "BC": 48}, size=16,
        seconds=1e-4 * (i + 1), occupancy=0.5, regs_per_thread=20,
        reg_instructions=100.0,
    )


def test_every_connection_gets_wal_and_busy_timeout(tmp_path):
    """The seed bug under test: pragmas are per-connection, so a second
    thread's connection must re-apply them or concurrent sessions fall
    back to rollback journaling and 'database is locked'."""
    store = CacheStore(tmp_path)
    seen: dict[str, tuple] = {}

    def probe(label: str) -> None:
        conn = store._conn  # opens this thread's connection lazily
        (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        (timeout,) = conn.execute("PRAGMA busy_timeout").fetchone()
        seen[label] = (mode, timeout, id(conn))

    probe("main")
    t = threading.Thread(target=probe, args=("worker",))
    t.start()
    t.join()
    assert seen["main"][0] == "wal"
    assert seen["worker"][0] == "wal"
    assert seen["worker"][1] > 0
    assert seen["main"][2] != seen["worker"][2]  # distinct connections
    store.close()


def test_cross_thread_get_put(tmp_path):
    store = MeasurementStore(tmp_path)
    errors: list = []

    def writer(base: int) -> None:
        try:
            store.put_many(
                (f"k{base + i}", _m(i)) for i in range(20)
            )
            found = store.get_many([f"k{base + i}" for i in range(20)])
            assert len(found) == 20
        except Exception as e:
            errors.append(e)

    threads = [
        threading.Thread(target=writer, args=(100 * t,)) for t in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert len(store) == 80
    store.close()


def test_flush_is_idempotent_and_safe_after_close(tmp_path):
    store = MeasurementStore(tmp_path)
    store.put("k", _m(0))
    store.flush()
    store.flush()  # idempotent
    assert store.get("k") == _m(0)
    store.close()
    store.flush()  # silent no-op on a closed store
    store.close()  # close is idempotent too


def test_schema_version_adoption_and_rebuild(tmp_path):
    store = MeasurementStore(tmp_path)
    store.put("k", _m(0))
    store.close()

    # same schema: reopened store keeps its contents
    again = MeasurementStore(tmp_path)
    assert len(again) == 1
    assert again.schema_version == STORE_SCHEMA_VERSION
    again.close()

    # a store stamped with a foreign schema is emptied, not misread
    conn = sqlite3.connect(str(tmp_path / "measurements.sqlite"))
    conn.execute("UPDATE meta SET value = '999' WHERE key = 'store_schema'")
    conn.commit()
    conn.close()
    rebuilt = MeasurementStore(tmp_path)
    assert len(rebuilt) == 0
    rebuilt.put("k2", _m(1))
    rebuilt.close()

    # a plain CacheStore database (no meta rows) is adopted by emptying
    plain_dir = tmp_path / "plain"
    plain = CacheStore(plain_dir)
    plain.put("old", _m(0))
    plain.close()
    promoted = MeasurementStore(plain_dir)
    assert len(promoted) == 0
    promoted.close()


def test_lru_eviction(tmp_path):
    store = MeasurementStore(tmp_path, max_entries=4)
    store.put_many((f"k{i}", _m(i)) for i in range(4))
    assert store.evict() == 0  # at the cap, nothing to do

    # touch k0 and k1 so k2/k3 are the LRU victims when we overflow
    store.get_many(["k0", "k1"])
    store.put_many((f"k{i}", _m(i)) for i in range(4, 6))
    assert len(store) == 6
    evicted = store.evict()
    assert evicted == 2
    assert store.evicted == 2
    assert len(store) == 4
    remaining = store.get_many([f"k{i}" for i in range(6)])
    assert sorted(remaining) == ["k0", "k1", "k4", "k5"]

    # an explicit cap overrides the configured one
    assert store.evict(max_entries=1) == 3
    store.close()


def test_unbounded_store_never_evicts(tmp_path):
    store = MeasurementStore(tmp_path)
    store.put_many((f"k{i}", _m(i)) for i in range(10))
    assert store.evict() == 0
    assert len(store) == 10
    store.close()


def test_engine_never_closes_a_shared_store(tmp_path):
    """A MeasurementStore instance passed to SweepEngine must survive
    the engine's context exit (the server shares one store across every
    drainer engine)."""
    from repro.engine import SweepEngine

    store = MeasurementStore(tmp_path)
    with SweepEngine(jobs=1, cache=store):
        pass
    store.put("still-open", _m(0))  # would raise if the engine closed it
    store.close()
