"""Tests for the IR verifier: valid code passes, violations raise."""

import pytest

from repro.arch import ALL_GPUS
from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.kernels import BENCHMARKS
from repro.ptx.parser import parse_kernel
from repro.ptx.verifier import VerificationError, verify_kernel


def _kernel(body: str, params=".param .s32 N, .param .f32* x", regs=8):
    text = (
        f".kernel k({params})\n.reg {regs}\n.shared 0\n.target sm_35\n"
        "{\n" + body + "\n}"
    )
    return parse_kernel(text)


class TestValidKernels:
    def test_all_compiled_benchmarks_verify(self):
        """Every benchmark x architecture compilation must verify."""
        for name, bm in BENCHMARKS.items():
            for gpu in ALL_GPUS:
                for spec in bm.specs:
                    ck = compile_kernel(
                        spec,
                        CompileOptions(gpu=gpu, unroll_factor=2,
                                       fast_math=True),
                    )
                    verify_kernel(ck.ir)  # compile already verifies; explicit

    def test_minimal_kernel(self):
        verify_kernel(_kernel("  exit;"))


class TestViolations:
    def test_missing_terminator(self):
        k = _kernel("  ld.param.s32 %r1, [N];")
        with pytest.raises(VerificationError, match="terminator"):
            verify_kernel(k)

    def test_undefined_label(self):
        k = _kernel("  bra $L_nowhere;\n  exit;")
        with pytest.raises(VerificationError, match="undefined label"):
            verify_kernel(k)

    def test_read_before_definition(self):
        k = _kernel("  add.s32 %r1, %r2, %r3;\n  exit;")
        with pytest.raises(VerificationError, match="read before definition"):
            verify_kernel(k)

    def test_unknown_parameter(self):
        k = _kernel("  ld.param.s32 %r1, [Q];\n  exit;")
        with pytest.raises(VerificationError, match="unknown parameter"):
            verify_kernel(k)

    def test_type_mismatch(self):
        k = _kernel(
            "  ld.param.s32 %r1, [N];\n"
            "  add.f32 %f1, %r1, %r1;\n  exit;"
        )
        with pytest.raises(VerificationError, match="type mismatch"):
            verify_kernel(k)

    def test_register_budget_exceeded(self):
        # declares 2 registers but uses 3 distinct 32-bit slots
        k = _kernel(
            "  ld.param.s32 %r1, [N];\n"
            "  add.s32 %r2, %r1, 1;\n"
            "  add.s32 %r3, %r2, 1;\n"
            "  st.global.f32 [%rd1], %f1;\n  exit;",
            regs=2,
        )
        with pytest.raises(VerificationError):
            verify_kernel(k)

    def test_setp_dst_must_be_pred(self):
        k = _kernel(
            "  ld.param.s32 %r1, [N];\n"
            "  setp.lt.s32 %r2, %r1, %r1;\n  exit;"
        )
        with pytest.raises(VerificationError, match="setp dst"):
            verify_kernel(k)
