"""Tests for utilities: tables, stats, RNG policy."""

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import rng_for
from repro.util.stats import (
    describe,
    mean_absolute_error,
    mode,
    normalize,
    percentile,
    sum_squared_error,
)
from repro.util.tables import ascii_bar_chart, ascii_histogram, ascii_table


class TestStats:
    def test_mae(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)

    def test_mae_validates(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1], [1, 2])
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_sse(self):
        assert sum_squared_error([1, 2], [2, 4]) == pytest.approx(5.0)

    def test_mode_ties_break_small(self):
        assert mode([3, 3, 1, 1, 2]) == 1

    def test_mode_empty(self):
        with pytest.raises(ValueError):
            mode([])

    def test_percentile(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_normalize_constant(self):
        assert normalize([5, 5, 5]).tolist() == [0, 0, 0]

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_normalize_range_property(self, vals):
        out = normalize(vals)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_describe_keys(self):
        d = describe([1.0, 2.0, 2.0, 9.0])
        assert d["mode"] == 2.0
        assert set(d) == {"mean", "std", "mode", "p25", "p50", "p75"}


class TestTables:
    def test_ascii_table_alignment(self):
        out = ascii_table(["A", "BB"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_row_arity_checked(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["A"], [[1, 2]])

    def test_bar_chart(self):
        out = ascii_bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        assert "##########" in out
        assert "yy" in out

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["x"], [1.0, 2.0])

    def test_histogram(self):
        out = ascii_histogram([1, 1, 2, 9], bins=[0, 5, 10])
        assert "3" in out and "1" in out


class TestRng:
    def test_deterministic_per_scope(self):
        assert rng_for("a", 1).random() == rng_for("a", 1).random()

    def test_different_scopes_differ(self):
        assert rng_for("a").random() != rng_for("b").random()

    def test_seed_override(self):
        assert (rng_for("a", seed=1).random()
                != rng_for("a", seed=2).random())
