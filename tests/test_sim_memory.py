"""Tests for the emulated device memory."""

import numpy as np
import pytest

from repro.ptx.isa import DType
from repro.sim.memory import DeviceMemory, MemoryError_


@pytest.fixture
def mem():
    m = DeviceMemory()
    m.alloc("a", np.arange(16, dtype=np.float32))
    m.alloc("b", np.arange(8, dtype=np.int32))
    return m


def addrs_of(mem, name, idx):
    base = mem.allocation(name).base
    elem = mem.allocation(name).elem_size
    return base + np.asarray(idx, dtype=np.int64) * elem


class TestAllocation:
    def test_bases_aligned_and_disjoint(self, mem):
        a = mem.allocation("a")
        b = mem.allocation("b")
        assert a.base % DeviceMemory.ALIGN == 0
        assert b.base % DeviceMemory.ALIGN == 0
        assert b.base >= a.end

    def test_unknown_allocation(self, mem):
        with pytest.raises(KeyError):
            mem.allocation("zzz")

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            DeviceMemory().alloc("m", np.zeros((2, 2)))


class TestGatherScatter:
    def test_gather(self, mem):
        idx = np.arange(32) % 16
        addrs = addrs_of(mem, "a", idx)
        mask = np.ones(32, dtype=bool)
        out = mem.gather(addrs, mask, DType.F32)
        np.testing.assert_array_equal(out, idx.astype(np.float32))

    def test_gather_masked_lanes_read_zero(self, mem):
        addrs = addrs_of(mem, "a", np.zeros(32, dtype=int))
        mask = np.zeros(32, dtype=bool)
        mask[3] = True
        out = mem.gather(addrs, mask, DType.F32)
        assert out[0] == 0.0 and out[3] == 0.0  # a[0] == 0 anyway
        mask2 = np.zeros(32, dtype=bool)
        mask2[5] = True
        addrs5 = addrs_of(mem, "a", np.full(32, 7))
        out2 = mem.gather(addrs5, mask2, DType.F32)
        assert out2[5] == 7.0 and out2[0] == 0.0

    def test_scatter(self, mem):
        idx = np.arange(32) % 16
        addrs = addrs_of(mem, "a", idx)
        mask = np.ones(32, dtype=bool)
        mem.scatter(addrs, mask, np.full(32, 9.0, dtype=np.float32),
                    DType.F32)
        np.testing.assert_array_equal(
            mem.allocation("a").data, np.full(16, 9.0, dtype=np.float32)
        )

    def test_scatter_add_accumulates_duplicates(self, mem):
        addrs = addrs_of(mem, "a", np.zeros(32, dtype=int))
        mask = np.ones(32, dtype=bool)
        mem.scatter_add(addrs, mask, np.ones(32, dtype=np.float32),
                        DType.F32)
        assert mem.allocation("a").data[0] == pytest.approx(32.0)

    def test_scatter_nothing_when_empty_mask(self, mem):
        before = mem.allocation("a").data.copy()
        addrs = addrs_of(mem, "a", np.zeros(32, dtype=int))
        mem.scatter(addrs, np.zeros(32, dtype=bool),
                    np.full(32, 5.0, np.float32), DType.F32)
        np.testing.assert_array_equal(mem.allocation("a").data, before)


class TestBoundsChecking:
    def test_out_of_bounds_raises(self, mem):
        # first lane in-bounds, another one past the end: caught as OOB
        idx = np.zeros(32, dtype=int)
        idx[5] = 16
        addrs = addrs_of(mem, "a", idx)
        with pytest.raises(MemoryError_, match="out-of-bounds"):
            mem.gather(addrs, np.ones(32, dtype=bool), DType.F32)

    def test_past_end_padding_raises(self, mem):
        addrs = addrs_of(mem, "a", np.full(32, 16))  # alignment padding
        with pytest.raises(MemoryError_):
            mem.gather(addrs, np.ones(32, dtype=bool), DType.F32)

    def test_wild_address_raises(self, mem):
        addrs = np.full(32, 0x42, dtype=np.int64)
        with pytest.raises(MemoryError_, match="outside every allocation"):
            mem.gather(addrs, np.ones(32, dtype=bool), DType.F32)

    def test_misaligned_raises(self, mem):
        addrs = addrs_of(mem, "a", np.zeros(32, dtype=int)) + 2
        with pytest.raises(MemoryError_, match="misaligned"):
            mem.gather(addrs, np.ones(32, dtype=bool), DType.F32)
