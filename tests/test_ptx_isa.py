"""Tests for opcode categorization and ISA metadata."""

import pytest

from repro.arch.throughput import InstrCategory
from repro.ptx.isa import (
    DType,
    Opcode,
    SFU_OPS,
    TERMINATORS,
    NO_DEST,
    categorize,
)


class TestDType:
    def test_sizes(self):
        assert DType.F32.nbytes == 4
        assert DType.F64.nbytes == 8
        assert DType.S32.nbytes == 4
        assert DType.S64.nbytes == 8
        assert DType.PRED.nbytes == 1

    def test_class_predicates(self):
        assert DType.F32.is_float and not DType.F32.is_int
        assert DType.S64.is_int and DType.S64.is_64bit
        assert not DType.F32.is_64bit and DType.F64.is_64bit


class TestCategorize:
    @pytest.mark.parametrize(
        "op,dt,cat",
        [
            (Opcode.ADD, DType.F32, InstrCategory.FP32),
            (Opcode.FMA, DType.F32, InstrCategory.FP32),
            (Opcode.MUL, DType.F64, InstrCategory.FP64),
            (Opcode.ADD, DType.S32, InstrCategory.INT_ADD32),
            (Opcode.MAD, DType.S32, InstrCategory.INT_ADD32),
            (Opcode.MULWIDE, DType.S64, InstrCategory.INT_ADD32),
            (Opcode.MIN, DType.F32, InstrCategory.COMP_MINMAX),
            (Opcode.SELP, DType.S32, InstrCategory.COMP_MINMAX),
            (Opcode.SHL, DType.S32, InstrCategory.SHIFT),
            (Opcode.AND, DType.PRED, InstrCategory.SHIFT),
            (Opcode.CVT, DType.S64, InstrCategory.CONV64),
            (Opcode.CVT, DType.F32, InstrCategory.CONV32),
            (Opcode.EX2, DType.F32, InstrCategory.LOG_SIN_COS),
            (Opcode.DIV, DType.S32, InstrCategory.LOG_SIN_COS),
            (Opcode.SQRT, DType.F32, InstrCategory.LOG_SIN_COS),
            (Opcode.LD, DType.F32, InstrCategory.LDST),
            (Opcode.ST, DType.F32, InstrCategory.LDST),
            (Opcode.RED, DType.F32, InstrCategory.LDST),
            (Opcode.SETP, DType.S32, InstrCategory.PRED_CTRL),
            (Opcode.BRA, None, InstrCategory.PRED_CTRL),
            (Opcode.BAR, None, InstrCategory.PRED_CTRL),
            (Opcode.EXIT, None, InstrCategory.PRED_CTRL),
            (Opcode.MOV, DType.S32, InstrCategory.MOVE),
        ],
    )
    def test_mapping(self, op, dt, cat):
        assert categorize(op, dt) is cat

    def test_every_opcode_categorizable(self):
        """No opcode may fall through the categorization."""
        for op in Opcode:
            for dt in (DType.F32, DType.F64, DType.S32, DType.S64, None):
                try:
                    cat = categorize(op, dt)
                except ValueError:
                    continue
                assert isinstance(cat, InstrCategory)
                break
            else:
                pytest.fail(f"{op} not categorizable with any dtype")

    def test_sfu_ops_always_logsincos(self):
        for op in SFU_OPS:
            assert categorize(op, DType.F32) is InstrCategory.LOG_SIN_COS


class TestStructuralSets:
    def test_terminators(self):
        assert Opcode.BRA in TERMINATORS
        assert Opcode.EXIT in TERMINATORS
        assert Opcode.RET in TERMINATORS
        assert Opcode.ADD not in TERMINATORS

    def test_no_dest(self):
        for op in (Opcode.ST, Opcode.RED, Opcode.BRA, Opcode.BAR,
                   Opcode.RET, Opcode.EXIT):
            assert op in NO_DEST
        assert Opcode.LD not in NO_DEST
