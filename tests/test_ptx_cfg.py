"""Tests for CFG construction, dominators, loops, divergence detection."""

import pytest

from repro.arch import K20
from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.kernels import get_benchmark
from repro.ptx.cfg import ENTRY, EXIT, build_cfg
from repro.ptx.parser import parse_kernel

LOOP_KERNEL = """
.kernel loopk(.param .s32 N, .param .f32* x)
.reg 8
.shared 0
.target sm_35
{
  ld.param.s32 %r1, [N];
  ld.param.s64 %rd1, [x];
  mov.s32 %r2, 0;
  setp.ge.s32 %p1, %r2, %r1;
  @%p1 bra $L_exit;
$L_loop:
  add.s32 %r2, %r2, 1;
  setp.lt.s32 %p1, %r2, %r1;
  @%p1 bra $L_loop;
$L_exit:
  exit;
}
"""

DIVERGE_KERNEL = """
.kernel divk(.param .f32* x)
.reg 8
.shared 0
.target sm_35
{
  ld.param.s64 %rd1, [x];
  mov.s32 %r1, %tid.x;
  and.s32 %r2, %r1, 1;
  setp.eq.s32 %p1, %r2, 0;
  @!%p1 bra $L_else;
  mov.f32 %f1, 1.0;
  bra $L_end;
$L_else:
  mov.f32 %f1, 2.0;
$L_end:
  mul.wide.s32 %rd2, %r1, 4;
  add.s64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], %f1;
  exit;
}
"""

UNIFORM_BRANCH_KERNEL = """
.kernel unik(.param .s32 N, .param .f32* x)
.reg 8
.shared 0
.target sm_35
{
  ld.param.s32 %r1, [N];
  ld.param.s64 %rd1, [x];
  setp.gt.s32 %p1, %r1, 10;
  @!%p1 bra $L_end;
  mov.f32 %f1, 1.0;
  st.global.f32 [%rd1], %f1;
$L_end:
  exit;
}
"""


class TestBlockStructure:
    def test_loop_kernel_blocks(self):
        cfg = build_cfg(parse_kernel(LOOP_KERNEL))
        assert cfg.block_count() == 3  # preamble, loop, exit
        assert "$L_loop" in cfg.blocks
        assert "$L_exit" in cfg.blocks

    def test_entry_and_exit_wiring(self):
        cfg = build_cfg(parse_kernel(LOOP_KERNEL))
        assert cfg.entry_block not in (ENTRY, EXIT)
        assert cfg.graph.has_edge(ENTRY, cfg.entry_block)

    def test_successors_of_conditional(self):
        cfg = build_cfg(parse_kernel(DIVERGE_KERNEL))
        entry = cfg.entry_block
        succ = set(cfg.successors(entry))
        assert "$L_else" in succ
        assert len(succ) == 2

    def test_empty_body_rejected(self):
        from repro.ptx.module import KernelIR

        with pytest.raises(ValueError, match="empty body"):
            build_cfg(KernelIR("k", (), []))


class TestDominators:
    def test_loop_header_dominates_latch(self):
        cfg = build_cfg(parse_kernel(LOOP_KERNEL))
        assert cfg.dominates(cfg.entry_block, "$L_loop")
        assert cfg.dominates("$L_loop", "$L_loop")
        assert not cfg.dominates("$L_exit", "$L_loop")

    def test_back_edge_detection(self):
        cfg = build_cfg(parse_kernel(LOOP_KERNEL))
        assert cfg.back_edges() == [("$L_loop", "$L_loop")]

    def test_natural_loops(self):
        cfg = build_cfg(parse_kernel(LOOP_KERNEL))
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].header == "$L_loop"
        assert loops[0].depth == 1
        assert "$L_loop" in loops[0]

    def test_nested_loop_depth(self, matvec_spec):
        ck = compile_kernel(matvec_spec, CompileOptions(gpu=K20))
        cfg = build_cfg(ck.ir)
        loops = cfg.natural_loops()
        assert len(loops) == 2  # grid-stride loop + inner j loop
        assert sorted(lp.depth for lp in loops) == [1, 2]

    def test_reconvergence_point_of_if(self):
        cfg = build_cfg(parse_kernel(DIVERGE_KERNEL))
        entry = cfg.entry_block
        assert cfg.reconvergence_point(entry) == "$L_end"


class TestDivergence:
    def test_tid_dependent_branch_flagged(self):
        cfg = build_cfg(parse_kernel(DIVERGE_KERNEL))
        assert cfg.divergent_branch_blocks() == [cfg.entry_block]

    def test_uniform_branch_not_flagged(self):
        cfg = build_cfg(parse_kernel(UNIFORM_BRANCH_KERNEL))
        assert cfg.conditional_branch_blocks()  # it IS conditional
        assert cfg.divergent_branch_blocks() == []  # but not divergent

    def test_ex14fj_boundary_branch_divergent(self):
        bm = get_benchmark("ex14fj")
        ck = compile_kernel(bm.specs[0], CompileOptions(gpu=K20))
        cfg = build_cfg(ck.ir)
        # grid-stride guard + boundary check are both thread-dependent
        assert len(cfg.divergent_branch_blocks()) >= 2
