"""The autotuning service end to end: concurrency, determinism, store
sharing, external mode, and the structured error surface.

The headline acceptance test (ISSUE 10): >=4 simultaneous sessions
against one server return results *byte-identical* to in-process
tuning of the same requests, and a second pass serves 100% from the
shared measurement store.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import TuneRequest, run_tune_request
from repro.api.protocol import PROTOCOL_VERSION, SpaceSpec
from repro.autotune.space import Parameter, ParameterSpace
from repro.client import ReproClient, ServiceError, connect
from repro.service.server import ThreadedServer

SMALL_SPACE = SpaceSpec.from_space(ParameterSpace([
    Parameter("TC", (32, 64)),
    Parameter("BC", (48, 96)),
]))

#: four distinct concurrent workloads: different kernels, strategies,
#: and budgets, all tiny enough to finish in seconds
REQUESTS = [
    TuneRequest(kernel="atax", gpu="kepler", size=16,
                search="exhaustive", space=SMALL_SPACE),
    TuneRequest(kernel="bicg", gpu="kepler", size=16,
                search="exhaustive", space=SMALL_SPACE, tenant="team-a"),
    TuneRequest(kernel="matvec2d", gpu="fermi", size=16,
                search="random", budget=6, space=SMALL_SPACE,
                search_args={"seed": 7, "block": 2}),
    TuneRequest(kernel="atax", gpu="fermi", size=16,
                search="exhaustive", space=SMALL_SPACE, tenant="team-b"),
]


def wire_doc(result) -> str:
    """A session result as its canonical wire bytes, session identity
    stripped (ids differ between server and local by construction)."""
    doc = result.to_json()
    doc.pop("session_id")
    return json.dumps(doc, sort_keys=True, allow_nan=False)


@pytest.fixture()
def server(tmp_path):
    with ThreadedServer(cache_dir=tmp_path, drainers=2) as ts:
        yield ts


def test_concurrent_sessions_byte_identical_and_warm(server):
    baselines = [wire_doc(run_tune_request(r)) for r in REQUESTS]

    client = connect(server.url)
    results: dict[int, str] = {}
    errors: list = []

    def drive(i: int) -> None:
        try:
            c = ReproClient(server.url)
            status = c.submit(REQUESTS[i])
            assert status.state in ("pending", "running", "waiting",
                                    "done")
            results[i] = wire_doc(c.wait(status.session_id, timeout=120))
        except Exception as e:  # surfaced below; threads must not hide it
            errors.append((i, e))

    threads = [
        threading.Thread(target=drive, args=(i,))
        for i in range(len(REQUESTS))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    assert not errors, errors
    assert len(results) == len(REQUESTS)
    for i, baseline in enumerate(baselines):
        assert results[i] == baseline, f"session {i} differs from local"

    # warm second pass: every point of every session served from the
    # shared store -- the fleet measures nothing new
    measured_before = client.store_stats().measured
    second = {}
    for i, request in enumerate(REQUESTS):
        status = client.submit(request)
        second[i] = wire_doc(client.wait(status.session_id, timeout=120))
    assert second == dict(enumerate(baselines))
    stats = client.store_stats()
    assert stats.measured == measured_before, (
        f"warm pass measured {stats.measured - measured_before} fresh "
        "points; expected 100% store hits"
    )
    assert stats.served_from_cache > 0
    assert stats.entries > 0


def test_handshake_and_listing(server):
    client = connect(server.url)  # connect() performs the handshake
    info = client.hello()
    assert info.protocol == PROTOCOL_VERSION
    status = client.submit(REQUESTS[0])
    client.wait(status.session_id, timeout=120)
    listed = client.sessions()
    assert any(s.session_id == status.session_id for s in listed)
    assert all(s.kernel for s in listed)


def test_external_session_matches_managed(server):
    """A client-measured (external) session reaches the same best point
    as the managed run of the same request."""
    from repro.arch import get_gpu
    from repro.autotune.measure import Measurer as _M
    from repro.kernels import get_benchmark

    request = TuneRequest(kernel="atax", gpu="kepler", size=16,
                          search="exhaustive", mode="external",
                          space=SMALL_SPACE)
    baseline = run_tune_request(
        TuneRequest.from_json(dict(request.to_json(), mode="managed"))
    )

    client = connect(server.url)
    status = client.submit(request)
    assert status.mode == "external"
    assert status.state == "waiting"

    measurer = _M(get_benchmark("atax"), get_gpu("kepler"))
    result = client.run_external(
        status.session_id,
        lambda config: measurer.measure(config, 16).seconds,
    )
    assert result.best_config == baseline.best_config
    assert result.best_value == baseline.best_value
    assert result.history == baseline.history
    assert result.measurements == ()  # the client measured, not the fleet


def test_external_protocol_misuse(server):
    client = connect(server.url)
    status = client.submit(TuneRequest(
        kernel="atax", gpu="kepler", size=16, search="exhaustive",
        mode="external", space=SMALL_SPACE,
    ))
    sid = status.session_id
    batch = client.ask(sid)
    assert not batch.done and batch.configs

    # a second ask before the tell is a structured 409
    with pytest.raises(ServiceError) as e:
        client.ask(sid)
    assert e.value.status == 409
    assert e.value.code == "tell-pending"

    # a tell for the wrong round is rejected
    from repro.api.protocol import TellResult
    bad = TellResult(session_id=sid, round=batch.round + 5,
                     values=tuple(1.0 for _ in batch.configs))
    with pytest.raises(ServiceError) as e:
        ReproClient(server.url)._request(
            "POST", f"/v1/sessions/{sid}/tell", body=bad.to_json()
        )
    assert e.value.status == 409

    # a tell with the wrong batch size is rejected
    with pytest.raises(ServiceError) as e:
        client.tell(batch, [1.0] * (len(batch.configs) + 1))
    assert e.value.status == 400

    # and the correct tell still works after all that
    client.tell(batch, [1.0] * len(batch.configs))


def test_managed_session_rejects_ask_tell(server):
    client = connect(server.url)
    status = client.submit(REQUESTS[0])
    with pytest.raises(ServiceError) as e:
        client.ask(status.session_id)
    assert e.value.status == 409
    assert e.value.code == "managed-session"
    client.wait(status.session_id, timeout=120)


def test_structured_errors(server):
    client = ReproClient(server.url)

    with pytest.raises(ServiceError) as e:
        client.submit(TuneRequest(kernel="no-such-kernel", gpu="kepler",
                                  size=16))
    assert e.value.status == 400
    assert "registered" in e.value.envelope.message

    with pytest.raises(ServiceError) as e:
        client.submit(TuneRequest(kernel="atax", gpu="no-such-gpu",
                                  size=16))
    assert e.value.status == 400

    with pytest.raises(ServiceError) as e:
        client.status("s9999-nobody")
    assert e.value.status == 404
    assert e.value.code == "unknown-session"

    with pytest.raises(ServiceError) as e:
        client._request("GET", "/v1/no/such/endpoint")
    assert e.value.status == 404

    with pytest.raises(ServiceError) as e:
        client._request("PUT", "/v1/sessions")
    assert e.value.status == 405

    # result before the session finishes is a 409, not a hang
    status = client.submit(TuneRequest(
        kernel="atax", gpu="kepler", size=16, search="exhaustive",
        mode="external", space=SMALL_SPACE,
    ))
    with pytest.raises(ServiceError) as e:
        client.result(status.session_id)
    assert e.value.status == 409
    assert e.value.code == "not-done"


def test_version_mismatch_refused(server):
    import http.client

    conn = http.client.HTTPConnection(server.server.host,
                                      server.server.port, timeout=30)
    try:
        conn.request("GET", "/v1/hello",
                     headers={"X-Repro-Protocol": "999.0"})
        response = conn.getresponse()
        doc = json.loads(response.read())
    finally:
        conn.close()
    assert response.status == 426
    assert doc["code"] == "protocol-mismatch"

    # body-carried version is enforced the same way
    client = ReproClient(server.url)
    body = REQUESTS[0].to_json()
    body["v"] = "999.0"
    with pytest.raises(ServiceError) as e:
        client._request("POST", "/v1/sessions", body=body)
    assert e.value.status == 426


def test_cancel(server):
    client = connect(server.url)
    status = client.submit(TuneRequest(
        kernel="atax", gpu="kepler", size=16, search="exhaustive",
        mode="external", space=SMALL_SPACE,
    ))
    cancelled = client.cancel(status.session_id)
    assert cancelled.state == "cancelled"
    with pytest.raises(ServiceError) as e:
        client.wait(status.session_id, timeout=5)
    assert e.value.status == 409


def test_in_process_tune_facade(tmp_path):
    """repro.api.tune is the same engine-backed path, usable without a
    server (and accepts a cache for warm reuse)."""
    from repro.api import tune

    first = tune("atax", "kepler", 16, space=SMALL_SPACE,
                 cache=tmp_path)
    again = tune("atax", "kepler", 16, space=SMALL_SPACE,
                 cache=tmp_path)
    assert wire_doc(first) == wire_doc(again)
    assert first.evaluations == 4
    assert first.best_config in [dict(c) for c in (
        {"TC": 32, "BC": 48}, {"TC": 32, "BC": 96},
        {"TC": 64, "BC": 48}, {"TC": 64, "BC": 96},
    )]


def test_deprecated_constructors_warn_once():
    import warnings

    import repro.autotune as at

    at._warned.clear()
    from repro.arch import get_gpu
    from repro.kernels import get_benchmark

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        at.Autotuner(get_benchmark("atax"), get_gpu("kepler"))
        at.Autotuner(get_benchmark("atax"), get_gpu("kepler"))
        at.Measurer(get_benchmark("atax"), get_gpu("kepler"))
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 2  # one per class, not per call
    assert "repro.api" in str(deprecations[0].message)
    # internal modules import the real classes and stay silent
    from repro.autotune.tuner import Autotuner as real
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        real(get_benchmark("atax"), get_gpu("kepler"))
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
