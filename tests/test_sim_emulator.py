"""Tests for the SIMT emulator beyond reference correctness: divergence
accounting, barriers with shared memory, exit semantics, guards."""

import numpy as np
import pytest

from repro.arch import K20
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.ptx.isa import DType
from repro.sim.emulator import EmulationError, emulate_kernel
from repro.sim.memory import DeviceMemory


def _run(spec, inputs_arrays, scalars, tc, bc, gpu=K20, **copts):
    ck = compile_kernel(spec, CompileOptions(gpu=gpu, **copts))
    memory = DeviceMemory()
    for name, arr in inputs_arrays.items():
        memory.alloc(name, arr)
    params = dict(scalars)
    for name in inputs_arrays:
        params[name] = None
    res, _ = emulate_kernel(ck, params, tc=tc, bc=bc, memory=memory)
    return res, memory, ck


class TestBasics:
    def test_partial_last_warp(self):
        """Launching a non-multiple-of-32 block works; idle lanes write
        nothing."""
        N = dsl.sparam("N")
        y = dsl.farray("y")
        n = dsl.ivar("n")
        spec = dsl.kernel("iota", [N, y],
                          [dsl.pfor(n, N, [y.store(n, dsl.to_f32(n))])])
        res, mem, _ = _run(spec, {"y": np.zeros(40, np.float32)},
                           {"N": 40}, tc=48, bc=1)
        np.testing.assert_array_equal(
            mem.allocation("y").data, np.arange(40, dtype=np.float32)
        )

    def test_grid_stride_covers_all_iterations(self):
        N = dsl.sparam("N")
        y = dsl.farray("y")
        n = dsl.ivar("n")
        spec = dsl.kernel("iota", [N, y],
                          [dsl.pfor(n, N, [y.store(n, dsl.to_f32(n * 2))])])
        # 100 iterations on 2 blocks x 32 threads: each thread loops
        res, mem, _ = _run(spec, {"y": np.zeros(100, np.float32)},
                           {"N": 100}, tc=32, bc=2)
        np.testing.assert_array_equal(
            mem.allocation("y").data,
            (np.arange(100) * 2).astype(np.float32),
        )

    def test_missing_argument_raises(self, matvec_spec):
        ck = compile_kernel(matvec_spec, CompileOptions(gpu=K20))
        with pytest.raises(EmulationError, match="missing kernel argument"):
            emulate_kernel(ck, {"N": 4}, tc=32, bc=1, memory=DeviceMemory())

    def test_runaway_loop_guard(self):
        N = dsl.sparam("N")
        y = dsl.farray("y")
        n, j = dsl.ivar("n"), dsl.ivar("j")
        spec = dsl.kernel(
            "big", [N, y],
            [dsl.pfor(n, N, [
                dsl.sfor(j, 1_000_000, [dsl.assign("t", j * 2)]),
                y.store(n, 1.0),
            ])],
        )
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        memory = DeviceMemory()
        memory.alloc("y", np.zeros(4, np.float32))
        run_kwargs = dict(tc=32, bc=1, memory=memory)
        with pytest.raises(EmulationError, match="runaway|exceeded"):
            from repro.sim.emulator import _KernelRun

            _KernelRun(ck, {"N": 4, "y": None}, 32, 1, memory).run(
                max_issues_per_warp=1000
            )


class TestDivergenceAccounting:
    def test_even_odd_divergence(self):
        N = dsl.sparam("N")
        y = dsl.farray("y")
        n = dsl.ivar("n")
        v = dsl.var("v", "f32")
        heavy_then = [dsl.assign("v", v * 2.0 + 1.0) for _ in range(4)]
        heavy_else = [dsl.assign("v", v * 3.0 - 1.0) for _ in range(4)]
        spec = dsl.kernel("eo", [N, y], [
            dsl.pfor(n, N, [
                dsl.assign("v", dsl.to_f32(n)),
                dsl.when((n % 2).eq(0), heavy_then, heavy_else),
                y.store(n, v),
            ]),
        ])
        res, mem, _ = _run(spec, {"y": np.zeros(64, np.float32)},
                           {"N": 64}, tc=64, bc=1)
        assert res.divergent_branches >= 2  # one per warp
        assert res.simd_efficiency < 1.0
        # both arms computed correctly despite serialization
        out = mem.allocation("y").data
        expect = np.arange(64, dtype=np.float64)
        for _ in range(4):
            even = expect * 2.0 + 1.0
            odd = expect * 3.0 - 1.0
            expect = np.where(np.arange(64) % 2 == 0, even, odd)
        np.testing.assert_allclose(out, expect.astype(np.float32), rtol=1e-5)

    def test_uniform_branch_no_divergence(self):
        N = dsl.sparam("N")
        flag = dsl.sparam("flag")
        y = dsl.farray("y")
        n = dsl.ivar("n")
        v = dsl.var("v", "f32")
        body = [dsl.assign("v", v + 1.0) for _ in range(4)]
        spec = dsl.kernel("uni", [N, flag, y], [
            dsl.pfor(n, N, [
                dsl.assign("v", dsl.f32(0.0)),
                dsl.when(flag.gt(0), body, [dsl.assign("v", v - 1.0)] * 4),
                y.store(n, v),
            ]),
        ])
        res, mem, _ = _run(spec, {"y": np.zeros(64, np.float32)},
                           {"N": 64, "flag": 1}, tc=64, bc=1)
        assert res.divergent_branches == 0
        np.testing.assert_array_equal(
            mem.allocation("y").data, np.full(64, 4.0, np.float32)
        )


class TestSharedMemoryAndBarrier:
    def test_block_reverse_through_smem(self):
        """Classic barrier test: write smem, sync, read reversed."""
        from repro.codegen.ast_nodes import Load, Store

        N = dsl.sparam("N")
        x, y = dsl.farrays("x", "y")
        n = dsl.ivar("n")
        lane = dsl.ivar("lane")
        spec = dsl.kernel(
            "rev", [N, x, y],
            [
                dsl.pfor(n, N, [
                    dsl.assign("lane", n % 64),
                    Store("tile", lane, x[n]),
                    dsl.sync(),
                    y.store(n, Load("tile", 63 - lane, DType.F32)),
                ]),
            ],
            smem_arrays=(("tile", 64, DType.F32),),
        )
        xs = np.arange(64, dtype=np.float32)
        res, mem, ck = _run(spec, {"x": xs, "y": np.zeros(64, np.float32)},
                            {"N": 64}, tc=64, bc=1)
        assert ck.static_smem_bytes == 64 * 4
        np.testing.assert_array_equal(mem.allocation("y").data, xs[::-1])
