"""Tests for the Orio-like autotuning framework: space, spec parsing,
measurement, ranking, and every search strategy -- including the batch
ask/tell protocol, budget accounting, infeasible-space behaviour, and
byte-identical serial/parallel evaluation."""

import math
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import K20
from repro.autotune import (
    Autotuner,
    ExhaustiveSearch,
    GeneticSearch,
    Measurer,
    NelderMeadSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    get_search,
    parse_perf_tuning,
    rank_split,
)
from repro.autotune.space import Parameter, ParameterSpace
from repro.autotune.spec import DEFAULT_SPEC_TEXT, SpecError
from repro.kernels import get_benchmark

#: worker count for the parallel-equivalence tests (the CI "batched" job
#: raises it to exercise real multi-process sharding on every push)
TEST_JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))


@pytest.fixture
def small_space():
    return ParameterSpace([
        Parameter("TC", (32, 64, 128, 256)),
        Parameter("BC", (24, 48)),
        Parameter("UIF", (1, 2)),
    ])


class TestParameterSpace:
    def test_size_and_iteration(self, small_space):
        assert len(small_space) == 16
        configs = list(small_space)
        assert len(configs) == 16
        assert all(set(c) == {"TC", "BC", "UIF"} for c in configs)

    def test_coords_roundtrip(self, small_space):
        cfg = {"TC": 128, "BC": 48, "UIF": 2}
        assert small_space.config_at(small_space.coords_of(cfg)) == cfg

    def test_clip(self, small_space):
        assert small_space.clip((-5, 99, 1)) == (0, 1, 1)

    def test_restrict(self, small_space):
        r = small_space.restrict("TC", [64, 256, 9999])
        assert len(r) == 8
        assert r.by_name["TC"].values == (64, 256)

    def test_restrict_to_nothing_rejected(self, small_space):
        with pytest.raises(ValueError):
            small_space.restrict("TC", [7])

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Parameter("X", (1, 1))

    def test_validate_config(self, small_space):
        with pytest.raises(ValueError, match="not allowed"):
            small_space.validate_config({"TC": 5, "BC": 24, "UIF": 1})
        with pytest.raises(ValueError, match="missing"):
            small_space.validate_config({"TC": 32, "BC": 24})

    @settings(max_examples=50, deadline=None)
    @given(i=st.integers(0, 15))
    def test_config_at_total(self, i):
        space = ParameterSpace([
            Parameter("A", (1, 2, 3, 4)), Parameter("B", (10, 20, 30, 40)),
        ])
        coords = (i % 4, i // 4)
        cfg = space.config_at(coords)
        assert space.coords_of(cfg) == coords


class TestSpecParsing:
    def test_default_spec_is_paper_space(self):
        space = parse_perf_tuning(DEFAULT_SPEC_TEXT)
        assert len(space) == 5120
        assert space.names() == ["TC", "BC", "UIF", "PL", "CFLAGS"]
        assert space.by_name["TC"].values[:3] == (32, 64, 96)
        assert space.by_name["CFLAGS"].values == ("", "-use_fast_math")

    def test_range_with_step(self):
        space = parse_perf_tuning(
            "def performance_params { param X[] = range(0,10,3); }"
        )
        assert space.by_name["X"].values == (0, 3, 6, 9)

    def test_list_of_strings(self):
        space = parse_perf_tuning(
            "def performance_params { param F[] = ['a', 'b,c']; }"
        )
        assert space.by_name["F"].values == ("a", "b,c")

    @pytest.mark.parametrize(
        "text,match",
        [
            ("nothing here", "no performance_params"),
            ("def performance_params { }", "no parameters"),
            ("def performance_params { param X[] = range(5,5); }", "empty"),
            ("def performance_params { param X[] = blob; }", "cannot parse"),
        ],
    )
    def test_errors(self, text, match):
        with pytest.raises(SpecError, match=match):
            parse_perf_tuning(text)


class TestMeasurer:
    def test_module_cache_reuse(self):
        bm = get_benchmark("atax")
        m = Measurer(bm, K20)
        c1 = {"TC": 32, "BC": 24, "UIF": 2, "PL": 16, "CFLAGS": ""}
        c2 = {"TC": 512, "BC": 96, "UIF": 2, "PL": 16, "CFLAGS": ""}
        assert m.module_for(c1) is m.module_for(c2)  # same compile key
        c3 = dict(c1, UIF=3)
        assert m.module_for(c3) is not m.module_for(c1)

    def test_measurement_deterministic(self):
        bm = get_benchmark("atax")
        cfg = {"TC": 128, "BC": 48, "UIF": 1, "PL": 16, "CFLAGS": ""}
        a = Measurer(bm, K20).measure(cfg, 64)
        b = Measurer(bm, K20).measure(cfg, 64)
        assert a.seconds == b.seconds

    def test_noise_across_configs_differs(self):
        bm = get_benchmark("atax")
        m = Measurer(bm, K20)
        a = m.measure({"TC": 128, "BC": 48, "UIF": 1, "PL": 16,
                       "CFLAGS": ""}, 64)
        b = m.measure({"TC": 128, "BC": 72, "UIF": 1, "PL": 16,
                       "CFLAGS": ""}, 64)
        assert a.seconds != b.seconds

    def test_fields_populated(self):
        bm = get_benchmark("ex14fj")
        m = Measurer(bm, K20).measure(
            {"TC": 256, "BC": 48, "UIF": 1, "PL": 16, "CFLAGS": ""}, 8
        )
        assert m.launchable
        assert 0 < m.occupancy <= 1
        assert m.regs_per_thread > 0
        assert m.reg_instructions > 0


class TestRanking:
    def test_split_within_sizes(self):
        from repro.autotune.measure import VariantMeasurement

        ms = []
        for size, base in ((32, 1.0), (64, 100.0)):
            for k in range(4):
                ms.append(VariantMeasurement(
                    config={"TC": 32 * (k + 1)}, size=size,
                    seconds=base + k, occupancy=0.5, regs_per_thread=20,
                    reg_instructions=1.0,
                ))
        ranked = rank_split(ms)
        r1 = [rv for rv in ranked if rv.rank == 1]
        # two per size group, not four from the small size
        assert sorted(rv.measurement.size for rv in r1) == [32, 32, 64, 64]

    def test_unlaunchable_excluded(self):
        from repro.autotune.measure import VariantMeasurement

        good = VariantMeasurement({"TC": 32}, 32, 1.0, 0.5, 20, 1.0)
        bad = VariantMeasurement({"TC": 2048}, 32, float("inf"), 0.0, 20, 1.0)
        ranked = rank_split([good, bad])
        assert len(ranked) == 1


def _quadratic_objective(space):
    """Deterministic synthetic objective with a unique known optimum."""
    best = {p.name: p.values[len(p) // 2] for p in space.parameters}

    def f(config):
        return 1.0 + sum(
            (space.by_name[k].index_of(config[k])
             - space.by_name[k].index_of(best[k])) ** 2
            for k in config
        )

    return f, best


class TestSearchStrategies:
    def test_exhaustive_finds_optimum(self, small_space):
        f, best = _quadratic_objective(small_space)
        res = ExhaustiveSearch().search(small_space, f)
        assert res.best_config == best
        assert res.evaluations == len(small_space)
        assert res.space_reduction == 0.0

    def test_exhaustive_budget(self, small_space):
        f, _ = _quadratic_objective(small_space)
        res = ExhaustiveSearch().search(small_space, f, budget=5)
        assert res.evaluations == 5

    @pytest.mark.parametrize("cls,kwargs,tol", [
        (RandomSearch, {"budget": 60}, 9.0),
        (SimulatedAnnealingSearch, {"budget": 120}, 3.0),
        (GeneticSearch, {"population": 12, "generations": 8}, 3.0),
        (NelderMeadSearch, {"budget": 100}, 3.0),
    ])
    def test_heuristics_reach_near_optimum(self, cls, kwargs, tol):
        space = ParameterSpace([
            Parameter("A", tuple(range(16))),
            Parameter("B", tuple(range(16))),
        ])
        f, best = _quadratic_objective(space)
        res = cls(seed=7, **kwargs).search(space, f)
        assert res.best_value <= tol  # near the optimum (value 1.0)
        assert res.evaluations <= 130

    def test_random_search_deterministic_by_seed(self, small_space):
        f, _ = _quadratic_objective(small_space)
        a = RandomSearch(budget=8, seed=3).search(small_space, f)
        b = RandomSearch(budget=8, seed=3).search(small_space, f)
        assert [h[0] for h in a.history] == [h[0] for h in b.history]

    def test_registry(self):
        assert isinstance(get_search("random", budget=5), RandomSearch)
        with pytest.raises(KeyError):
            get_search("quantum")


class TestStaticSearchIntegration:
    def test_paper_reduction_numbers(self):
        """Kepler: |T*| = 4 of 32 -> 87.5%; with the rule 2 of 32 -> 93.75%."""
        bm = get_benchmark("atax")
        tuner = Autotuner(bm, K20)
        out = tuner.tune(size=64, search="static")
        assert out.search.space_reduction == pytest.approx(0.875)
        assert out.search.evaluations == 5120 // 8
        out_rb = tuner.tune(size=64, search="static", use_rule=True)
        assert out_rb.search.space_reduction == pytest.approx(0.9375)

    def test_static_search_quality(self):
        """The pruned search must stay close to the exhaustive optimum."""
        from repro.experiments.common import reduced_space

        bm = get_benchmark("atax")
        tuner = Autotuner(bm, K20, space=reduced_space())
        ex = tuner.tune(size=256, search="exhaustive")
        stat = tuner.tune(size=256, search="static")
        assert stat.best_seconds <= 1.25 * ex.best_seconds

    def test_static_search_inner_strategy(self):
        bm = get_benchmark("atax")
        tuner = Autotuner(bm, K20)
        out = tuner.tune(size=64, search="static", inner="random", budget=40)
        assert out.search.evaluations <= 40
        assert out.search.space_reduction == pytest.approx(0.875)

    def test_static_needs_size(self):
        bm = get_benchmark("atax")
        tuner = Autotuner(bm, K20)
        with pytest.raises(ValueError, match="size"):
            tuner.make_search("static")


# ---------------------------------------------------------------------------
# the ask/tell protocol


class TestAskTellProtocol:
    def test_manual_drive_matches_search(self, small_space):
        """Driving ask/tell by hand reproduces search() exactly."""
        f, _ = _quadratic_objective(small_space)
        auto = GeneticSearch(population=6, generations=4, seed=5).search(
            small_space, f, budget=20
        )
        manual = GeneticSearch(population=6, generations=4, seed=5)
        manual.reset(small_space, budget=20)
        while not manual.done:
            k = manual.remaining
            if k == 0:
                break
            configs = manual.ask(k)
            if not configs:
                break
            manual.tell(configs, [f(c) for c in configs])
        got = manual.result()
        assert got.history == auto.history
        assert got.best_config == auto.best_config
        assert got.best_value == auto.best_value

    def test_ask_respects_k(self, small_space):
        s = ExhaustiveSearch()
        s.reset(small_space)
        batch = s.ask(3)
        assert len(batch) == 3
        s.tell(batch, [1.0, 2.0, 3.0])
        assert s.done  # truncated batch terminates the strategy
        assert s.result().evaluations == 3

    def test_ask_defaults_to_remaining_budget(self, small_space):
        """ask() without k must not overrun the budget set in reset()."""
        s = ExhaustiveSearch()
        s.reset(small_space, budget=5)
        batch = s.ask()
        assert len(batch) == 5
        s.tell(batch, [float(i) for i in range(5)])
        assert s.result().evaluations == 5

    def test_ask_while_pending_rejected(self, small_space):
        s = RandomSearch(budget=8, seed=1)
        s.reset(small_space)
        s.ask(4)
        with pytest.raises(RuntimeError, match="awaiting tell"):
            s.ask(4)

    def test_tell_without_ask_rejected(self, small_space):
        s = RandomSearch(budget=8, seed=1)
        s.reset(small_space)
        with pytest.raises(RuntimeError, match="without a pending ask"):
            s.tell([], [])

    def test_tell_mismatch_rejected(self, small_space):
        s = RandomSearch(budget=8, seed=1)
        s.reset(small_space)
        batch = s.ask(4)
        with pytest.raises(ValueError, match="one value per"):
            s.tell(batch, [1.0])
        with pytest.raises(ValueError, match="do not match"):
            s.tell(list(reversed(batch)), [1.0] * len(batch))

    def test_result_before_any_tell_rejected(self, small_space):
        s = RandomSearch(budget=8, seed=1)
        s.reset(small_space)
        with pytest.raises(ValueError, match="evaluated nothing"):
            s.result()

    def test_repeated_proposals_served_from_cache(self, small_space):
        """Elites resurface every generation but are never re-charged."""
        f, _ = _quadratic_objective(small_space)
        calls = []

        def counting(config):
            calls.append(dict(config))
            return f(config)

        res = GeneticSearch(population=8, generations=6, seed=2).search(
            small_space, counting
        )
        keys = [tuple(sorted(c.items())) for c in calls]
        assert len(keys) == len(set(keys)), "a config was measured twice"
        assert res.evaluations == len(calls)


# ---------------------------------------------------------------------------
# budget accounting and infeasible spaces (the seed's crash/wedge bugs)


ALL_INF = float("inf")


class TestBudgetAndInfeasible:
    @pytest.mark.parametrize("cls,kwargs", [
        (RandomSearch, {"budget": 10}),
        (SimulatedAnnealingSearch, {"budget": 10}),
        (GeneticSearch, {"population": 6, "generations": 2}),
        (NelderMeadSearch, {"budget": 10}),
        (ExhaustiveSearch, {}),
    ])
    def test_all_infeasible_space_returns_first_config(self, small_space,
                                                       cls, kwargs):
        """No strategy may crash when nothing is launchable; the result
        reports the first evaluated config at inf."""
        res = cls(**kwargs).search(small_space, lambda c: ALL_INF)
        assert res.best_value == ALL_INF
        assert res.best_config == res.history[0][0]
        assert res.evaluations >= 1

    def test_random_infeasible_spends_full_budget(self, small_space):
        res = RandomSearch(budget=10, seed=4).search(
            small_space, lambda c: ALL_INF
        )
        assert res.evaluations == 10

    def test_annealing_exact_budget_accounting(self, small_space):
        f, _ = _quadratic_objective(small_space)
        for budget in (7, 16, 33):
            res = SimulatedAnnealingSearch(seed=1).search(
                small_space, f, budget=budget
            )
            assert res.evaluations == budget

    def test_random_exact_budget_accounting(self, small_space):
        f, _ = _quadratic_objective(small_space)
        res = RandomSearch(seed=1).search(small_space, f, budget=9)
        assert res.evaluations == 9
        # a budget beyond the space clamps to the space size
        res = RandomSearch(seed=1).search(small_space, f, budget=1000)
        assert res.evaluations == len(small_space)

    def test_genetic_budget_below_population_terminates(self, small_space):
        """The seed spun its generation loop on uncached inf sentinels
        here; now the run ends cleanly at exactly the budget."""
        f, best = _quadratic_objective(small_space)
        res = GeneticSearch(population=12, generations=5, seed=3).search(
            small_space, f, budget=5
        )
        assert res.evaluations == 5
        assert res.best_value == min(v for _, v in res.history)

    def test_simplex_budget_below_simplex_size_terminates(self):
        space = ParameterSpace([
            Parameter("A", tuple(range(8))),
            Parameter("B", tuple(range(8))),
            Parameter("C", tuple(range(8))),
        ])
        f, _ = _quadratic_objective(space)
        res = NelderMeadSearch(seed=3).search(space, f, budget=3)
        assert res.evaluations == 3  # initial simplex alone needs 4

    def test_budget_never_exceeded(self, small_space):
        f, _ = _quadratic_objective(small_space)
        for cls, kwargs in [
            (RandomSearch, {}),
            (SimulatedAnnealingSearch, {}),
            (GeneticSearch, {"population": 6, "generations": 8}),
            (NelderMeadSearch, {}),
            (ExhaustiveSearch, {}),
        ]:
            res = cls(**kwargs).search(small_space, f, budget=11)
            assert res.evaluations <= 11, cls.name

    def test_annealing_reseeds_unlaunchable_start(self):
        """Chains starting on an inf point adopt a launchable start (the
        seed could wedge, burning budget without moving)."""
        space = ParameterSpace([
            Parameter("A", tuple(range(16))),
            Parameter("B", tuple(range(16))),
        ])

        def half_infeasible(config):
            if config["A"] < 8:
                return ALL_INF
            return 1.0 + (config["A"] - 12) ** 2 + (config["B"] - 8) ** 2

        res = SimulatedAnnealingSearch(budget=60, seed=0).search(
            space, half_infeasible
        )
        assert math.isfinite(res.best_value)
        assert res.evaluations == 60
        assert res.best_value <= 5.0


# ---------------------------------------------------------------------------
# batched evaluation through the sweep engine


def _engine_space() -> ParameterSpace:
    """A small but real slice of the Table III space (TC values overlap
    the analyzer's T* so static search works on it too)."""
    return ParameterSpace([
        Parameter("TC", (64, 128, 256, 512)),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])


STRATEGY_MATRIX = [
    ("exhaustive", {}),
    ("static", {}),
    ("random", {"budget": 20}),
    ("annealing", {"budget": 20}),
    ("genetic", {"population": 6, "generations": 3}),
    ("simplex", {"budget": 20}),
]


class TestBatchedStrategies:
    """Every strategy must evaluate via batches through the engine and
    produce byte-identical results across jobs settings."""

    @pytest.mark.parametrize("search,kwargs", STRATEGY_MATRIX)
    def test_engine_results_identical_to_serial(self, search, kwargs):
        from repro.engine import SweepEngine
        from repro.engine.cache import _encode

        bm = get_benchmark("atax")

        def tune(engine):
            return Autotuner(bm, K20, space=_engine_space()).tune(
                size=64, search=search, engine=engine, **kwargs
            )

        base = tune(None)
        with SweepEngine(jobs=1) as eng1:
            via_eng1 = tune(eng1)
        with SweepEngine(jobs=TEST_JOBS) as engn:
            via_engn = tune(engn)
        for out in (via_eng1, via_engn):
            assert out.search.history == base.search.history
            assert out.best_config == base.best_config
            assert out.best_seconds == base.best_seconds
            assert [_encode(m) for m in out.results.measurements] == [
                _encode(m) for m in base.results.measurements
            ]

    @pytest.mark.parametrize("search,kwargs", STRATEGY_MATRIX)
    def test_every_strategy_consults_engine(self, search, kwargs):
        from repro.engine import SweepEngine

        bm = get_benchmark("atax")
        with SweepEngine(jobs=1) as engine:
            out = Autotuner(bm, K20, space=_engine_space()).tune(
                size=64, search=search, engine=engine, **kwargs
            )
        assert engine.last_stats is not None, "engine never consulted"
        assert engine.total_measured == out.search.evaluations

    def test_warm_genetic_rerun_measures_nothing(self, tmp_path):
        """A genetic re-run against a warm cache must be served entirely
        from disk: zero fresh measurements."""
        from repro.engine import CacheStore, SweepEngine

        bm = get_benchmark("atax")

        def tune(engine):
            return Autotuner(bm, K20, space=_engine_space()).tune(
                size=64, search="genetic", population=8, generations=3,
                engine=engine,
            )

        with SweepEngine(jobs=1, cache=CacheStore(tmp_path)) as engine:
            cold = tune(engine)
            measured = engine.total_measured
            assert measured == cold.search.evaluations > 0
            warm = tune(engine)
            assert engine.total_measured == measured, (
                "warm re-run performed fresh measurements"
            )
            assert warm.search.history == cold.search.history
            assert warm.best_config == cold.best_config

    def test_tuner_jobs_cache_args_reach_every_strategy(self, tmp_path):
        """The jobs=/cache= shorthand must batch heuristic strategies,
        not only exhaustive/static."""
        base = Autotuner(get_benchmark("atax"), K20,
                         space=_engine_space()).tune(
            size=64, search="random", budget=12
        )
        cached = Autotuner(get_benchmark("atax"), K20,
                           space=_engine_space()).tune(
            size=64, search="random", budget=12,
            jobs=TEST_JOBS, cache=tmp_path,
        )
        assert cached.search.history == base.search.history
        assert cached.best_config == base.best_config
