"""Tests for operand and Instruction behaviour."""

import pytest

from repro.arch.throughput import InstrCategory
from repro.ptx.instruction import (
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    ParamRef,
    Reg,
    SReg,
)
from repro.ptx.isa import DType, MemSpace, Opcode, SRegKind


def r(name, dt=DType.S32):
    return Reg(name, dt)


class TestConstruction:
    def test_setp_requires_cmp(self):
        with pytest.raises(ValueError, match="comparison"):
            Instruction(Opcode.SETP, dtype=DType.S32,
                        dst=r("%p1", DType.PRED), srcs=(r("%r1"), r("%r2")))

    def test_memory_ops_require_space(self):
        with pytest.raises(ValueError, match="memory space"):
            Instruction(Opcode.LD, dtype=DType.F32, dst=r("%f1", DType.F32),
                        srcs=(MemRef(MemSpace.GLOBAL, r("%rd1", DType.S64)),))

    def test_red_requires_space(self):
        with pytest.raises(ValueError, match="memory space"):
            Instruction(Opcode.RED, dtype=DType.F32,
                        srcs=(MemRef(MemSpace.GLOBAL, r("%rd1", DType.S64)),
                              r("%f1", DType.F32)))


class TestRegisterAccounting:
    def test_reads_include_memref_base_and_guard(self):
        mem = MemRef(MemSpace.GLOBAL, r("%rd1", DType.S64), 4)
        ins = Instruction(
            Opcode.LD, dtype=DType.F32, dst=r("%f1", DType.F32),
            srcs=(mem,), space=MemSpace.GLOBAL,
            pred=r("%p1", DType.PRED),
        )
        names = {x.name for x in ins.registers_read()}
        assert names == {"%rd1", "%p1"}
        assert [x.name for x in ins.registers_written()] == ["%f1"]
        assert ins.register_operand_count() == 3

    def test_imm_and_sreg_not_counted(self):
        ins = Instruction(
            Opcode.ADD, dtype=DType.S32, dst=r("%r1"),
            srcs=(SReg(SRegKind.TID_X), Imm(4, DType.S32)),
        )
        assert ins.registers_read() == []
        assert ins.register_operand_count() == 1


class TestProperties:
    def test_branch_properties(self):
        bra = Instruction(Opcode.BRA, srcs=(LabelRef("$L1"),))
        assert bra.is_terminator and bra.is_branch
        assert not bra.is_conditional_branch
        assert bra.branch_target == "$L1"

        cond = bra.with_pred(r("%p1", DType.PRED), negated=True)
        assert cond.is_conditional_branch
        assert cond.pred_negated

    def test_param_load_categorized_as_move(self):
        # constant-bank access, not memory pipeline traffic
        ins = Instruction(Opcode.LD, dtype=DType.S64,
                          dst=r("%rd1", DType.S64),
                          srcs=(ParamRef("A"),), space=MemSpace.PARAM)
        assert ins.category is InstrCategory.MOVE

    def test_global_load_categorized_as_mem(self):
        mem = MemRef(MemSpace.GLOBAL, r("%rd1", DType.S64))
        ins = Instruction(Opcode.LD, dtype=DType.F32,
                          dst=r("%f1", DType.F32), srcs=(mem,),
                          space=MemSpace.GLOBAL)
        assert ins.category is InstrCategory.LDST


class TestRename:
    def test_rename_covers_all_positions(self):
        mem = MemRef(MemSpace.GLOBAL, r("%v1", DType.S64))
        ins = Instruction(
            Opcode.ST, dtype=DType.F32,
            srcs=(mem, r("%v2", DType.F32)),
            space=MemSpace.GLOBAL, pred=r("%v3", DType.PRED),
        )
        mapping = {
            "%v1": r("%rd1", DType.S64),
            "%v2": r("%f1", DType.F32),
            "%v3": r("%p1", DType.PRED),
        }
        out = ins.rename_registers(mapping)
        assert out.srcs[0].base.name == "%rd1"
        assert out.srcs[1].name == "%f1"
        assert out.pred.name == "%p1"
        # original untouched (frozen)
        assert ins.srcs[0].base.name == "%v1"

    def test_rename_keeps_unmapped(self):
        ins = Instruction(Opcode.MOV, dtype=DType.S32, dst=r("%v1"),
                          srcs=(r("%v2"),))
        out = ins.rename_registers({"%v2": r("%r9")})
        assert out.dst.name == "%v1"
        assert out.srcs[0].name == "%r9"
