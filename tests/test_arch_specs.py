"""Tests for the GPU hardware descriptors (paper Table I)."""

import dataclasses

import pytest

from repro.arch import ALL_GPUS, GPUS_BY_FAMILY, K20, M40, P100, get_gpu
from repro.arch.specs import GPUSpec


class TestTableIValues:
    """Every value in Table I must be transcribed exactly."""

    def test_compute_capabilities(self):
        assert [g.compute_capability for g in ALL_GPUS] == [2.0, 3.5, 5.2, 6.0]

    def test_multiprocessors(self):
        assert [g.multiprocessors for g in ALL_GPUS] == [14, 13, 24, 56]

    def test_cores_per_mp(self):
        assert [g.cores_per_mp for g in ALL_GPUS] == [32, 192, 128, 64]

    def test_total_cores(self):
        assert [g.cuda_cores for g in ALL_GPUS] == [448, 2496, 3072, 3584]

    def test_clocks(self):
        assert [g.gpu_clock_mhz for g in ALL_GPUS] == [1147, 824, 1140, 405]
        assert [g.mem_clock_mhz for g in ALL_GPUS] == [1546, 2505, 5000, 715]

    def test_global_memory(self):
        assert [g.global_mem_mb for g in ALL_GPUS] == [
            3072, 11520, 12288, 17066,
        ]

    def test_l2_cache(self):
        assert [g.l2_cache_mb for g in ALL_GPUS] == [0.786, 1.572, 3.146, 4.194]

    def test_smem_per_block_uniform(self):
        assert all(g.smem_per_block_bytes == 49152 for g in ALL_GPUS)

    def test_regfile(self):
        assert [g.regfile_per_block for g in ALL_GPUS] == [
            32768, 65536, 65536, 65536,
        ]

    def test_warp_size_uniform(self):
        assert all(g.warp_size == 32 for g in ALL_GPUS)

    def test_threads_per_mp(self):
        assert [g.max_threads_per_mp for g in ALL_GPUS] == [
            1536, 2048, 2048, 2048,
        ]

    def test_max_threads_per_block_uniform(self):
        assert all(g.max_threads_per_block == 1024 for g in ALL_GPUS)

    def test_blocks_per_mp(self):
        assert [g.max_blocks_per_mp for g in ALL_GPUS] == [8, 16, 32, 32]

    def test_warps_per_mp(self):
        assert [g.max_warps_per_mp for g in ALL_GPUS] == [48, 64, 64, 64]

    def test_reg_alloc_unit(self):
        assert [g.reg_alloc_unit for g in ALL_GPUS] == [64, 256, 256, 256]

    def test_max_regs_per_thread(self):
        assert [g.max_regs_per_thread for g in ALL_GPUS] == [63, 255, 255, 255]

    def test_families(self):
        assert [g.family for g in ALL_GPUS] == [
            "Fermi", "Kepler", "Maxwell", "Pascal",
        ]


class TestDerivedQuantities:
    def test_warps_consistency(self):
        # max warps * warp size == max threads per SM, enforced at init
        for g in ALL_GPUS:
            assert g.max_warps_per_mp * g.warp_size == g.max_threads_per_mp

    def test_peak_bandwidth_positive_and_ordered(self):
        bws = [g.peak_bandwidth_gbs for g in ALL_GPUS]
        assert all(b > 50 for b in bws)
        # P100 (HBM2) has by far the highest bandwidth
        assert bws[3] == max(bws)

    def test_cycle_time(self):
        assert K20.cycle_time_s == pytest.approx(1.0 / 824e6)

    def test_warps_per_block(self):
        assert K20.warps_per_block(1) == 1
        assert K20.warps_per_block(32) == 1
        assert K20.warps_per_block(33) == 2
        assert K20.warps_per_block(1024) == 32

    def test_warps_per_block_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            K20.warps_per_block(0)

    def test_short_mentions_name_and_family(self):
        s = M40.short()
        assert "M40" in s and "Maxwell" in s

    def test_as_dict_roundtrip(self):
        d = P100.as_dict()
        assert d["name"] == "P100"
        assert GPUSpec(**d) == P100


class TestValidation:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            K20.multiprocessors = 1  # type: ignore[misc]

    def test_inconsistent_warp_count_rejected(self):
        d = K20.as_dict()
        d["max_warps_per_mp"] = 63
        with pytest.raises(ValueError, match="warps-per-mp"):
            GPUSpec(**d)

    def test_nonmultiple_block_size_rejected(self):
        d = K20.as_dict()
        d["max_threads_per_block"] = 1000
        with pytest.raises(ValueError, match="multiple of warp_size"):
            GPUSpec(**d)


class TestLookup:
    @pytest.mark.parametrize(
        "alias,name",
        [
            ("fermi", "M2050"), ("Kepler", "K20"), ("MAXWELL", "M40"),
            ("pascal", "P100"), ("k20", "K20"), ("sm35", "K20"),
            ("sm_60", "P100"), ("m2050", "M2050"),
        ],
    )
    def test_aliases(self, alias, name):
        assert get_gpu(alias).name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown GPU"):
            get_gpu("volta")

    def test_family_index(self):
        assert GPUS_BY_FAMILY["Kepler"] is K20
