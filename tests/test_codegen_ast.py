"""Tests for the loop-nest AST: construction, typing, evaluation."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.codegen.ast_nodes import (
    Assign,
    BinOp,
    Call,
    Cmp,
    FloatConst,
    For,
    If,
    IntConst,
    Store,
    VarRef,
    evaluate_expr,
    evaluate_expr_numpy,
    stmt_exprs,
    substitute,
    substitute_stmt,
    walk_stmts,
)
from repro.codegen import dsl
from repro.ptx.isa import DType


class TestExprBuilding:
    def test_operators_build_binops(self):
        n = VarRef("n")
        e = (n * 4 + 1) - 2
        assert isinstance(e, BinOp) and e.op == "-"
        assert str(e) == "(((n * 4) + 1) - 2)"

    def test_dtype_promotion(self):
        i = VarRef("i", DType.S32)
        f = VarRef("x", DType.F32)
        d = VarRef("y", DType.F64)
        assert (i + i).dtype is DType.S32
        assert (i + f).dtype is DType.F32
        assert (f + d).dtype is DType.F64

    def test_comparisons(self):
        n = VarRef("n")
        c = n.lt(5)
        assert isinstance(c, Cmp) and c.dtype is DType.PRED

    def test_bool_constants_rejected(self):
        with pytest.raises(TypeError, match="bool"):
            VarRef("n") + True

    def test_invalid_binop_rejected(self):
        with pytest.raises(ValueError, match="unknown binary op"):
            BinOp("**", IntConst(1), IntConst(2))

    def test_invalid_intrinsic_rejected(self):
        with pytest.raises(ValueError, match="unknown intrinsic"):
            Call("tan", (IntConst(1),))


class TestStatements:
    def test_for_requires_positive_step(self):
        with pytest.raises(ValueError, match="step"):
            For("i", IntConst(0), IntConst(4), (), step=0)

    def test_loop_ids_unique(self):
        a = For("i", IntConst(0), IntConst(4), ())
        b = For("i", IntConst(0), IntConst(4), ())
        assert a.loop_id != b.loop_id

    def test_if_prob_validated(self):
        with pytest.raises(ValueError, match="prob"):
            If(Cmp("lt", VarRef("i"), IntConst(1)), (), prob=1.5)

    def test_walk_stmts_depth_first(self):
        inner = Assign("s", FloatConst(0.0))
        loop = For("i", IntConst(0), IntConst(4), (inner,))
        cond = If(VarRef("i").lt(2), (loop,))
        stmts = list(walk_stmts((cond,)))
        assert stmts == [cond, loop, inner]

    def test_stmt_exprs(self):
        s = Store("y", VarRef("i"), FloatConst(1.0))
        assert len(stmt_exprs(s)) == 2


class TestEvaluation:
    def test_arithmetic(self):
        e = (VarRef("n") * 3 + 1) // 2
        assert evaluate_expr(e, {"n": 5}) == 8

    def test_c_division_truncates(self):
        e = BinOp("/", VarRef("a"), VarRef("b"))
        assert evaluate_expr(e, {"a": 7, "b": 2}) == 3

    def test_intrinsics(self):
        e = Call("exp", (FloatConst(1.0),))
        assert evaluate_expr(e, {}) == pytest.approx(math.e)

    def test_unbound_raises(self):
        with pytest.raises(KeyError, match="unbound"):
            evaluate_expr(VarRef("zz"), {})

    def test_numpy_matches_scalar(self):
        n = VarRef("n")
        e = dsl.either((n % 7).eq(0), (n // 7).eq(3))
        arr = np.arange(100, dtype=np.int64)
        vec = evaluate_expr_numpy(e, {"n": arr})
        scalar = [bool(evaluate_expr(e, {"n": int(v)})) for v in arr]
        assert vec.tolist() == scalar

    @given(st.integers(0, 10_000), st.integers(1, 512))
    def test_numpy_divmod_property(self, n, c):
        q = BinOp("//", VarRef("n"), IntConst(c))
        m = BinOp("%", VarRef("n"), IntConst(c))
        assert evaluate_expr(q, {"n": n}) == n // c
        assert evaluate_expr(m, {"n": n}) == n % c


class TestSubstitution:
    def test_substitute_expr(self):
        e = VarRef("i") * VarRef("N") + VarRef("j")
        out = substitute(e, {"i": VarRef("i") + IntConst(1)})
        assert str(out) == "(((i + 1) * N) + j)"

    def test_substitute_respects_loop_shadowing(self):
        inner = For("i", IntConst(0), IntConst(4),
                    (Assign("s", VarRef("i")),))
        out = substitute_stmt(inner, {"i": IntConst(99)})
        # the loop rebinds i, so its body must NOT be substituted
        assert isinstance(out.body[0].expr, VarRef)

    def test_substitute_store(self):
        s = Store("y", VarRef("i"), VarRef("i"))
        out = substitute_stmt(s, {"i": IntConst(3)})
        assert isinstance(out.index, IntConst) and out.index.value == 3


class TestKernelSpec:
    def test_duplicate_params_rejected(self):
        N = dsl.sparam("N")
        with pytest.raises(ValueError, match="duplicate"):
            dsl.kernel("k", [N, dsl.sparam("N")], [dsl.pfor(dsl.ivar("i"), N, [])])

    def test_two_parallel_loops_rejected(self):
        N = dsl.sparam("N")
        i, j = dsl.ivars("i", "j")
        with pytest.raises(ValueError, match="at most one parallel"):
            dsl.kernel("k", [N], [dsl.pfor(i, N, []), dsl.pfor(j, N, [])])

    def test_param_lookup(self):
        N = dsl.sparam("N")
        spec = dsl.kernel("k", [N], [dsl.pfor(dsl.ivar("i"), N, [])])
        assert spec.param("N").name == "N"
        with pytest.raises(KeyError):
            spec.param("Q")

    def test_str_rendering(self, matvec_spec):
        text = str(matvec_spec)
        assert "__global__ void mv" in text
        assert "parallel for" in text
