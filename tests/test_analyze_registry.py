"""Registry gate: every registered benchmark lints clean (or carries an
explicit ``expected_diagnostics`` annotation), and the ``lint``
experiment wires that into the CLI with a nonzero exit on surprises."""

import dataclasses

import pytest

from repro.analyze import lint_benchmark, unexpected_diagnostics
from repro.experiments.runner import run_experiment
from repro.kernels import BENCHMARKS, get_benchmark
from repro.kernels.base import Benchmark


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_registered_benchmark_lints_clean(name):
    bench = get_benchmark(name)
    reports = lint_benchmark(bench)
    unexpected = unexpected_diagnostics(bench, reports)
    assert not unexpected, "\n".join(str(d) for d in unexpected)


def test_no_benchmark_needs_an_expected_diagnostics_waiver():
    """The corpus itself is clean; annotations exist for future seeded
    teaching kernels, not to paper over current findings."""
    assert all(
        not bench.expected_diagnostics for bench in BENCHMARKS.values()
    )


def test_unknown_expected_diagnostic_is_rejected():
    bench = get_benchmark("dot")
    with pytest.raises(ValueError, match="unknown diagnostic"):
        dataclasses.replace(bench, name="dot2",
                            expected_diagnostics=("not-a-check",))


def test_expected_diagnostics_accepts_pinned_and_bare_forms():
    bench = get_benchmark("dot")
    ok = dataclasses.replace(
        bench, name="dot2",
        expected_diagnostics=(("dot", "smem-race"), "out-of-bounds"),
    )
    assert isinstance(ok, Benchmark)


def test_annotation_suppresses_matching_diagnostic_only():
    bench = get_benchmark("dot")
    reports = lint_benchmark(bench)
    # fabricate a finding by annotating a clean benchmark: nothing to
    # suppress, and the bare/pinned forms must not invent diagnostics
    annotated = dataclasses.replace(
        bench, name="dot2", expected_diagnostics=("smem-race",)
    )
    assert unexpected_diagnostics(annotated, reports) == []


class TestLintExperiment:
    def test_clean_registry_renders_and_exits_zero(self):
        text, status = run_experiment("lint", kernels=["dot"],
                                      with_status=True)
        assert "lint: clean" in text
        assert status == 0
        assert "dot" in text

    def test_tag_filter_selects_the_tagged_subset(self):
        text = run_experiment("lint", tags=["reduction"])
        assert "dot" in text and "histogram" in text
        assert "jacobi2d" not in text

    def test_default_covers_the_full_registry(self):
        text = run_experiment("lint")
        for name in BENCHMARKS:
            assert name in text
