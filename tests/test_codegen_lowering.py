"""Tests for lowering: structure, instruction selection, access patterns."""

import pytest

from repro.arch import K20, M2050
from repro.codegen import dsl
from repro.codegen.ast_nodes import IntConst, VarRef
from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.codegen.lowering import (
    LoweringError,
    classify_access,
    index_stride,
    lower_kernel,
)
from repro.codegen.regions import RegionKind
from repro.ptx.isa import Opcode


def _ops(ck):
    return [i.opcode for i in ck.ir.instructions()]


def _simple(body_factory, params=None, name="t"):
    N = dsl.sparam("N")
    x, y = dsl.farrays("x", "y")
    n = dsl.ivar("n")
    return dsl.kernel(name, params or [N, x, y],
                      [dsl.pfor(n, N, body_factory(n, x, y))])


class TestIndexStride:
    def test_affine(self):
        i, j, N = VarRef("i"), VarRef("j"), VarRef("N")
        assert index_stride(i * 4 + j, "i") == 4
        assert index_stride(i * 4 + j, "j") == 1
        assert index_stride(i * 4 + j, "k") == 0

    def test_symbolic_coefficient_unknown(self):
        i, N = VarRef("i"), VarRef("N")
        assert index_stride(i * N, "i") is None  # N not a constant

    def test_div_mod_by_constant(self):
        n = VarRef("n")
        assert index_stride(n // IntConst(64), "n") == pytest.approx(1 / 64)
        assert index_stride(n % IntConst(64), "n") == 1

    def test_div_by_parameter_effectively_uniform(self):
        n, N = VarRef("n"), VarRef("N")
        s = index_stride(n // N, "n")
        assert s is not None and abs(s) < 0.5


class TestClassifyAccess:
    def test_coalesced(self):
        n = VarRef("n")
        assert classify_access(n, "n")[0] == "coalesced"

    def test_uniform(self):
        j = VarRef("j")
        assert classify_access(j, "n")[0] == "uniform"

    def test_strided(self):
        n = VarRef("n")
        pattern, stride, _ = classify_access(n * 8, "n")
        assert pattern == "strided" and stride == 8

    def test_seq_stride_tracked(self):
        i, j = VarRef("i"), VarRef("j")
        _, _, seq = classify_access(i * 512 + j, "i", seq_var="j")
        assert seq == 1

    def test_no_parallel_var_is_uniform(self):
        assert classify_access(VarRef("n"), None)[0] == "uniform"


class TestGridStrideStructure:
    def test_parallel_loop_shape(self, matvec_spec):
        lowered = lower_kernel(matvec_spec)
        ops = [i.opcode for i in lowered.ir.instructions()]
        # preamble computes global tid via mad, stride via mul
        assert Opcode.MAD in ops
        assert ops.count(Opcode.EXIT) == 1
        # two loops -> two backward conditional branches
        branches = [i for i in lowered.ir.instructions()
                    if i.is_conditional_branch]
        assert len(branches) == 4  # 2 guards + 2 latches

    def test_region_tree_shape(self, matvec_spec):
        lowered = lower_kernel(matvec_spec)
        root = lowered.root_region
        assert root.kind is RegionKind.ROOT
        assert len(root.children) == 1
        ploop = root.children[0]
        assert ploop.kind is RegionKind.PLOOP
        assert ploop.loop_var == "i"
        assert len(ploop.children) == 1
        assert ploop.children[0].kind is RegionKind.SLOOP

    def test_parallel_extent(self, matvec_spec):
        from repro.codegen.ast_nodes import evaluate_expr

        lowered = lower_kernel(matvec_spec)
        assert evaluate_expr(lowered.parallel_extent, {"N": 37}) == 37

    def test_nested_parallel_rejected(self):
        N = dsl.sparam("N")
        i, j = dsl.ivars("i", "j")
        inner = dsl.pfor(j, N, [])
        spec_body = [dsl.pfor(i, N, [inner])]
        spec = dsl.kernel.__wrapped__ if hasattr(dsl.kernel, "__wrapped__") else None
        # KernelSpec validation catches two parallel loops; lowering catches
        # the nested case
        from repro.codegen.ast_nodes import KernelSpec, ScalarParam

        ks = KernelSpec.__new__(KernelSpec)
        object.__setattr__(ks, "name", "bad")
        object.__setattr__(ks, "params", (ScalarParam("N"),))
        object.__setattr__(ks, "body", tuple(spec_body))
        object.__setattr__(ks, "smem_arrays", ())
        with pytest.raises(LoweringError, match="nested parallel"):
            lower_kernel(ks)


class TestInstructionSelection:
    def test_fma_fusion(self):
        spec = _simple(lambda n, x, y: [y.store(n, x[n] * x[n] + 1.0)])
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        ops = _ops(ck)
        assert Opcode.FMA in ops

    def test_integer_mad_fusion(self):
        spec = _simple(lambda n, x, y: [y.store(n * 3 + 1, x[n])])
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        assert Opcode.MAD in _ops(ck)

    def test_pow2_mul_becomes_shift(self):
        spec = _simple(lambda n, x, y: [y.store(n, x[n * 8])])
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        assert Opcode.SHL in _ops(ck)

    def test_fast_math_shortens_exp(self):
        spec = _simple(lambda n, x, y: [y.store(n, dsl.exp(x[n]))])
        slow = compile_kernel(spec, CompileOptions(gpu=K20, fast_math=False))
        fast = compile_kernel(spec, CompileOptions(gpu=K20, fast_math=True))
        assert len(fast.ir) < len(slow.ir)
        assert Opcode.EX2 in _ops(fast)

    def test_fast_math_div_uses_rcp(self):
        spec = _simple(lambda n, x, y: [y.store(n, x[n] / 3.0)])
        fast = compile_kernel(spec, CompileOptions(gpu=K20, fast_math=True))
        slow = compile_kernel(spec, CompileOptions(gpu=K20, fast_math=False))
        assert Opcode.RCP in _ops(fast)
        assert len(fast.ir) < len(slow.ir)

    def test_addressing_mode_by_architecture(self):
        spec = _simple(lambda n, x, y: [y.store(n, x[n])])
        kep = compile_kernel(spec, CompileOptions(gpu=K20))
        fer = compile_kernel(spec, CompileOptions(gpu=M2050))
        assert Opcode.MULWIDE in _ops(kep)  # 64-bit addressing
        assert Opcode.MULWIDE not in _ops(fer)  # 32-bit addressing
        assert Opcode.SHL in _ops(fer)


class TestPredicationPolicy:
    def test_small_if_predicated(self):
        spec = _simple(lambda n, x, y: [
            dsl.assign("v", x[n]),
            dsl.when(dsl.var("v", "f32").gt(0.0),
                     [dsl.assign("v", dsl.var("v", "f32") * 2.0)]),
            y.store(n, dsl.var("v", "f32")),
        ])
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        guarded = [i for i in ck.ir.instructions()
                   if i.pred is not None and not i.is_branch]
        assert guarded  # if-converted
        # no THEN region was created
        kinds = {r.kind for r in ck.root_region.walk()}
        assert RegionKind.THEN not in kinds

    def test_large_if_branches(self):
        def big(n, x, y):
            v = dsl.var("v", "f32")
            updates = [dsl.assign("v", x[n])]
            for k in range(6):
                updates.append(dsl.assign("v", v * float(k + 2) + 1.0))
            return [
                dsl.assign("v", x[n]),
                dsl.when(v.gt(0.0), updates[1:],
                         [dsl.assign("v", v - 1.0)] * 4),
                y.store(n, v),
            ]

        spec = _simple(big)
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        kinds = [r.kind for r in ck.root_region.walk()]
        assert RegionKind.THEN in kinds and RegionKind.ELSE in kinds

    def test_access_pattern_resolves_locals(self):
        # i = n % N: the store through i must classify as coalesced
        N = dsl.sparam("N")
        NN = dsl.sparam("NN")
        x, y = dsl.farrays("x", "y")
        n, i = dsl.ivar("n"), dsl.ivar("i")
        spec = dsl.kernel("t", [N, NN, x, y], [
            dsl.pfor(n, NN, [
                dsl.assign("i", n % N),
                y.store(i, x[n]),
            ]),
        ])
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        stores = [
            a for r in ck.root_region.walk() for a in r.mem_accesses
            if a.is_store
        ]
        assert stores[0].pattern == "coalesced"


class TestErrors:
    def test_unbound_variable(self):
        spec = _simple(lambda n, x, y: [y.store(n, dsl.var("ghost", "f32"))])
        with pytest.raises(LoweringError, match="unbound"):
            lower_kernel(spec)

    def test_store_to_unknown_array(self):
        from repro.codegen.ast_nodes import Store, VarRef

        N = dsl.sparam("N")
        n = dsl.ivar("n")
        spec = dsl.kernel("t", [N], [
            dsl.pfor(n, N, [Store("ghost", n, dsl.f32(1.0))]),
        ])
        with pytest.raises(LoweringError, match="unknown array"):
            lower_kernel(spec)
