"""Tests for the static analyzer: mixes, intensity, Eq. 6, pipeline
utilization, divergence, suggestions, rules, and the facade."""


import pytest

from repro.arch import ALL_GPUS, K20
from repro.arch.throughput import PipeClass
from repro.core.analyzer import StaticAnalyzer
from repro.core.divergence import analyze_divergence, expected_warp_efficiency
from repro.core.instruction_mix import (
    raw_static_mix,
    static_mix,
    static_mix_module,
)
from repro.core.pipeline import bottleneck_pipeline, pipeline_utilization
from repro.core.rules import INTENSITY_THRESHOLD, rule_based_threads
from repro.core.suggest import suggest_for_module, suggest_parameters
from repro.core.timing_model import Eq6Model, fit_scale, profile_mae
from repro.kernels import get_benchmark


@pytest.fixture(scope="module")
def reports():
    out = {}
    for name in ("atax", "bicg", "matvec2d", "ex14fj"):
        bm = get_benchmark(name)
        out[name] = StaticAnalyzer(K20).analyze(
            list(bm.specs), bm.param_env(bm.sizes[-1]), name=name
        )
    return out


class TestInstructionMix:
    def test_raw_counts_are_static(self, compiled_benchmarks):
        ck = compiled_benchmarks["atax"].kernels[0]
        raw = raw_static_mix(ck)
        assert raw.total == len(ck.ir)

    def test_static_mix_scales_with_size(self, compiled_benchmarks):
        ck = compiled_benchmarks["atax"].kernels[0]
        small = static_mix(ck, {"N": 32})
        large = static_mix(ck, {"N": 64})
        # inner loop is O(N^2): quadrupling, not doubling
        assert large.total / small.total == pytest.approx(4.0, rel=0.2)

    def test_pipe_aggregation_sums(self, compiled_benchmarks):
        mix = static_mix_module(compiled_benchmarks["bicg"], {"N": 64})
        pipes = mix.by_pipe()
        non_reg = sum(v for k, v in pipes.items() if k is not PipeClass.REG)
        assert non_reg == pytest.approx(mix.total)
        assert pipes[PipeClass.REG] == pytest.approx(mix.reg_ops)

    def test_intensity_ordering_matches_paper(self, reports):
        """Table VI ordering: bicg < atax < 4.0 < matvec2d < ex14fj."""
        i = {k: r.intensity for k, r in reports.items()}
        assert i["bicg"] < i["atax"] < INTENSITY_THRESHOLD
        assert INTENSITY_THRESHOLD < i["matvec2d"] < i["ex14fj"]


class TestEq6:
    def test_coefficients_from_table_ii(self):
        m = Eq6Model.for_gpu(K20)
        assert m.cf == pytest.approx(1 / 192)
        assert m.cm == pytest.approx(1 / 32)
        assert m.cb == pytest.approx(1 / 32)
        assert m.cr == pytest.approx(1 / 32)

    def test_cost_monotone_in_size(self, compiled_benchmarks):
        mod = compiled_benchmarks["matvec2d"]
        m = Eq6Model.for_gpu(K20)
        costs = [
            m.weighted_cost(static_mix_module(mod, {"N": n, "NN": n * n}))
            for n in (32, 64, 128)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_profile_mae_bounds(self):
        assert profile_mae([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)
        assert 0.0 <= profile_mae([3, 2, 1], [10, 20, 30]) <= 1.0

    def test_profile_mae_validates(self):
        with pytest.raises(ValueError):
            profile_mae([1, 2], [1, 2, 3])

    def test_fit_scale(self):
        assert fit_scale([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.0)
        assert fit_scale([0.0, 0.0], [1.0, 1.0]) == 0.0


class TestPipeline:
    def test_utilization_normalized(self, compiled_benchmarks):
        mix = static_mix_module(compiled_benchmarks["atax"], {"N": 64})
        util = pipeline_utilization(mix, K20)
        assert sum(util.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in util.values())

    def test_ex14fj_sfu_heavy(self, compiled_benchmarks):
        env = {"N": 16, "NN": 256, "NNN": 4096}
        mix = static_mix_module(compiled_benchmarks["ex14fj"], env)
        util = pipeline_utilization(mix, K20)
        assert util["sfu"] > 0.10  # exp + integer div/mod

    def test_bottleneck_is_argmax(self, compiled_benchmarks):
        mix = static_mix_module(compiled_benchmarks["bicg"], {"N": 64})
        util = pipeline_utilization(mix, K20)
        assert util[bottleneck_pipeline(mix, K20)] == max(util.values())


class TestDivergenceAnalysis:
    def test_ex14fj_divergent(self, compiled_benchmarks):
        rep = analyze_divergence(compiled_benchmarks["ex14fj"].kernels[0])
        assert rep.divergent_branches >= 1
        assert rep.expected_efficiency < 1.0

    def test_matvec_no_costly_divergence(self, compiled_benchmarks):
        rep = analyze_divergence(compiled_benchmarks["matvec2d"].kernels[0])
        # only the grid-stride guard diverges; arms are empty -> eff 1.0
        assert rep.expected_efficiency == pytest.approx(1.0, abs=0.05)

    def test_efficiency_formula(self):
        assert expected_warp_efficiency(0, 0) == 1.0
        # balanced arms at p=0.5: both always issued, half useful
        assert expected_warp_efficiency(100, 100, 0.5) == pytest.approx(
            0.5, abs=0.01
        )
        # one-sided probability ~1: almost no loss on the then-arm
        assert expected_warp_efficiency(100, 0, 1.0) == pytest.approx(1.0)


class TestSuggestions:
    def test_reg_increase_preserves_occupancy(self):
        for gpu in ALL_GPUS:
            s = suggest_parameters(gpu, regs_per_thread=24)
            from repro.core.occupancy import occupancy

            best = max(
                occupancy(gpu, t, 24 + s.reg_increase).occupancy
                for t in s.threads
            )
            assert best == pytest.approx(s.best_occupancy)

    def test_smem_headroom_bounded(self):
        s = suggest_parameters(K20, regs_per_thread=24)
        assert 0 <= s.smem_headroom <= K20.smem_per_block_bytes

    def test_module_uses_max_registers(self, compiled_benchmarks):
        mod = compiled_benchmarks["atax"]
        s = suggest_for_module(mod)
        assert s.regs_used == mod.regs_per_thread

    def test_str(self):
        s = suggest_parameters(K20, 24, kernel_name="k")
        assert "T*=" in str(s) and "occ*=" in str(s)


class TestRules:
    def test_threshold_is_four(self):
        assert INTENSITY_THRESHOLD == 4.0

    def test_low_intensity_takes_lower_half(self):
        assert rule_based_threads((128, 256, 512, 1024), 2.0) == (128, 256)

    def test_high_intensity_takes_upper_half(self):
        assert rule_based_threads((128, 256, 512, 1024), 5.0) == (512, 1024)

    def test_odd_length_keeps_floor_half(self):
        t = (192, 256, 384, 512, 768)
        assert rule_based_threads(t, 1.0) == (192, 256)
        assert rule_based_threads(t, 9.0) == (512, 768)

    def test_boundary_value_goes_low(self):
        # intensity == 4.0 is NOT > 4.0
        assert rule_based_threads((64, 128), 4.0) == (64,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rule_based_threads((), 1.0)


class TestAnalyzerFacade:
    def test_report_complete(self, reports):
        rep = reports["atax"]
        assert rep.benchmark == "atax"
        assert rep.regs_per_thread > 0
        assert rep.suggestion.threads
        assert set(rep.rule_threads) <= set(rep.suggestion.threads)
        assert "ptxas" in rep.compile_log
        assert rep.predicted_cost > 0

    def test_compute_bound_flags(self, reports):
        assert not reports["atax"].compute_bound
        assert not reports["bicg"].compute_bound
        assert reports["matvec2d"].compute_bound
        assert reports["ex14fj"].compute_bound

    def test_summary_renders(self, reports):
        s = reports["ex14fj"].summary()
        assert "intensity" in s and "T*" in s and "divergence" in s

    def test_rule_threads_direction(self, reports):
        """Memory-leaning kernels get the lower half, compute the upper."""
        t_atax = reports["atax"].rule_threads
        t_ex = reports["ex14fj"].rule_threads
        assert max(t_atax) < min(t_ex)
