"""Round-trip tests for the textual assembly (printer <-> parser)."""

import pytest

from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.arch import K20, M2050
from repro.ptx.parser import ParseError, parse_kernel, parse_module
from repro.ptx.printer import print_kernel, print_module
from repro.ptx.module import PTXModule

SAMPLE = """
.kernel saxpy(.param .s32 N, .param .f32* x, .param .f32* y)
.reg 10
.shared 0
.target sm_35
{
  ld.param.s32 %r1, [N];
  ld.param.s64 %rd1, [x];
  ld.param.s64 %rd2, [y];
  mov.s32 %r2, %tid.x;
  setp.ge.s32 %p1, %r2, %r1;
  @%p1 bra $L_exit;
  mul.wide.s32 %rd3, %r2, 4;
  add.s64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  fma.f32 %f2, %f1, 2.0, %f1;
  add.s64 %rd5, %rd2, %rd3;
  st.global.f32 [%rd5], %f2;
  red.global.add.f32 [%rd5], %f2;
$L_exit:
  exit;
}
"""


class TestParse:
    def test_parse_sample(self):
        k = parse_kernel(SAMPLE)
        assert k.name == "saxpy"
        assert [p.name for p in k.params] == ["N", "x", "y"]
        assert k.params[1].is_pointer and not k.params[0].is_pointer
        assert k.regs_per_thread == 10
        assert k.target_sm == 35
        assert len(k.instructions()) == 14
        assert k.labels() == ["$L_exit"]

    def test_roundtrip_sample(self):
        k1 = parse_kernel(SAMPLE)
        k2 = parse_kernel(print_kernel(k1))
        assert print_kernel(k1) == print_kernel(k2)

    def test_module_roundtrip(self):
        k = parse_kernel(SAMPLE)
        mod = PTXModule("m", target_sm=35)
        mod.add(k)
        text = print_module(mod)
        mod2 = parse_module(text)
        assert sorted(mod2.kernels) == ["saxpy"]

    def test_comments_ignored(self):
        text = SAMPLE.replace(
            "  exit;", "  exit;  // trailing comment"
        )
        parse_kernel(text)


class TestCompiledRoundtrip:
    @pytest.mark.parametrize("gpu", [M2050, K20])
    @pytest.mark.parametrize("name", ["atax", "ex14fj", "matvec2d"])
    def test_compiled_kernels_roundtrip(self, gpu, name):
        from repro.kernels import get_benchmark

        bm = get_benchmark(name)
        for spec in bm.specs:
            ck = compile_kernel(spec, CompileOptions(gpu=gpu))
            text = ck.disassembly()
            reparsed = parse_kernel(text)
            assert print_kernel(reparsed) == text
            assert reparsed.regs_per_thread == ck.regs_per_thread
            # categories survive the round trip
            assert (reparsed.static_category_counts()
                    == ck.ir.static_category_counts())


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("garbage line", "instruction outside"),
            (".kernel broken(\n", "malformed .kernel"),
            (".kernel k()\n{\n  frobnicate.s32 %r1;\n}", "unknown opcode"),
            (".kernel k()\n{\n  setp.zz.s32 %p1, %r1, %r2;\n}",
             "malformed setp"),
            (".kernel k()\n{\n  ld.galactic.f32 %f1, [%rd1];\n}",
             "malformed ld"),
            (".kernel k()\n{", "unterminated"),
        ],
    )
    def test_errors(self, text, match):
        with pytest.raises(ParseError, match=match):
            parse_module(text)

    def test_parse_kernel_rejects_multiple(self):
        two = SAMPLE + SAMPLE.replace("saxpy", "other")
        with pytest.raises(ParseError, match="exactly one"):
            parse_kernel(two)
