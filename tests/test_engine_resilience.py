"""Resilience-layer tests: chaos-driven worker supervision, retry and
backoff accounting, poison-shard bisection, incremental checkpointing,
and cache hardening.

The invariant under test throughout: a sweep under injected faults
returns results *byte-identical* to a clean serial run, never aborts,
and accounts for every injected fault in ``SweepStats`` /
``ShardFailure`` records.  The seeded chaos campaign (marked ``chaos``)
scales with ``REPRO_CHAOS_BUDGET`` like the fuzz campaigns do.
"""

from __future__ import annotations

import os
import sqlite3
import warnings

import pytest

from repro.arch import get_gpu
from repro.autotune.measure import Measurer, MeasurementError
from repro.autotune.space import Parameter, ParameterSpace
from repro.engine import (
    CacheStore,
    PoolExecutor,
    ProgressReporter,
    RetryPolicy,
    ShardFailure,
    SweepEngine,
)
from repro.engine import chaos
from repro.engine.cache import _encode
from repro.engine.work import split_shard
from repro.kernels import get_benchmark

ATAX = get_benchmark("atax")
K20 = get_gpu("kepler")

FAST = RetryPolicy(backoff_base_s=0.005, backoff_max_s=0.05)


def tiny_space() -> ParameterSpace:
    # 4 compile keys (UIF x CFLAGS) so jobs=2 yields two real shards
    return ParameterSpace([
        Parameter("TC", (64, 128, 256, 512)),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])


SIZES = ATAX.sizes[:2]


@pytest.fixture(scope="module")
def serial():
    """The clean serial reference every chaos run must reproduce."""
    return SweepEngine(jobs=1).sweep(ATAX, K20, tiny_space(), SIZES)


@pytest.fixture(autouse=True)
def _no_leftover_chaos():
    chaos.uninstall()
    yield
    chaos.uninstall()


def assert_byte_identical(out, serial):
    assert [_encode(m) for m in out] == [_encode(m) for m in serial]


# ---------------------------------------------------------------------------
# retry / backoff machinery


class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        p = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0,
                        backoff_max_s=1.0, jitter=0.25)
        key = (1, 2, 3)
        assert p.backoff(1, key) == p.backoff(1, key)
        for attempt in (1, 2, 3, 8):
            b = p.backoff(attempt, key)
            base = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert base <= b <= base * 1.25
        # jitter decorrelates shards
        assert p.backoff(1, (1,)) != p.backoff(1, (2,))

    def test_split_shard_terminates_at_single_items(self):
        shard = list(range(7))
        halves = split_shard(shard)
        assert halves[0] + halves[1] == shard
        assert all(halves)


class TestChaosSpec:
    def test_roundtrip_through_env(self):
        spec = chaos.ChaosSpec(seed=7, kill_rate=0.5, only_indices=(1, 2))
        with chaos.injected(spec):
            assert chaos.active() == spec
        assert chaos.active() is None

    def test_decisions_are_deterministic(self):
        spec = chaos.ChaosSpec(seed=3, raise_rate=0.5)
        with chaos.injected(spec):
            outcomes = []
            for _ in range(2):
                row = []
                for shard in ((0, 1), (2, 3), (4, 5), (6, 7)):
                    try:
                        chaos.maybe_inject(shard, 0)
                        row.append(False)
                    except chaos.ChaosError:
                        row.append(True)
                outcomes.append(row)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


# ---------------------------------------------------------------------------
# supervision: recovery from every fault kind


class TestFaultRecovery:
    def test_inline_raise_retry_accounting(self, serial):
        with chaos.injected(chaos.ChaosSpec(seed=1, raise_rate=1.0,
                                            attempts=1)):
            engine = SweepEngine(jobs=1, policy=FAST)
            out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert_byte_identical(out, serial)
        stats = engine.last_stats
        # one shard per compile group (4 in tiny_space), each faulted once
        assert stats.retries == 4
        assert stats.recovered == 4
        assert stats.failures == 0
        assert engine.last_failures == []

    def test_worker_kill_recovery(self, serial):
        """os._exit mid-shard (an OOM-kill stand-in): the worker death
        is detected, the worker respawned, the shard retried."""
        with chaos.injected(chaos.ChaosSpec(seed=2, kill_rate=1.0,
                                            attempts=1)):
            engine = SweepEngine(jobs=2, policy=FAST)
            out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
            report = engine._executor.last_report
            engine.close()
        assert_byte_identical(out, serial)
        stats = engine.last_stats
        assert stats.failures == 0
        assert stats.retries == stats.recovered == len(report.events) == 4
        assert {rec.fate for _, rec in report.events} == {"worker-died"}
        assert all("exited with code" in rec.error
                   for _, rec in report.events)

    def test_shard_timeout_kill_and_retry(self, serial):
        """A shard hung past the deadline has its worker killed and is
        retried; accounting says 'timeout'."""
        policy = RetryPolicy(shard_timeout_s=0.3, backoff_base_s=0.005)
        with chaos.injected(chaos.ChaosSpec(seed=3, delay_rate=1.0,
                                            delay_s=5.0, attempts=1)):
            engine = SweepEngine(jobs=2, policy=policy)
            out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
            report = engine._executor.last_report
            engine.close()
        assert_byte_identical(out, serial)
        assert engine.last_stats.failures == 0
        assert engine.last_stats.recovered == 4
        assert {rec.fate for _, rec in report.events} == {"timeout"}
        assert all(rec.elapsed_s >= 0.3 for _, rec in report.events)

    def test_poison_shard_bisection_quarantines_exact_item(self, serial):
        """A work item that fails every attempt is isolated by repeated
        bisection and quarantined as a ShardFailure; the sweep does not
        abort and every other item is byte-identical."""
        poison = 5
        spec = chaos.ChaosSpec(seed=4, raise_rate=1.0, attempts=-1,
                               only_indices=(poison,))
        with chaos.injected(spec):
            engine = SweepEngine(
                jobs=1, policy=RetryPolicy(max_attempts=2,
                                           backoff_base_s=0.002),
            )
            out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert out[poison] is None
        assert [m for i, m in enumerate(out) if i != poison] == [
            m for i, m in enumerate(serial) if i != poison
        ]
        assert len(engine.last_failures) == 1
        failure = engine.last_failures[0]
        assert isinstance(failure, ShardFailure)
        assert failure.indices == (poison,)
        # bisection starts from the poison item's compile-group shard
        # (sharding is per compile group; tiny_space has 4 equal groups)
        assert failure.bisected_from == len(serial) // 4
        assert len(failure.attempts) == 2
        assert all("ChaosError" in rec.error for rec in failure.attempts)
        stats = engine.last_stats
        assert stats.failures == 1
        assert stats.measured == len(serial) - 1

    def test_parallel_path_failure_degrades_inline(self, serial):
        """If no worker can be spawned at all, the run warns and
        completes inline rather than failing."""

        class NoForkExecutor(PoolExecutor):
            def _spawn_worker(self):
                raise OSError("spawn refused (chaos)")

        engine = SweepEngine(jobs=2, policy=FAST)
        engine._executor = NoForkExecutor(2, policy=FAST)
        with pytest.warns(RuntimeWarning, match="degrading to inline"):
            out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert_byte_identical(out, serial)
        assert engine._executor.last_report.degraded
        assert engine.last_stats.failures == 0

    def test_measurement_error_names_the_point(self):
        measurer = Measurer(ATAX, K20)
        with pytest.raises(MeasurementError) as exc:
            # BC missing -> the underlying KeyError is wrapped with the
            # exact (config, size) point for ShardFailure records
            measurer.measure_many([({"TC": 64}, 32)])
        assert exc.value.size == 32
        assert "TC" in str(exc.value)


# ---------------------------------------------------------------------------
# incremental checkpointing


class _InterruptAfterShards(ProgressReporter):
    """Raises KeyboardInterrupt once ``limit`` shards have completed."""

    def __init__(self, limit: int = 1):
        self.limit = limit
        self.shards = 0

    def advance(self, n: int = 1) -> None:
        if n > 0:
            self.shards += 1
            if self.shards >= self.limit:
                raise KeyboardInterrupt


class TestIncrementalCheckpointing:
    def test_interrupted_sweep_resumes_warm_and_identical(self, tmp_path,
                                                          serial):
        """Kill a sweep after its first completed shard: that shard is
        already persisted, the rerun serves it from cache, and the final
        results are byte-identical to an uninterrupted run."""
        store = CacheStore(tmp_path)
        engine = SweepEngine(jobs=2, cache=store,
                             progress=_InterruptAfterShards(1))
        with pytest.raises(KeyboardInterrupt):
            engine.sweep(ATAX, K20, tiny_space(), SIZES)
        checkpointed = len(store)
        assert checkpointed > 0, "no shard was persisted before the kill"

        resumed = SweepEngine(jobs=2, cache=store)
        out = resumed.sweep(ATAX, K20, tiny_space(), SIZES)
        resumed.close()
        assert resumed.last_stats.hits == checkpointed
        assert resumed.last_stats.measured == len(serial) - checkpointed
        assert_byte_identical(out, serial)

    def test_quarantine_does_not_poison_the_cache(self, tmp_path, serial):
        """After a poisoned run, a clean rerun only re-measures the
        quarantined item -- everything else was checkpointed."""
        poison = 5
        store = CacheStore(tmp_path)
        spec = chaos.ChaosSpec(seed=5, raise_rate=1.0, attempts=-1,
                               only_indices=(poison,))
        with chaos.injected(spec):
            engine = SweepEngine(
                jobs=1, cache=store,
                policy=RetryPolicy(max_attempts=2, backoff_base_s=0.002),
            )
            engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert len(store) == len(serial) - 1

        clean = SweepEngine(jobs=1, cache=store)
        out = clean.sweep(ATAX, K20, tiny_space(), SIZES)
        assert clean.last_stats.measured == 1
        assert clean.last_stats.hits == len(serial) - 1
        assert_byte_identical(out, serial)


# ---------------------------------------------------------------------------
# cache hardening


class TestCacheHardening:
    def test_wal_mode_and_busy_timeout(self, tmp_path):
        store = CacheStore(tmp_path)
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        (timeout,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
        assert timeout >= 1000

    def test_concurrent_stores_interleave_writes(self, tmp_path, serial):
        a, b = CacheStore(tmp_path), CacheStore(tmp_path)
        for i in range(20):
            (a if i % 2 else b).put(f"k{i}", serial[i])
        assert len(a.get_many([f"k{i}" for i in range(20)])) == 20
        a.close(), b.close()

    def test_corrupt_payload_quarantined_and_remeasured(self, tmp_path,
                                                        serial):
        store = CacheStore(tmp_path)
        engine = SweepEngine(jobs=1, cache=store)
        engine.sweep(ATAX, K20, tiny_space(), SIZES)
        bad = chaos.corrupt_rows(store, seed=0, limit=3)
        assert len(bad) == 3

        out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert_byte_identical(out, serial)
        stats = engine.last_stats
        assert stats.corrupt == 3
        assert stats.measured == 3  # only the corrupt points remeasured
        assert stats.hits == len(serial) - 3
        assert store.corrupt == 3
        assert len(store.quarantined()) == 3
        assert {k for k, _ in store.quarantined()} == set(bad)

        # the re-measurement repaired the store in place
        engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert engine.last_stats.hits == len(serial)
        assert engine.last_stats.corrupt == 0

    def test_corrupt_database_file_moved_aside_and_rebuilt(self, tmp_path,
                                                           serial):
        db = tmp_path / "measurements.sqlite"
        db.write_bytes(b"definitely not a sqlite database" * 64)
        store = CacheStore(tmp_path)
        assert store.recovered_path is not None
        assert store.recovered_path.exists()
        assert store.recovered_path.name.endswith(".corrupt-1")
        assert len(store) == 0
        store.put("k", serial[0])
        assert store.get("k") == serial[0]
        store.close()

    def test_context_manager_closes_deterministically(self, tmp_path,
                                                      serial):
        with CacheStore(tmp_path) as store:
            store.put("k", serial[0])
            assert store.get("k") == serial[0]
        with pytest.raises(sqlite3.ProgrammingError):
            store.get("k")
        store.close()  # idempotent

    def test_engine_context_manager_closes_owned_store_only(self, tmp_path,
                                                            serial):
        with SweepEngine(jobs=1, cache=tmp_path / "owned") as engine:
            engine.sweep(ATAX, K20, tiny_space(), (SIZES[0],))
        with pytest.raises(sqlite3.ProgrammingError):
            engine.cache.get("k")

        shared = CacheStore(tmp_path / "shared")
        with SweepEngine(jobs=1, cache=shared) as engine:
            engine.sweep(ATAX, K20, tiny_space(), (SIZES[0],))
        shared.put("k", serial[0])  # caller's store stays open
        shared.close()


# ---------------------------------------------------------------------------
# executor lifecycle


class TestExecutorLifecycle:
    def test_workers_persist_across_runs_and_respawn_after_close(self,
                                                                 serial):
        engine = SweepEngine(jobs=2)
        engine.sweep(ATAX, K20, tiny_space(), SIZES)
        pids = sorted(w.proc.pid for w in engine._executor._workers)
        assert pids
        engine.sweep(ATAX, K20, tiny_space(), (ATAX.sizes[2],))
        assert sorted(
            w.proc.pid for w in engine._executor._workers
        ) == pids, "workers were not reused"
        engine.close()
        assert engine._executor._workers == []
        # still usable: workers respawn on demand
        out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
        assert_byte_identical(out, serial)
        engine.close()

    def test_close_is_clean_and_repeatable(self):
        executor = PoolExecutor(2)
        executor.close()
        executor.close()
        assert executor._workers == []


# ---------------------------------------------------------------------------
# the seeded chaos campaign (budget-scaled, like the fuzz campaigns)


@pytest.mark.chaos
class TestChaosCampaign:
    def test_seeded_campaign_is_always_byte_identical(self, serial):
        """Random mixes of kills, raises, and deadline-busting delays,
        one spec per seed: the sweep must always return byte-identical
        results with no quarantines and every fault accounted for."""
        budget = int(os.environ.get("REPRO_CHAOS_BUDGET", "3"))
        policy = RetryPolicy(shard_timeout_s=0.3, backoff_base_s=0.005,
                             max_attempts=4)
        for seed in range(budget):
            spec = chaos.ChaosSpec(
                seed=seed, kill_rate=0.4, raise_rate=0.4,
                delay_rate=0.3, delay_s=1.0, attempts=1,
            )
            with chaos.injected(spec):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    engine = SweepEngine(jobs=2, policy=policy)
                    out = engine.sweep(ATAX, K20, tiny_space(), SIZES)
                    report = engine._executor.last_report
                    engine.close()
            assert_byte_identical(out, serial)
            stats = engine.last_stats
            assert stats.failures == 0, f"seed {seed} quarantined work"
            assert stats.retries == len(report.events), (
                f"seed {seed}: {stats.retries} retries vs "
                f"{len(report.events)} recorded faults"
            )
            assert stats.recovered > 0 or not report.events
