"""Shared fixtures: GPUs, compiled benchmarks, small input sets."""

from __future__ import annotations

import pytest

from repro.arch import ALL_GPUS, K20, M2050
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import get_benchmark
from repro.util.rng import rng_for


@pytest.fixture(params=[g.name for g in ALL_GPUS])
def gpu(request):
    """Parametrized over all four paper GPUs."""
    from repro.arch import GPUS_BY_NAME

    return GPUS_BY_NAME[request.param]


@pytest.fixture(scope="session")
def kepler():
    return K20


@pytest.fixture(scope="session")
def fermi():
    return M2050


def small_size(name: str) -> int:
    return 8 if name == "ex14fj" else 16


@pytest.fixture(scope="session")
def compiled_benchmarks():
    """All four benchmarks compiled for K20 with default options."""
    out = {}
    for name in ("atax", "bicg", "matvec2d", "ex14fj"):
        bm = get_benchmark(name)
        out[name] = compile_module(
            name, list(bm.specs), CompileOptions(gpu=K20)
        )
    return out


@pytest.fixture(scope="session")
def matvec_spec():
    """A simple row-per-thread matvec kernel spec used across tests."""
    N = dsl.sparam("N")
    A, x, y = dsl.farrays("A", "x", "y")
    i, j = dsl.ivars("i", "j")
    s = dsl.var("s", "f32")
    return dsl.kernel(
        "mv",
        params=[N, A, x, y],
        body=[
            dsl.pfor(i, N, [
                dsl.assign("s", dsl.f32(0.0)),
                dsl.sfor(j, N, [dsl.assign("s", s + A[i * N + j] * x[j])]),
                y.store(i, s),
            ]),
        ],
    )


@pytest.fixture
def rng():
    return rng_for("tests")


def make_benchmark_run(name: str, n: int | None = None):
    """Inputs + reference for a benchmark at a small size."""
    bm = get_benchmark(name)
    n = n if n is not None else small_size(name)
    inputs = bm.make_inputs(n, rng_for("tests", name, n))
    return bm, n, inputs, bm.reference(inputs)
