"""Benches for the data tables: Table I, Table II, Table III/Fig. 3,
Table VI, Table VII."""

from repro.experiments import (
    fig3_spec,
    table1_gpus,
    table2_throughput,
    table6_mix_errors,
    table7_suggestions,
)


def test_bench_table1_gpus(benchmark):
    res = benchmark(table1_gpus.run)
    text = table1_gpus.render(res)
    assert "K20" in text
    print("\n" + text)


def test_bench_table2_throughput(benchmark):
    res = benchmark(table2_throughput.run)
    text = table2_throughput.render(res)
    assert "FPIns32" in text
    print("\n" + text)


def test_bench_fig3_table3_spec(benchmark):
    res = benchmark(fig3_spec.run)
    assert res["size"] == 5120
    print("\n" + fig3_spec.render(res))


def test_bench_table6_mix_errors(benchmark):
    res = benchmark.pedantic(
        table6_mix_errors.run,
        kwargs=dict(archs=("fermi", "kepler", "maxwell")),
        rounds=1, iterations=1,
    )
    text = table6_mix_errors.render(res)
    # intensity straddles the 4.0 threshold in the paper's direction
    by_kernel = {r["kernel"]: r["intensity"] for r in res["rows"]}
    assert by_kernel["bicg"] < by_kernel["atax"] < 4.0
    assert by_kernel["matvec2d"] > 4.0 and by_kernel["ex14fj"] > 4.0
    print("\n" + text)


def test_bench_table7_suggestions(benchmark):
    res = benchmark.pedantic(table7_suggestions.run, rounds=1, iterations=1)
    text = table7_suggestions.render(res)
    # the paper's T* sets per architecture
    kep = next(r for r in res["rows"]
               if r["kernel"] == "atax" and r["arch"] == "Kep")
    assert kep["threads"] == [128, 256, 512, 1024]
    fer = next(r for r in res["rows"]
               if r["kernel"] == "atax" and r["arch"] == "Fer")
    assert fer["threads"] == [192, 256, 384, 512, 768]
    print("\n" + text)
