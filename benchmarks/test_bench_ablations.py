"""Ablation benches for the timing model (DESIGN.md Sec. 5).

Each ablation disables one mechanism of the timing substrate and checks
which paper finding it carries:

- work spread        -> atax/BiCG's low-thread preference (Fig. 4 left);
- SFU latency hiding + block churn -> the compute kernels' high-thread
  preference (Fig. 4 right);
- the L1 cache-thrash model        -> the PL (L1 preference) parameter's
  effect on the row-walk kernels.
"""

import dataclasses

import numpy as np

from repro.arch import K20
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import get_benchmark
from repro.sim.timing import DEFAULT_PARAMS, LaunchConfig, TimingModel


def _rank_median_gap(name: str, size: int, params) -> float:
    """median TC of the faster half minus median TC of the slower half."""
    bm = get_benchmark(name)
    env = bm.param_env(size)
    mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
    tm = TimingModel(K20, params)
    times = {
        tc: tm.benchmark_time(mod, LaunchConfig(tc, 96), env)
        for tc in range(32, 1025, 32)
    }
    ordered = sorted(times, key=times.get)
    half = len(ordered) // 2
    return float(np.median(ordered[:half]) - np.median(ordered[half:]))


def test_bench_ablation_sfu_hiding_and_churn(benchmark):
    """Without SFU hiding + churn, ex14FJ loses its high-TC preference."""

    def run():
        full = _rank_median_gap("ex14fj", 128, DEFAULT_PARAMS)
        ablated = _rank_median_gap(
            "ex14fj", 128,
            dataclasses.replace(DEFAULT_PARAMS, w_need_sfu=0.0,
                                block_switch=0.0),
        )
        return full, ablated

    full, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nex14FJ rank-median TC gap: full model {full:+.0f}, "
          f"no-SFU-hiding/no-churn {ablated:+.0f}")
    assert full > 0           # high-TC preference present
    assert ablated < full     # and carried by the ablated mechanisms


def test_bench_ablation_work_spread(benchmark):
    """atax's low-TC preference comes from work spread: with enough
    parallelism (matvec2d) the same model does NOT prefer low TC."""

    def run():
        atax_gap = _rank_median_gap("atax", 512, DEFAULT_PARAMS)
        mv_gap = _rank_median_gap("matvec2d", 512, DEFAULT_PARAMS)
        return atax_gap, mv_gap

    atax_gap, mv_gap = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nrank-median TC gap: atax {atax_gap:+.0f} "
          f"(low-TC preference), matvec2d {mv_gap:+.0f}")
    assert atax_gap < -200    # strongly low
    assert mv_gap > atax_gap + 200


def test_bench_ablation_l1_thrash(benchmark):
    """The PL parameter only matters through the cache-thrash model, and
    only for the strided-with-reuse kernels (atax), on configurable-L1
    architectures (Fermi/Kepler)."""

    def run():
        bm = get_benchmark("atax")
        env = bm.param_env(512)
        tm = TimingModel(K20)
        launch = LaunchConfig(256, 48)
        t16 = tm.benchmark_time(
            compile_module("a", list(bm.specs),
                           CompileOptions(gpu=K20, l1_pref_kb=16)),
            launch, env)
        t48 = tm.benchmark_time(
            compile_module("a", list(bm.specs),
                           CompileOptions(gpu=K20, l1_pref_kb=48)),
            launch, env)
        bme = get_benchmark("ex14fj")
        enve = bme.param_env(64)
        e16 = tm.benchmark_time(
            compile_module("e", list(bme.specs),
                           CompileOptions(gpu=K20, l1_pref_kb=16)),
            launch, enve)
        e48 = tm.benchmark_time(
            compile_module("e", list(bme.specs),
                           CompileOptions(gpu=K20, l1_pref_kb=48)),
            launch, enve)
        return t16, t48, e16, e48

    t16, t48, e16, e48 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\natax PL=16: {t16*1e6:.1f}us  PL=48: {t48*1e6:.1f}us | "
          f"ex14fj PL=16: {e16*1e6:.1f}us  PL=48: {e48*1e6:.1f}us")
    assert t48 <= t16                 # bigger L1 helps the row walk
    assert abs(e48 - e16) / e16 < 0.01  # coalesced stencil indifferent
