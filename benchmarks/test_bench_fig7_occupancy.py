"""Fig. 7 bench: the occupancy-calculator impact charts for atax."""

from repro.experiments import fig7_occupancy_calc


def test_bench_fig7_occupancy_calculator(benchmark):
    res = benchmark.pedantic(
        fig7_occupancy_calc.run,
        kwargs=dict(kernel="atax", archs=("fermi", "kepler")),
        rounds=1, iterations=1,
    )
    for gpu, p in res["panels"].items():
        # the potential configuration must not lose occupancy anywhere the
        # analyzer suggested a thread count
        t_star = set(p["t_star"])
        for t, cur, pot in zip(p["threads"], p["current"], p["potential"]):
            if t in t_star:
                assert pot >= p["occ_star"] - 1e-9
    print("\n" + fig7_occupancy_calc.render(res))
