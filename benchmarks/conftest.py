"""Benchmark harness configuration.

Each ``test_bench_*`` module regenerates one table or figure of the paper
on a reduced, structure-preserving configuration (see
``repro.experiments.common.reduced_space``) and reports the regeneration
time through pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

The rendered artifact is printed with ``-s`` (or captured in the report).
"""

import pytest

from repro.experiments.common import clear_sweep_cache


@pytest.fixture(autouse=True)
def _fresh_sweep_cache():
    """Benchmarks must measure real work, not a warm sweep cache."""
    clear_sweep_cache()
    yield
