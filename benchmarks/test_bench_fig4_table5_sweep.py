"""Fig. 4 + Table V bench: the exhaustive autotuning sweep, thread-count
histograms per rank, and the rank statistics table.

Reduced configuration: one architecture per run (Kepler), the
256-variant structure-preserving space, three input sizes.  Use
``repro-experiments --full fig4 table5`` for the paper-size sweep.
"""


from repro.experiments import fig4_thread_counts, table5_statistics


def test_bench_fig4_thread_counts(benchmark):
    res = benchmark.pedantic(
        fig4_thread_counts.run,
        kwargs=dict(archs=["kepler"], kernels=["atax", "matvec2d"]),
        rounds=1, iterations=1,
    )
    panels = res["panels"]
    # atax: good performers at the lower thread ranges (paper Fig. 4)
    atax = panels[("atax", "K20")]
    assert atax["rank1_median"] < atax["rank2_median"]
    print("\n" + fig4_thread_counts.render(res))


def test_bench_table5_statistics(benchmark):
    res = benchmark.pedantic(
        table5_statistics.run,
        kwargs=dict(archs=["kepler"], kernels=["atax", "ex14fj"]),
        rounds=1, iterations=1,
    )
    r1 = {r["kernel"]: r for r in res["rank1"]}
    r2 = {r["kernel"]: r for r in res["rank2"]}
    # Table V shape: occupancy means similar between ranks ("occupancy did
    # not seem to matter much"), register instruction traffic much lower
    # for rank 1, atax rank-1 thread quartiles below rank 2
    assert abs(r1["atax"]["occ_mean"] - r2["atax"]["occ_mean"]) < 12.0
    assert r1["atax"]["reg_mean"] < r2["atax"]["reg_mean"]
    assert r1["atax"]["threads_p50"] < r2["atax"]["threads_p50"]
    assert r1["ex14fj"]["threads_p50"] > 256
    print("\n" + table5_statistics.render(res))
