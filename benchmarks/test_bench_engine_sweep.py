"""Sweep engine bench: cold measurement vs. warm persistent-cache serve.

The cold pass measures the full reduced atax/K20 sweep (256 variants x 3
sizes) through the engine and populates the on-disk cache; the benchmark
then times the warm pass, which serves every point from SQLite.  The
test asserts the acceptance bar for the engine: a cached re-run is at
least 5x faster than measuring (in practice it is 10-50x).
"""

import time

from repro.arch import get_gpu
from repro.engine import CacheStore, SweepEngine
from repro.experiments.common import reduced_space
from repro.kernels import get_benchmark


def test_bench_cached_sweep_speedup(benchmark, tmp_path):
    bm = get_benchmark("atax")
    gpu = get_gpu("kepler")
    space = reduced_space()
    sizes = bm.sizes[::2]
    engine = SweepEngine(jobs=1, cache=CacheStore(tmp_path))

    t0 = time.perf_counter()
    cold = engine.sweep(bm, gpu, space, sizes)
    cold_t = time.perf_counter() - t0

    warm = benchmark.pedantic(
        engine.sweep, args=(bm, gpu, space, sizes),
        rounds=3, iterations=1,
    )
    assert warm == cold
    assert engine.last_stats.hit_rate == 1.0

    warm_t = benchmark.stats.stats.mean
    speedup = cold_t / warm_t
    assert speedup >= 5.0, (
        f"cached sweep only {speedup:.1f}x faster "
        f"(cold {cold_t:.3f}s, warm {warm_t:.3f}s)"
    )
    print(f"\ncold {cold_t * 1e3:.1f} ms -> warm {warm_t * 1e3:.1f} ms "
          f"({speedup:.1f}x, {len(cold)} measurements)")
