"""Sweep engine bench: cold measurement vs. warm persistent-cache serve.

The cold pass measures the full reduced atax/K20 sweep (256 variants x 3
sizes) through the engine and populates the on-disk cache; the benchmark
then times the warm pass, which serves every point from SQLite.  The
test asserts the acceptance bar for the engine: a cached re-run is at
least 5x faster than measuring (in practice it is 10-50x).
"""

import time

from repro.arch import get_gpu
from repro.engine import CacheStore, RetryPolicy, SweepEngine
from repro.experiments.common import reduced_space
from repro.kernels import get_benchmark


def test_bench_cached_sweep_speedup(benchmark, tmp_path):
    bm = get_benchmark("atax")
    gpu = get_gpu("kepler")
    space = reduced_space()
    sizes = bm.sizes[::2]
    engine = SweepEngine(jobs=1, cache=CacheStore(tmp_path))

    t0 = time.perf_counter()
    cold = engine.sweep(bm, gpu, space, sizes)
    cold_t = time.perf_counter() - t0

    warm = benchmark.pedantic(
        engine.sweep, args=(bm, gpu, space, sizes),
        rounds=3, iterations=1,
    )
    assert warm == cold
    assert engine.last_stats.hit_rate == 1.0

    warm_t = benchmark.stats.stats.mean
    speedup = cold_t / warm_t
    assert speedup >= 5.0, (
        f"cached sweep only {speedup:.1f}x faster "
        f"(cold {cold_t:.3f}s, warm {warm_t:.3f}s)"
    )
    print(f"\ncold {cold_t * 1e3:.1f} ms -> warm {warm_t * 1e3:.1f} ms "
          f"({speedup:.1f}x, {len(cold)} measurements)")


def test_bench_supervision_overhead_floor(benchmark, tmp_path):
    """Supervision must be free on the happy path.

    The resilience layer (retry bookkeeping, per-shard deadlines,
    incremental checkpointing, quarantine probing in the cache decode
    path) runs on every sweep, faults or not.  This bench serves the same
    warm sweep through a supervised engine (default policy) and through a
    bare-minimum one (single attempt, no deadline) and asserts the
    supervised wall time stays within 5% of the floor, plus a small
    absolute slack so micro-jitter on a ~100 ms sweep cannot flake CI.
    """
    bm = get_benchmark("atax")
    gpu = get_gpu("kepler")
    space = reduced_space()
    sizes = bm.sizes[::2]

    with SweepEngine(jobs=1, cache=tmp_path) as seeder:
        baseline = seeder.sweep(bm, gpu, space, sizes)

    bare = RetryPolicy(max_attempts=1, shard_timeout_s=None)
    with SweepEngine(jobs=1, cache=tmp_path, policy=bare) as floor_engine:
        floor_t = min(
            _timed(floor_engine.sweep, bm, gpu, space, sizes)
            for _ in range(3)
        )

    supervised = SweepEngine(jobs=1, cache=tmp_path)
    with supervised:
        warm = benchmark.pedantic(
            supervised.sweep, args=(bm, gpu, space, sizes),
            rounds=3, iterations=1,
        )
        stats = supervised.last_stats
    assert warm == baseline
    assert stats.hit_rate == 1.0
    assert (stats.retries, stats.failures, stats.recovered) == (0, 0, 0)

    sup_t = benchmark.stats.stats.min
    budget = floor_t * 1.05 + 0.05
    assert sup_t <= budget, (
        f"supervised warm sweep {sup_t * 1e3:.1f} ms exceeds overhead "
        f"budget {budget * 1e3:.1f} ms (floor {floor_t * 1e3:.1f} ms)"
    )
    print(f"\nfloor {floor_t * 1e3:.1f} ms -> supervised "
          f"{sup_t * 1e3:.1f} ms "
          f"(+{(sup_t / floor_t - 1) * 100:.1f}%)")


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
