"""Emulator bench: corpus-wide scalar vs vectorized emulation wall-clock.

Emulates every corpus member at suite scale -- a size whose parallel
extent fills the launch, under the member's structural constraints -- on
both execution paths, asserts they agree bit for bit, and requires the
vectorized grid-level path to be >= 5x faster over the whole corpus (the
ISSUE 5 acceptance bar).  The timed pass is the vectorized one, so the
benchmark JSON tracks the fast path's regression history; the scalar
reference pass is timed once for the speedup ratio.
"""

import time

from repro.arch import K20
from repro.codegen.compiler import CompileOptions, compile_module
from repro.kernels import get_benchmark
from repro.sim.emulator import run_benchmark_emulated
from repro.util.rng import rng_for

SUITE_CASES = {
    # member: (size, tc, bc) -- extents fill the grid, constraints hold
    # (dot needs N % (TC*BC) == 0, matvec_smem TC == tile == 128)
    "atax": (256, 128, 2),
    "bicg": (256, 128, 2),
    "dot": (1024, 128, 2),
    "ex14fj": (16, 128, 8),
    "gemm": (32, 128, 8),
    "gemver": (256, 128, 2),
    "gesummv": (256, 128, 2),
    "jacobi2d": (64, 128, 8),
    "matvec2d": (64, 128, 8),
    "matvec_smem": (256, 128, 2),
    "mvt": (256, 128, 2),
}


def _compile_corpus():
    cases = []
    for name, (n, tc, bc) in sorted(SUITE_CASES.items()):
        bm = get_benchmark(name)
        inputs = bm.make_inputs(n, rng_for("bench", "emulator", name, n))
        mod = compile_module(name, list(bm.specs), CompileOptions(gpu=K20))
        cases.append((name, mod, inputs, tc, bc))
    return cases


def _emulate_corpus(cases, mode):
    out = {}
    for name, mod, inputs, tc, bc in cases:
        outs, res = run_benchmark_emulated(mod, inputs, tc=tc, bc=bc,
                                           mode=mode)
        out[name] = (outs, res)
    return out


def test_bench_vectorized_corpus_emulation(benchmark):
    cases = _compile_corpus()

    t0 = time.perf_counter()
    scalar = _emulate_corpus(cases, "scalar")
    scalar_t = time.perf_counter() - t0

    vector = benchmark.pedantic(
        _emulate_corpus, args=(cases, "vector"), rounds=3, iterations=1,
    )

    # equivalence at suite scale: bit-identical memory and counters
    for name in scalar:
        outs_s, res_s = scalar[name]
        outs_v, res_v = vector[name]
        assert res_v.profile.mode == "grid", name
        assert res_s == res_v, name
        for arr in outs_s:
            assert outs_s[arr].tobytes() == outs_v[arr].tobytes(), (
                f"{name}:{arr}"
            )

    vector_t = benchmark.stats.stats.mean
    speedup = scalar_t / vector_t
    widths = {
        name: round(res.profile.mean_stack_width, 1)
        for name, (_, res) in vector.items()
    }
    print(f"\nscalar {scalar_t:.2f}s -> vectorized {vector_t:.2f}s "
          f"({speedup:.1f}x, stack widths {widths})")
    assert speedup >= 5.0, (
        f"vectorized corpus emulation only {speedup:.1f}x faster "
        f"(scalar {scalar_t:.2f}s, vectorized {vector_t:.2f}s)"
    )
