"""Suite sweep bench: cold corpus measurement vs. warm cache serve.

The cold pass measures every corpus member's reduced evaluation space on
K20 through one shared engine, populating the on-disk cache; the
benchmark then times the warm pass over the same corpus, which serves
every point from SQLite.  This is the engine acceptance bar (>= 5x)
applied to the whole 11-member corpus rather than one kernel, so a
benchmark whose space or sizes quietly explode shows up here.
"""

import time

from repro.arch import get_gpu
from repro.engine import CacheStore, SweepEngine
from repro.suite import corpus_members, corpus_sizes, corpus_space


def _sweep_corpus(engine, gpu):
    out = []
    for bm in corpus_members():
        results = engine.sweep(
            bm, gpu, corpus_space(bm), corpus_sizes(bm)
        )
        assert engine.last_stats is not None
        out.append((bm.name, results))
    return out


def test_bench_cached_corpus_sweep_speedup(benchmark, tmp_path):
    gpu = get_gpu("kepler")
    engine = SweepEngine(jobs=1, cache=CacheStore(tmp_path))

    t0 = time.perf_counter()
    cold = _sweep_corpus(engine, gpu)
    cold_t = time.perf_counter() - t0
    measured = engine.total_measured
    assert measured > 0

    warm = benchmark.pedantic(
        _sweep_corpus, args=(engine, gpu), rounds=3, iterations=1,
    )
    assert warm == cold
    assert engine.total_measured == measured  # warm passes measured nothing

    warm_t = benchmark.stats.stats.mean
    speedup = cold_t / warm_t
    assert speedup >= 5.0, (
        f"cached corpus sweep only {speedup:.1f}x faster "
        f"(cold {cold_t:.3f}s, warm {warm_t:.3f}s)"
    )
    points = sum(len(r) for _, r in cold)
    print(f"\ncold {cold_t * 1e3:.0f} ms -> warm {warm_t * 1e3:.0f} ms "
          f"({speedup:.1f}x, {len(cold)} kernels, {points} measurements)")
