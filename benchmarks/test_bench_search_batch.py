"""Batched-search bench: genetic search through the parallel engine.

Genetic search proposes whole populations per generation through the
ask/tell protocol, so the engine can shard each generation across worker
processes.  The test asserts the acceptance bar for the batched search
path: on a cold cache, ``jobs=4`` beats ``jobs=1`` on wall-clock (the
timing assertion requires a multi-core host; results must be
byte-identical everywhere).
"""

import os
import time

import pytest

from repro.arch import get_gpu
from repro.autotune import Autotuner
from repro.engine import SweepEngine
from repro.engine.cache import _encode
from repro.kernels import get_benchmark


def _tune_genetic(engine):
    tuner = Autotuner(get_benchmark("atax"), get_gpu("kepler"))
    return tuner.tune(size=512, search="genetic", population=128,
                      generations=8, engine=engine)


def test_bench_genetic_parallel_beats_serial(benchmark):
    with SweepEngine(jobs=1) as serial_engine:
        t0 = time.perf_counter()
        serial = _tune_genetic(serial_engine)
        serial_t = time.perf_counter() - t0

    with SweepEngine(jobs=4) as parallel_engine:
        parallel = benchmark.pedantic(
            _tune_genetic, args=(parallel_engine,), rounds=3, iterations=1,
        )
    # best-of-rounds damps scheduler noise on shared CI runners
    parallel_t = benchmark.stats.stats.min

    # parallel evaluation must never change what was measured
    assert parallel.search.history == serial.search.history
    assert parallel.best_config == serial.best_config
    assert [_encode(m) for m in parallel.results.measurements] == [
        _encode(m) for m in serial.results.measurements
    ]

    cores = os.cpu_count() or 1
    print(f"\nserial {serial_t * 1e3:.0f} ms -> jobs=4 "
          f"{parallel_t * 1e3:.0f} ms "
          f"({serial_t / parallel_t:.2f}x, "
          f"{serial.search.evaluations} evaluations, {cores} cores)")
    if cores < 2:
        pytest.skip("single-core host cannot express a parallel speedup")
    assert parallel_t < serial_t, (
        f"jobs=4 genetic search ({parallel_t:.3f}s) did not beat jobs=1 "
        f"({serial_t:.3f}s) on a cold cache"
    )
