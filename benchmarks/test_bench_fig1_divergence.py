"""Fig. 1 bench: branch divergence loss, measured by the SIMT emulator."""

from repro.experiments import fig1_divergence


def test_bench_fig1_divergence(benchmark):
    res = benchmark.pedantic(
        fig1_divergence.run,
        kwargs=dict(n=1024, tc=128, bc=2, path_counts=(1, 2, 4, 8, 16, 32)),
        rounds=1, iterations=1,
    )
    rows = res["rows"]
    effs = [r["simd_efficiency"] for r in rows]
    # the paper's Fig. 1 shape: efficiency collapses as paths multiply
    assert effs == sorted(effs, reverse=True)
    # 32-way divergence: the arms serialize (one lane useful per arm
    # issue); the switch's condition spine still runs at partial-warp
    # width under exact ipdom reconvergence, which floors efficiency
    # well above 1/32 for these small arms
    assert effs[-1] < 0.30
    infl = [r["issue_inflation"] for r in rows]
    assert infl[-1] > 15.0
    print("\n" + fig1_divergence.render(res))
