"""Extension bench: STATuner-style learned classifier vs the analytical T*.

The paper (Sec. V) contrasts its model-based T* range against STATuner's
single learned block size.  This bench trains the classifier on simulator
sweeps and checks both mechanisms against the empirical best thread count
per (kernel, size) cell.
"""

from repro.arch import K20
from repro.autotune.measure import Measurer
from repro.core.analyzer import StaticAnalyzer
from repro.core.classifier import (
    BLOCK_SIZE_CLASSES,
    extract_features,
    train_on_sweeps,
)
from repro.kernels import get_benchmark
from repro.util.tables import ascii_table


def test_bench_classifier_vs_tstar(benchmark):
    clf, data = benchmark.pedantic(
        train_on_sweeps, args=(K20,), kwargs=dict(sizes_per_benchmark=2),
        rounds=1, iterations=1,
    )
    rows = []
    hits_clf = cells = 0
    worst_tstar_ratio = worst_clf_ratio = 1.0
    for name in ("atax", "bicg", "matvec2d", "ex14fj"):
        bm = get_benchmark(name)
        size = bm.sizes[-1]
        measurer = Measurer(bm, K20)
        base = {"BC": 96, "UIF": 1, "PL": 16, "CFLAGS": ""}
        times = {
            tc: measurer.measure(dict(base, TC=tc), size).seconds
            for tc in BLOCK_SIZE_CLASSES
        }
        best_tc = min(times, key=times.get)
        module = measurer.module_for(dict(base, TC=64))
        pred = clf.predict(extract_features(module, bm.param_env(size)))
        rep = StaticAnalyzer(K20).analyze(
            list(bm.specs), bm.param_env(size), name=name
        )
        tstar = set(rep.suggestion.threads) & set(BLOCK_SIZE_CLASSES)
        tstar_best = min(times[t] for t in tstar)
        cells += 1
        hits_clf += int(pred == best_tc)
        worst_tstar_ratio = max(worst_tstar_ratio,
                                tstar_best / times[best_tc])
        worst_clf_ratio = max(worst_clf_ratio,
                              times[pred] / times[best_tc])
        rows.append([name, best_tc, pred,
                     str(sorted(tstar)),
                     f"{tstar_best / times[best_tc]:.2f}"])
    print("\n" + ascii_table(
        ["Kernel", "Empirical best TC", "Classifier", "T* (class sizes)",
         "T* best / optimum"],
        rows,
        title="Learned single prediction vs analytical T* range (K20)",
        align_right=False,
    ))
    # the classifier memorizes its training cells; the analytical range's
    # value is robustness: its best member must stay near the optimum
    assert hits_clf >= cells // 2
    assert worst_tstar_ratio <= 1.6
    print(f"classifier train-cell accuracy {hits_clf}/{cells}; "
          f"worst T* quality {worst_tstar_ratio:.2f}x, "
          f"worst classifier quality {worst_clf_ratio:.2f}x")
