"""Fig. 6 bench: search-space improvement of the static (and rule-based)
search module over exhaustive autotuning, with solution quality."""


from repro.experiments import fig6_search_improvement


def test_bench_fig6_search_improvement(benchmark):
    res = benchmark.pedantic(
        fig6_search_improvement.run,
        kwargs=dict(archs=["kepler", "fermi"],
                    kernels=["atax", "ex14fj"]),
        rounds=1, iterations=1,
    )
    for row in res["rows"]:
        # Kepler/Maxwell/Pascal: |T*|=4..5 of 32 -> ~84-87.5% improvement;
        # the rule halves T* again -> ~93.8%
        assert row["static_improvement"] >= 0.84
        assert row["rb_improvement"] >= 0.93
        # pruning must not cost much quality
        assert row["static_quality"] <= 1.25
        assert row["rb_quality"] <= 1.25
    print("\n" + fig6_search_improvement.render(res))
