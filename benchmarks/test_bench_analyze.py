"""Analyzer bench: full lint pass over the registered corpus.

Lints every registered benchmark (compile + CFG + value analysis + all
four checkers per kernel) and requires the whole pass to finish inside
a wall-clock floor, so the dataflow solver stays cheap enough to run on
every CI push and never lands on the sweep hot path.
"""

from repro.analyze import lint_benchmark, unexpected_diagnostics
from repro.kernels import BENCHMARKS, get_benchmark

FLOOR_SECONDS = 2.0


def _lint_corpus():
    unexpected = 0
    kernels = 0
    for name in sorted(BENCHMARKS):
        bench = get_benchmark(name)
        reports = lint_benchmark(bench)
        kernels += len(reports)
        unexpected += len(unexpected_diagnostics(bench, reports))
    return kernels, unexpected


def test_bench_full_corpus_lint(benchmark):
    kernels, unexpected = benchmark.pedantic(
        _lint_corpus, rounds=3, iterations=1
    )
    assert unexpected == 0
    assert kernels >= 15  # 15 benchmarks, >= one kernel each

    elapsed = benchmark.stats.stats.mean
    print(f"\nfull corpus lint: {kernels} kernels in {elapsed:.2f}s")
    assert elapsed <= FLOOR_SECONDS, (
        f"corpus lint took {elapsed:.2f}s (floor {FLOOR_SECONDS}s)"
    )
