"""Fig. 5 bench: Eq. 6 static execution-time prediction MAE."""

from repro.experiments import fig5_time_model


def test_bench_fig5_time_model(benchmark):
    res = benchmark.pedantic(
        fig5_time_model.run,
        kwargs=dict(archs=["kepler"],
                    kernels=["atax", "bicg", "matvec2d", "ex14fj"]),
        rounds=1, iterations=1,
    )
    maes = {r["kernel"]: r["mae"] for r in res["rows"]}
    # the normalized-profile MAE stays within a reasonable margin for all
    # kernels (paper: "within a reasonable margin of error")
    assert all(m <= 0.5 for m in maes.values()), maes
    print("\n" + fig5_time_model.render(res))
