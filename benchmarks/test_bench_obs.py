"""Observability overhead bench: instrumentation must be (nearly) free.

The obs facade is compiled into every hot path -- the engine's shard
loop, the measurer, the emulator's launch wrapper -- so its cost is
bounded from two directions:

- the *disabled* fast path (a module-attribute ``None`` check per call)
  is the floor every untraced run pays; a warm sweep through a fully
  *enabled* collector must stay within 5% of that floor (plus a small
  absolute slack so micro-jitter on a ~100 ms sweep cannot flake CI),
  which transitively bounds the disabled path itself;
- a direct microbenchmark pins the per-call cost of the disabled facade
  to single-digit microseconds, so instrumenting a new call site never
  needs a performance discussion.
"""

import time

from repro import obs
from repro.arch import get_gpu
from repro.engine import SweepEngine
from repro.experiments.common import reduced_space
from repro.kernels import get_benchmark


def test_bench_traced_warm_sweep_overhead(benchmark, tmp_path):
    bm = get_benchmark("atax")
    gpu = get_gpu("kepler")
    space = reduced_space()
    sizes = bm.sizes[::2]

    with SweepEngine(jobs=1, cache=tmp_path) as seeder:
        baseline = seeder.sweep(bm, gpu, space, sizes)

    obs.disable()
    with SweepEngine(jobs=1, cache=tmp_path) as floor_engine:
        floor_t = min(
            _timed(floor_engine.sweep, bm, gpu, space, sizes)
            for _ in range(3)
        )

    obs.enable()
    try:
        with SweepEngine(jobs=1, cache=tmp_path) as traced:
            warm = benchmark.pedantic(
                traced.sweep, args=(bm, gpu, space, sizes),
                rounds=3, iterations=1,
            )
            stats = traced.last_stats
        assert warm == baseline
        assert stats.hit_rate == 1.0
        assert obs.metrics.value(
            "engine.runs", kernel=bm.name, gpu=gpu.name
        ) == 3  # one per pedantic round, all collected
    finally:
        obs.disable()

    on_t = benchmark.stats.stats.min
    budget = floor_t * 1.05 + 0.05
    assert on_t <= budget, (
        f"traced warm sweep {on_t * 1e3:.1f} ms exceeds overhead "
        f"budget {budget * 1e3:.1f} ms (floor {floor_t * 1e3:.1f} ms)"
    )
    print(f"\nfloor {floor_t * 1e3:.1f} ms -> traced {on_t * 1e3:.1f} ms "
          f"(+{(on_t / floor_t - 1) * 100:.1f}%)")


def test_bench_disabled_facade_call_cost(benchmark):
    obs.disable()
    n = 10_000

    def hammer():
        for i in range(n):
            obs.add("engine.measured", 1, kernel="atax")
            with obs.span("measure", key=i) as sp:
                sp.annotate(size=i)

    benchmark(hammer)
    per_call = benchmark.stats.stats.min / (2 * n)
    assert per_call < 5e-6, (
        f"disabled obs facade costs {per_call * 1e9:.0f} ns/call"
    )
    print(f"\ndisabled facade: {per_call * 1e9:.0f} ns/call")


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0
