"""Differential-executor throughput bench.

Times a fixed-seed slice of the fuzz campaign -- generation plus the
full three-way check (reference, scalar emulator, vectorized emulator)
per program -- and enforces the CI budget contract: the default
100-program campaign must finish with comfortable headroom inside the
fuzz job's 120-second ceiling.  A regression here (a slower scalar
path, a pathological generator change) would otherwise surface as a
flaky nightly timeout.
"""

from repro.fuzz import check_program, generate_program

SEEDS = range(24)
PROGRAMS_PER_SECOND_FLOOR = 2.0


def _check_slice():
    mismatches = [
        s for s in SEEDS if check_program(generate_program(s)) is not None
    ]
    assert not mismatches, f"differential mismatches at seeds {mismatches}"
    return len(SEEDS)


def test_bench_differential_throughput(benchmark):
    count = benchmark.pedantic(_check_slice, rounds=3, iterations=1)
    per_second = count / benchmark.stats.stats.mean
    assert per_second >= PROGRAMS_PER_SECOND_FLOOR, (
        f"differential executor at {per_second:.2f} programs/s; the "
        f"default 100-program campaign would breach its CI budget"
    )
    print(f"\n{per_second:.1f} programs/s over {count} fixed seeds")
