#!/usr/bin/env python
"""Occupancy explorer: the paper's Eqs. 1-5 across all four GPUs.

Shows, for a register/shared-memory budget you pick on the command line,
which resource limits occupancy at every block size and which block sizes
reach the attainable maximum (the analyzer's T*) -- the interactive
equivalent of the paper's Fig. 7 calculator panels.

Run: python examples/occupancy_explorer.py [regs_per_thread] [smem_bytes]
"""

import sys

from repro.arch import ALL_GPUS
from repro.core.occupancy import occupancy_curve
from repro.core.suggest import suggest_parameters
from repro.util.tables import ascii_bar_chart


def main(regs: int = 32, smem: int = 0) -> None:
    print(f"occupancy for a kernel using {regs} registers/thread, "
          f"{smem} B shared memory per block\n")
    for gpu in ALL_GPUS:
        curve = occupancy_curve(gpu, regs_u=regs, smem_u=smem)
        s = suggest_parameters(gpu, regs, smem)
        sel = [r for r in curve if r.threads_u % 128 == 0]
        print(f"=== {gpu.short()} ===")
        print(ascii_bar_chart(
            [f"T={r.threads_u:4d} [{r.limiter[:4]}]" for r in sel],
            [r.occupancy for r in sel],
            max_value=1.0, width=40, fmt="{:.2f}",
        ))
        print(f"T* = {list(s.threads)}   occ* = {s.best_occupancy:g}   "
              f"register headroom R* = {s.reg_increase}   "
              f"smem headroom S* = {s.smem_headroom} B\n")


if __name__ == "__main__":
    r = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(r, m)
