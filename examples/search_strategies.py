#!/usr/bin/env python
"""Compare every search strategy on the paper's tuning problem.

Runs exhaustive, random, simulated annealing, genetic, Nelder-Mead, and
the paper's static (and static+rule) searches over the 5,120-variant
space, reporting measurements spent and solution quality relative to the
exhaustive optimum -- the trade-off the paper's Sec. IV-C discusses.

Every strategy proposes ask/tell batches, so a single shared sweep
engine shards all of their evaluations across worker processes -- pass
a jobs count to see the whole comparison accelerate. The runs go
through ``repro.api.tune``, the same entry point the tuning service
drives remotely (add ``cache=`` to persist measurements across runs).

Run: python examples/search_strategies.py [kernel] [size] [jobs]
"""

import sys
import time

from repro.api import tune
from repro.engine import SweepEngine
from repro.util.tables import ascii_table


def main(kernel: str = "bicg", size: int = 256, jobs: int = 1) -> None:
    with SweepEngine(jobs=jobs) as engine:
        t0 = time.time()
        exhaustive = tune(kernel, "kepler", size, search="exhaustive",
                          engine=engine)
        base = exhaustive.best_value
        rows = [["exhaustive", exhaustive.evaluations, "0.0%",
                 f"{base * 1e6:.1f}", "1.000"]]
        print(f"(exhaustive baseline took {time.time() - t0:.1f}s "
              f"of host time)")

        runs = [
            ("random", dict(search="random", budget=200)),
            ("annealing", dict(search="annealing", budget=200)),
            ("genetic", dict(search="genetic", budget=200)),
            ("simplex", dict(search="simplex", budget=150)),
            ("static", dict(search="static")),
            ("static+rule", dict(search="static", use_rule=True)),
            ("static>simplex", dict(search="static", inner="simplex",
                                    budget=60)),
        ]
        for label, kwargs in runs:
            out = tune(kernel, "kepler", size, engine=engine, **kwargs)
            rows.append([
                label,
                out.evaluations,
                f"{out.space_reduction:.1%}",
                f"{out.best_value * 1e6:.1f}",
                f"{out.best_value / base:.3f}",
            ])

    print(ascii_table(
        ["Search", "Measurements", "Space removed", "Best (us)",
         "vs optimum"],
        rows,
        title=f"Search strategies on {kernel!r} (N={size}, kepler, "
              f"5,120-variant space)",
        align_right=False,
    ))
    print(
        "\nNote how the static module needs no *runs* to prune the space: "
        "the reduction comes from compile-time analysis alone, and any "
        "empirical strategy can then search the remainder."
    )


if __name__ == "__main__":
    k = sys.argv[1] if len(sys.argv) > 1 else "bicg"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 256
    j = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    main(k, n, j)
