#!/usr/bin/env python
"""Branch-divergence study (the paper's Fig. 1) on the SIMT emulator.

Builds kernels whose warps split over 1..32 serialized paths, executes
them on the warp-level emulator, and compares the measured SIMD efficiency
against the static analyzer's divergence report -- then shows the same
analysis for the one real benchmark with data-dependent-looking control
flow, the ex14FJ boundary test, across its input sizes.

Run: python examples/divergence_study.py
"""

from repro.arch import get_gpu
from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.core.divergence import analyze_divergence
from repro.experiments.fig1_divergence import build_divergent_kernel, run, render
from repro.kernels import get_benchmark
from repro.sim.counting import exact_counts
from repro.sim.emulator import run_benchmark_emulated
from repro.codegen.compiler import compile_module


def main() -> None:
    print(render(run(n=2048, tc=128, bc=2)))
    print()

    # static view of the synthetic kernels
    gpu = get_gpu("kepler")
    for paths in (2, 8, 32):
        ck = compile_kernel(build_divergent_kernel(paths),
                            CompileOptions(gpu=gpu))
        rep = analyze_divergence(ck)
        print(f"static view, P={paths:2d}: {rep.divergent_branches} "
              f"divergent branches, expected efficiency "
              f"{rep.expected_efficiency:.2f}")

    # the real benchmark: ex14FJ boundary divergence shrinks with N
    print("\nex14FJ boundary divergence vs input size:")
    bm = get_benchmark("ex14fj")
    for n in (8, 16, 32):
        inputs = bm.make_inputs(n, __import__("numpy").random.default_rng(0))
        mod = compile_module("ex14fj", list(bm.specs),
                             CompileOptions(gpu=gpu))
        _, emu = run_benchmark_emulated(mod, inputs, tc=64, bc=4)
        boundary_frac = 1 - (n - 2) ** 3 / n**3
        print(f"  N={n:3d}: boundary fraction {boundary_frac:.3f}  "
              f"measured SIMD efficiency {emu.simd_efficiency:.3f}  "
              f"divergent branches {emu.divergent_branches}")


if __name__ == "__main__":
    main()
