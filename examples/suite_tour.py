#!/usr/bin/env python
"""Tour the workload corpus by tag and tune every member cheaply.

Walks the tag taxonomy (memory-bound, compute-bound, stencil, reduction,
multi-pass), then tunes each corpus member on one GPU with a single
cheap strategy -- the paper's static module, which needs no measurements
to prune -- over the member's own evaluation space, and prints the
cross-kernel table: what the static choice achieves relative to the
exhaustively-searched optimum.

All measurements route through one shared SweepEngine, so every batch is
sharded across workers and a re-run with a cache directory serves from
disk.

Run: python examples/suite_tour.py [arch] [jobs]
"""

import sys
import time

from repro.api import tune
from repro.arch import get_gpu
from repro.engine import SweepEngine
from repro.kernels import TAGS, list_benchmarks
from repro.suite import corpus_members, corpus_sizes, corpus_space
from repro.util.tables import ascii_table


def main(arch: str = "kepler", jobs: int = 1) -> None:
    gpu = get_gpu(arch)

    print("The tag taxonomy:")
    for tag in sorted(TAGS):
        names = ", ".join(b.name for b in list_benchmarks(tag=tag))
        print(f"  {tag:14s} {names}")
    print()

    rows = []
    t0 = time.time()
    with SweepEngine(jobs=jobs) as engine:
        for bm in corpus_members():
            space = corpus_space(bm)
            size = corpus_sizes(bm)[-1]
            exhaustive = tune(bm.name, arch, size, search="exhaustive",
                              space=space, engine=engine)
            static = tune(bm.name, arch, size, search="static",
                          space=space, engine=engine)
            rows.append([
                bm.name,
                ", ".join(bm.tags),
                size,
                static.evaluations,
                f"{static.space_reduction:.1%}",
                f"{static.best_value / exhaustive.best_value:.3f}",
            ])

    print(ascii_table(
        ["Kernel", "Tags", "N", "Evals", "Space removed", "vs optimum"],
        rows,
        title=f"Static-module tuning across the corpus ({gpu.name}, "
              f"per-member evaluation spaces)",
        align_right=False,
    ))
    print(f"\n({time.time() - t0:.1f}s of host time; members with "
          f"constrained spaces -- dot, matvec_smem -- declare their own "
          f"TC axes)")


if __name__ == "__main__":
    a = sys.argv[1] if len(sys.argv) > 1 else "kepler"
    j = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    main(a, j)
