#!/usr/bin/env python
"""Drive the autotuning service: four concurrent sessions, one store.

Connects to a running server when ``REPRO_SERVICE_URL`` is set (start
one with ``python -m repro.experiments.runner serve``); otherwise it
spins up an in-process server on a temporary measurement store, so the
example is self-contained.

Four clients submit different tuning problems at the same time; the
server's worker fleet shards their measurements over a shared
measurement store, so overlapping points are measured once and every
later request is served warm. With ``REPRO_SERVICE_EXPECT_WARM=1`` the
script asserts that the whole run was served from the store (the CI
service job uses this for its second pass).

Run: python examples/service_client.py
"""

import contextlib
import os
import sys
import tempfile
import threading

from repro.client import connect
from repro.util.tables import ascii_table

#: four distinct workloads: two kernels, two GPUs, two tenants
WORKLOADS = [
    dict(kernel="atax", gpu="kepler", search="static", use_rule=True),
    dict(kernel="bicg", gpu="kepler", search="static", tenant="team-a"),
    dict(kernel="atax", gpu="fermi", search="random", budget=40,
         seed=11),
    dict(kernel="bicg", gpu="fermi", search="static", use_rule=True,
         tenant="team-b"),
]
SIZE = 64


def main() -> int:
    url = os.environ.get("REPRO_SERVICE_URL")
    expect_warm = os.environ.get("REPRO_SERVICE_EXPECT_WARM") == "1"

    with contextlib.ExitStack() as stack:
        if url is None:
            from repro.service.server import ThreadedServer

            cache_dir = stack.enter_context(tempfile.TemporaryDirectory())
            server = stack.enter_context(
                ThreadedServer(cache_dir=cache_dir, drainers=2)
            )
            url = server.url
            print(f"(no REPRO_SERVICE_URL; started a local server at {url})")

        client = connect(url)  # performs the version handshake
        info = client.hello()
        print(f"connected to {info.server} speaking protocol "
              f"{info.protocol}\n")
        measured_before = client.store_stats().measured

        results: dict[int, object] = {}
        errors: list = []

        def drive(i: int) -> None:
            try:
                c = connect(url, handshake=False)
                results[i] = c.tune(size=SIZE, **WORKLOADS[i])
            except Exception as e:
                errors.append((i, e))

        threads = [
            threading.Thread(target=drive, args=(i,))
            for i in range(len(WORKLOADS))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            for i, e in errors:
                print(f"session {i} failed: {e}", file=sys.stderr)
            return 1

        rows = []
        for i, w in enumerate(WORKLOADS):
            r = results[i]
            label = w["search"] + ("+rule" if w.get("use_rule") else "")
            rows.append([
                w["kernel"], w["gpu"], label, r.evaluations,
                f"{r.best_value * 1e6:.1f}", dict(r.best_config),
            ])
        print(ascii_table(
            ["Kernel", "GPU", "Search", "Evals", "Best (us)", "Config"],
            rows,
            title=f"{len(WORKLOADS)} concurrent sessions (N={SIZE})",
            align_right=False,
        ))

        stats = client.store_stats()
        fresh = stats.measured - measured_before
        print(f"\nstore: {stats.entries} entries, {fresh} points measured "
              f"this run, {stats.served_from_cache} served from the store "
              f"over the server's lifetime")
        if expect_warm and fresh:
            print(f"expected a fully warm run but the fleet measured "
                  f"{fresh} fresh points", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
