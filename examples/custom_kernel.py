#!/usr/bin/env python
"""Bring your own kernel: write, validate, analyze and tune a new kernel.

The scenario a downstream user of this library actually has: a kernel that
is *not* one of the paper's benchmarks.  Here: fused SAXPY + squared-norm
partial reduction, ``y = a*x + y; norm_parts[...] += y^2`` over one grid-
stride loop.

Steps:
1. write the kernel in the loop-nest DSL;
2. emulate it against a NumPy reference (SIMT-exact, catches real bugs);
3. statically analyze it (occupancy, intensity, T*);
4. autotune it with the static search module.

Run: python examples/custom_kernel.py
"""

import numpy as np

from repro.arch import get_gpu
# a custom, unregistered benchmark can't be addressed by name through
# repro.api.tune, so it constructs the tuner directly
from repro.autotune.tuner import Autotuner
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_module
from repro.core import StaticAnalyzer
from repro.kernels.base import Benchmark
from repro.sim.emulator import run_benchmark_emulated
from repro.util.rng import rng_for

N_ = dsl.sparam("N")
a_ = dsl.sparam("a", "f32")
x_ = dsl.farray("x")
y_ = dsl.farray("y")
norm_ = dsl.farray("norm_parts")
n = dsl.ivar("n")
v = dsl.var("v", "f32")

SAXPY_NORM = dsl.kernel(
    "saxpy_norm",
    params=[N_, a_, x_, y_, norm_],
    body=[
        dsl.pfor(n, N_, [
            dsl.assign("v", a_ * x_[n] + y_[n]),
            y_.store(n, v),
            norm_.atomic_add(n % 64, v * v),
        ]),
    ],
)


def make_inputs(size: int, rng: np.random.Generator) -> dict:
    return {
        "N": size,
        "a": np.float32(1.5),
        "x": rng.standard_normal(size).astype(np.float32),
        "y": rng.standard_normal(size).astype(np.float32),
        "norm_parts": np.zeros(64, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    xv = inputs["x"].astype(np.float64)
    yv = inputs["y"].astype(np.float64)
    out = 1.5 * xv + yv
    parts = np.zeros(64)
    np.add.at(parts, np.arange(len(out)) % 64, out**2)
    return {
        "y": out.astype(np.float32),
        "norm_parts": parts.astype(np.float32),
    }


BENCH = Benchmark(
    name="saxpy_norm",
    description="fused saxpy + squared-norm partials",
    specs=(SAXPY_NORM,),
    make_inputs=make_inputs,
    reference=reference,
    sizes=(1024, 4096, 16384, 65536, 262144),
    param_env=lambda size: {"N": size},
    output_names=("y", "norm_parts"),
)


def main() -> None:
    gpu = get_gpu("maxwell")

    # ---- validate by SIMT emulation against the NumPy reference ---------
    inputs = make_inputs(512, rng_for("example", "saxpy"))
    module = compile_module("saxpy_norm", [SAXPY_NORM],
                            CompileOptions(gpu=gpu))
    outs, emu = run_benchmark_emulated(module, inputs, tc=64, bc=4)
    ref = reference(inputs)
    for name in BENCH.output_names:
        np.testing.assert_allclose(outs[name], ref[name],
                                   rtol=2e-3, atol=2e-4)
    print(f"emulation matches the NumPy reference "
          f"(SIMD efficiency {emu.simd_efficiency:.3f})")
    print(f"disassembly is {len(module.kernels[0].ir)} instructions; "
          f"{module.regs_per_thread} registers/thread\n")

    # ---- static analysis -------------------------------------------------
    report = StaticAnalyzer(gpu).analyze(
        [SAXPY_NORM], BENCH.param_env(65536), name="saxpy_norm"
    )
    print(report.summary())

    # ---- autotune with the model-pruned search ---------------------------
    tuner = Autotuner(BENCH, gpu)
    out = tuner.tune(size=65536, search="static", use_rule=True)
    print(
        f"\ntuned: best {out.best_seconds * 1e6:.1f} us at "
        f"{out.best_config} using {out.search.evaluations} measurements "
        f"({out.search.space_reduction:.1%} space reduction)"
    )


if __name__ == "__main__":
    main()
