#!/usr/bin/env python
"""Quickstart: statically analyze and autotune a CUDA-style kernel.

Walks the paper's whole pipeline in one script:

1. take a benchmark kernel (atax: y = A^T(Ax));
2. compile it for a target GPU (no execution anywhere);
3. run the static analyzer: occupancy, instruction mix, intensity,
   suggested thread counts T* and the rule-based pruning;
4. hand the suggestion to the autotuner's *static search module* and
   compare it against full exhaustive autotuning -- through
   ``repro.api``, the same entry point the tuning service exposes over
   the wire.

Run: python examples/quickstart.py
"""

from repro.api import tune
from repro.arch import get_gpu
from repro.core import StaticAnalyzer
from repro.kernels import get_benchmark

SIZE = 256


def main() -> None:
    gpu = get_gpu("kepler")
    benchmark = get_benchmark("atax")

    # ---- 1+2+3: purely static analysis (zero kernel runs) --------------
    analyzer = StaticAnalyzer(gpu)
    report = analyzer.analyze(
        list(benchmark.specs), benchmark.param_env(SIZE), name="atax"
    )
    print(report.summary())
    print()
    print("Compile log (the ptxas -v equivalent):")
    print(report.compile_log)
    print()

    # ---- 4: autotune, exhaustive vs static-model-pruned -----------------
    exhaustive = tune("atax", "kepler", SIZE, search="exhaustive")
    print(
        f"exhaustive : best {exhaustive.best_value * 1e6:8.1f} us  "
        f"config {exhaustive.best_config}  "
        f"({exhaustive.evaluations} measurements)"
    )

    static = tune("atax", "kepler", SIZE, search="static")
    print(
        f"static     : best {static.best_value * 1e6:8.1f} us  "
        f"config {static.best_config}  "
        f"({static.evaluations} measurements, "
        f"{static.space_reduction:.1%} of the space removed)"
    )

    rb = tune("atax", "kepler", SIZE, search="static", use_rule=True)
    print(
        f"static+rule: best {rb.best_value * 1e6:8.1f} us  "
        f"config {rb.best_config}  "
        f"({rb.evaluations} measurements, "
        f"{rb.space_reduction:.1%} of the space removed)"
    )

    loss = rb.best_value / exhaustive.best_value - 1.0
    print(
        f"\nThe model-pruned search used "
        f"{rb.evaluations / exhaustive.evaluations:.1%} of the "
        f"measurements and found a variant within {loss:+.1%} of the "
        f"exhaustive optimum."
    )


if __name__ == "__main__":
    main()
