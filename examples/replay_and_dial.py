#!/usr/bin/env python
"""Knowledge-discovery loop: record, replay, and dial (paper Sec. VII).

1. Record a static-search tuning session (every decision and variant).
2. Replay: empirically measure the region the static model pruned away
   and compute the pruning regret -- did T* contain the optimum?
3. Dial: sweep the static <-> empirical spectrum and watch cost vs
   quality trade off.

Run: python examples/replay_and_dial.py
"""

from repro.arch import get_gpu
from repro.autotune.replay import (
    Dial,
    SessionRecorder,
    replay_with_empirical_testing,
    tune_with_dial,
)
from repro.autotune.space import Parameter, ParameterSpace
from repro.kernels import get_benchmark
from repro.util.tables import ascii_table


def main() -> None:
    gpu = get_gpu("kepler")
    benchmark = get_benchmark("bicg")
    space = ParameterSpace([
        Parameter("TC", tuple(range(32, 1025, 32))),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])
    size = 256

    # ---- record ---------------------------------------------------------
    record = SessionRecorder(benchmark, gpu, space=space).run(
        size=size, use_rule=True
    )
    print(f"recorded session: {len(record.variants)} variants measured, "
          f"best {record.best_seconds * 1e6:.1f} us at {record.best_config}")
    print(f"  static decisions: T*={record.suggested_threads}, "
          f"rule -> {record.rule_threads} "
          f"(intensity {record.intensity:.2f})")

    # ---- replay with empirical testing -----------------------------------
    report = replay_with_empirical_testing(record, benchmark, gpu)
    print("\n" + report.summary())

    # ---- dial in the degree of empirical testing -------------------------
    rows = []
    for frac in (0.0, 0.25, 0.5, 1.0):
        out = tune_with_dial(benchmark, gpu, size, Dial(frac), space=space)
        rows.append([
            f"{frac:.2f}",
            out.search.evaluations,
            f"{out.best_seconds * 1e6:.1f}",
            f"{out.best_seconds / report.global_best:.3f}",
        ])
    print("\n" + ascii_table(
        ["Empirical fraction", "Measurements", "Best (us)", "vs global opt"],
        rows,
        title="Dialing empirical testing back in (0.0 = trust the model)",
        align_right=False,
    ))


if __name__ == "__main__":
    main()
