"""Validate and inspect exported observability artifacts.

``python -m repro.obs.cli validate --trace t.json --metrics m.json``
exits nonzero listing every structural problem; ``--expect-spans``
additionally requires named span categories to appear (CI uses it to
assert a chaos sweep's trace really shows shards, attempts, and
retries), and ``--expect-fault`` requires at least one chaos instant.
``python -m repro.obs.cli tree t.json`` prints the ASCII summary tree
of a trace file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.schema import validate_metrics, validate_trace
from repro.obs.trace import ascii_tree, spans_from_chrome


def _load(path: str):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load {path}: {e}", file=sys.stderr)
        raise SystemExit(2) from e


def _cmd_validate(args) -> int:
    problems: list[str] = []
    trace_doc = None
    if args.trace:
        trace_doc = _load(args.trace)
        problems += [f"{args.trace}: {p}" for p in validate_trace(trace_doc)]
    if args.metrics:
        doc = _load(args.metrics)
        problems += [f"{args.metrics}: {p}" for p in validate_metrics(doc)]
    if args.expect_spans and trace_doc is not None:
        have = {
            ev.get("cat")
            for ev in trace_doc.get("traceEvents", ())
            if isinstance(ev, dict) and ev.get("ph") == "X"
        }
        for name in args.expect_spans.split(","):
            if name and name not in have:
                problems.append(
                    f"{args.trace}: expected span category {name!r},"
                    f" found {sorted(have)}"
                )
    if args.expect_fault and trace_doc is not None:
        # chaos.* instants are recorded at the injection site (lost when
        # the fault kills the worker that buffered them); fault.* are
        # the supervisor's own records and survive every fault kind
        faults = [
            ev for ev in trace_doc.get("traceEvents", ())
            if isinstance(ev, dict) and ev.get("ph") == "i"
            and str(ev.get("name", "")).startswith(("chaos.", "fault."))
        ]
        if not faults:
            problems.append(
                f"{args.trace}: expected at least one chaos.*/fault.*"
                " instant"
            )
    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        checked = [p for p in (args.trace, args.metrics) if p]
        print(f"ok: {', '.join(checked)} valid")
    return 1 if problems else 0


def _cmd_tree(args) -> int:
    spans, instants = spans_from_chrome(_load(args.trace))
    print(ascii_tree(spans, instants))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.cli",
        description="validate / inspect exported trace + metrics artifacts",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    v = sub.add_parser("validate", help="schema-check exported artifacts")
    v.add_argument("--trace", help="Chrome trace-event JSON path")
    v.add_argument("--metrics", help="metrics snapshot JSON path")
    v.add_argument(
        "--expect-spans",
        help="comma-separated span categories that must appear in the trace",
    )
    v.add_argument(
        "--expect-fault", action="store_true",
        help="require at least one chaos.* instant in the trace",
    )
    v.set_defaults(func=_cmd_validate)

    t = sub.add_parser("tree", help="print the ASCII span summary tree")
    t.add_argument("trace", help="Chrome trace-event JSON path")
    t.set_defaults(func=_cmd_tree)

    args = parser.parse_args(argv)
    if args.command == "validate" and not (args.trace or args.metrics):
        parser.error("validate needs --trace and/or --metrics")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
