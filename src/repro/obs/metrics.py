"""Labeled counters, gauges, and histograms with a JSON snapshot.

One registry is the single source of truth for the run-level numbers
that used to live scattered across subsystems: the engine's lifetime
``total_measured``/``total_hits``, per-sweep :class:`SweepStats`, the
cache store's hit/miss/corrupt counters, the emulator's
:class:`LaunchProfile` throughput, and the search strategies' evaluation
counts.  Each series is keyed by ``(kind, name, sorted label items)`` so
``engine.measured{kernel=atax}`` and ``engine.measured{kernel=bicg}``
accumulate independently while ``snapshot()`` still reads as one flat
list.

Counters only go up; gauges hold the last value set; histograms keep
count/sum/min/max plus fixed log-scale bucket counts (enough for
latency-style distributions without storing samples).  All three are
lock-guarded -- cheap, and the emulator records from whatever thread
runs it.
"""

from __future__ import annotations

import json
import threading

METRICS_SCHEMA = "repro.obs.metrics/1"

_BUCKETS = tuple(10.0 ** e for e in range(-7, 4))
"""Histogram bucket upper bounds: 100ns .. 1000s, one per decade."""


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """The process-wide metric store (one per enabled obs session)."""

    def __init__(self):
        self._counters: dict = {}
        self._gauges: dict = {}
        self._hists: dict = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def add(self, name: str, value: float = 1, **labels) -> None:
        """Increment counter ``name`` (negative increments are a bug in
        the caller; they are applied as-is so the bug is visible)."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        with self._lock:
            self._gauges[_series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into histogram ``name``."""
        key = _series_key(name, labels)
        with self._lock:
            h = self._hists.get(key)
            if h is None:
                h = self._hists[key] = {
                    "count": 0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"),
                    "buckets": [0] * (len(_BUCKETS) + 1),
                }
            h["count"] += 1
            h["sum"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)
            for i, bound in enumerate(_BUCKETS):
                if value <= bound:
                    h["buckets"][i] += 1
                    break
            else:
                h["buckets"][-1] += 1

    # -- reading -------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of a counter or gauge series (0 if unseen) --
        for derived gauges like issues-per-second and for tests."""
        key = _series_key(name, labels)
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0)

    def absorb_cache_stats(self, store) -> None:
        """Reset-and-set gauges from a live :class:`CacheStore`'s own
        counters (the store predates the registry and keeps counting on
        its own; gauges mirror it instead of double-counting)."""
        self.set_gauge("cache.hits", store.hits)
        self.set_gauge("cache.misses", store.misses)
        self.set_gauge("cache.quarantined_payloads", store.corrupt)

    def snapshot(self) -> dict:
        """The whole registry as a JSON-able document."""
        with self._lock:
            def rows(table, render):
                return [
                    {
                        "name": name,
                        "labels": dict(labels),
                        **render(v),
                    }
                    for (name, labels), v in sorted(table.items())
                ]
            return {
                "schema": METRICS_SCHEMA,
                "counters": rows(self._counters, lambda v: {"value": v}),
                "gauges": rows(self._gauges, lambda v: {"value": v}),
                "histograms": rows(self._hists, lambda h: {
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                    "bucket_bounds": list(_BUCKETS),
                    "buckets": list(h["buckets"]),
                }),
            }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=1, sort_keys=True)
