"""Hierarchical tracing with deterministic span identities.

A *span* is one timed unit of work -- a sweep, a shard, one attempt of a
shard, one measurement, a tuning run, an ask/tell round, an emulated
launch.  Spans form a tree: every span carries its parent's ID, and its
own ID is a pure function of ``(parent ID, name, key)`` through
:func:`repro.util.hashing.stable_hash`.  That purity is the load-bearing
design decision: a worker process can compute the exact same measurement
span ID the coordinator would, without any shared counter, and two runs
of the same sweep -- serial or sharded over any number of workers --
produce the *identical* span tree (IDs, parentage, counts), differing
only in timestamps.  Tests assert exactly that.

The :class:`Tracer` is the collector.  In the coordinating process it
also maintains an ambient parent stack, so ``with span(...)`` nests
naturally; worker processes run a short-lived capture tracer per shard
attempt (:func:`begin_capture`/:func:`end_capture`) whose buffer travels
back over the worker's result pipe and is absorbed into the main
collector.  Spans whose natural siblings share a key (two sweeps with
the same label) are disambiguated by a deterministic per-parent
occurrence counter -- deterministic because top-level spans are opened
in program order by the single-threaded driver.

*Instants* are zero-duration annotations (chaos injections, emulator
speculation retractions) attached to the ambient span.  They are
best-effort: a chaos-killed worker takes its buffered instants down with
it, which is fine -- the supervisor's attempt span records the fate.
Determinism guarantees therefore cover spans only, never instants.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.util.hashing import stable_hash

ID_BITS = 16
"""Hex digits of a span ID (64 bits of the stable hash)."""

ROOT = ""
"""The parent ID of a root span."""


def child_id(parent_id: str, name: str, key, occurrence: int = 0) -> str:
    """The deterministic span ID of ``(name, key)`` under ``parent_id``.

    A pure function -- any process that knows the parent ID derives the
    same child ID.  ``key`` must be JSON-able (ints, strings, tuples of
    those) and unique among same-name siblings; when it is not,
    ``occurrence`` disambiguates repeats in program order.
    """
    return stable_hash(["span", parent_id, name, key, occurrence])[:ID_BITS]


@dataclass
class Span:
    """One completed unit of work in the trace tree."""

    span_id: str
    parent_id: str
    name: str
    key: object
    start_s: float
    """Wall-clock start (epoch seconds; Chrome trace wants microseconds)."""
    dur_s: float
    pid: int
    args: dict = field(default_factory=dict)

    def annotate(self, **kw) -> None:
        self.args.update(kw)


@dataclass
class Instant:
    """A zero-duration annotation attached to a span."""

    parent_id: str
    name: str
    t_s: float
    pid: int
    args: dict = field(default_factory=dict)


class _NullSpan:
    """What ``span()`` yields when tracing is disabled."""

    __slots__ = ()

    def annotate(self, **kw) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span collector with an ambient parent stack."""

    def __init__(self):
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._tls = threading.local()
        self._occ: dict = {}
        self._lock = threading.Lock()

    @property
    def _stack(self) -> list[str]:
        """The ambient parent stack, *per thread*: the service's fleet
        drains sessions on worker threads, and a shared stack would
        interleave their push/pops and corrupt parentage.  Each thread
        starts at ROOT and parents explicitly via :meth:`attach`."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- ambient context -----------------------------------------------------

    @property
    def current_parent(self) -> str:
        return self._stack[-1] if self._stack else ROOT

    @contextmanager
    def attach(self, parent_id: str):
        """Parent subsequent spans/instants under a remote span ID (the
        supervisor's attempt span, from inside a worker or the inline
        execution path) without creating a span here."""
        self._stack.append(parent_id)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, key=None, args: dict | None = None):
        """Open a span under the ambient parent; record it on exit.

        The ID is allocated at *open* so children can parent to it; a
        per-(parent, name, key) occurrence counter keeps repeated
        same-key siblings distinct (deterministically, since the driver
        opens spans in program order).
        """
        parent = self.current_parent
        with self._lock:
            occ_key = (parent, name, stable_hash(key) if key is not None
                       else None)
            occ = self._occ.get(occ_key, 0)
            self._occ[occ_key] = occ + 1
        sid = child_id(parent, name, key, occ)
        sp = Span(
            span_id=sid, parent_id=parent, name=name, key=key,
            start_s=time.time(), dur_s=0.0, pid=os.getpid(),
            args=dict(args) if args else {},
        )
        self._stack.append(sid)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.dur_s = time.perf_counter() - t0
            with self._lock:
                self.spans.append(sp)

    # -- explicit records (the supervisor path) ------------------------------

    def record_span(self, span_id: str, parent_id: str, name: str, key,
                    start_s: float, dur_s: float,
                    args: dict | None = None) -> None:
        """Record a span whose identity and timing the caller computed
        (shard/attempt spans, emitted by the pool supervisor)."""
        with self._lock:
            self.spans.append(Span(
                span_id=span_id, parent_id=parent_id, name=name, key=key,
                start_s=start_s, dur_s=dur_s, pid=os.getpid(),
                args=dict(args) if args else {},
            ))

    def instant(self, name: str, args: dict | None = None,
                parent_id: str | None = None) -> None:
        with self._lock:
            self.instants.append(Instant(
                parent_id=(parent_id if parent_id is not None
                           else self.current_parent),
                name=name, t_s=time.time(), pid=os.getpid(),
                args=dict(args) if args else {},
            ))

    # -- buffer shipping -----------------------------------------------------

    def drain(self) -> tuple[list, list]:
        """Return and clear the collected records (worker shipping)."""
        with self._lock:
            out = (self.spans, self.instants)
            self.spans, self.instants = [], []
            return out

    def absorb(self, buffer) -> None:
        """Merge a ``(spans, instants)`` buffer shipped from a worker."""
        if not buffer:
            return
        spans, instants = buffer
        with self._lock:
            self.spans.extend(spans)
            self.instants.extend(instants)


# -- export -----------------------------------------------------------------

TRACE_SCHEMA = "repro.obs.trace/1"


def _span_tid(sp: Span) -> int:
    """The Chrome track a span renders on.

    Complete events on one (pid, tid) track must nest strictly by time,
    but concurrent shards overlap; giving each shard subtree its own
    track keeps every track well-nested *and* reads as "one row per
    shard" in Perfetto.  Top-level driver spans (sweep/tune/round) are
    opened by the single-threaded coordinator and nest properly on
    track 0.
    """
    if sp.name == "shard":
        return int(sp.span_id[:8], 16)
    if sp.name == "attempt":
        return int(sp.parent_id[:8], 16)
    return 0


def chrome_trace(spans, instants) -> dict:
    """The collected records as Chrome trace-event JSON (Perfetto-viewable).

    Span identity (``span_id``/``parent_id``) rides in ``args`` so the
    tree is reconstructible from the exported file alone.
    """
    events = []
    for sp in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
        events.append({
            "ph": "X",
            "name": sp.name if sp.key is None else f"{sp.name} {sp.key}",
            "cat": sp.name,
            "ts": sp.start_s * 1e6,
            "dur": max(sp.dur_s, 1e-7) * 1e6,
            "pid": sp.pid,
            "tid": _span_tid(sp),
            "args": {
                "span_id": sp.span_id,
                "parent_id": sp.parent_id,
                **sp.args,
            },
        })
    for ev in sorted(instants, key=lambda i: i.t_s):
        events.append({
            "ph": "i",
            "name": ev.name,
            "cat": ev.name,
            "ts": ev.t_s * 1e6,
            "pid": ev.pid,
            "tid": 0,
            "s": "p",
            "args": {"parent_id": ev.parent_id, **ev.args},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"schema": TRACE_SCHEMA},
    }


def spans_from_chrome(obj) -> tuple[list, list]:
    """Rebuild ``(spans, instants)`` from an exported Chrome trace (the
    ASCII renderer and CLI work from the file, not live state)."""
    spans, instants = [], []
    for ev in obj.get("traceEvents", ()):
        args = dict(ev.get("args", {}))
        if ev.get("ph") == "X":
            spans.append(Span(
                span_id=args.pop("span_id", ""),
                parent_id=args.pop("parent_id", ""),
                name=ev.get("cat", ev.get("name", "")),
                key=None,
                start_s=ev.get("ts", 0.0) / 1e6,
                dur_s=ev.get("dur", 0.0) / 1e6,
                pid=ev.get("pid", 0),
                args=args,
            ))
        elif ev.get("ph") == "i":
            instants.append(Instant(
                parent_id=args.pop("parent_id", ""),
                name=ev.get("name", ""),
                t_s=ev.get("ts", 0.0) / 1e6,
                pid=ev.get("pid", 0),
                args=args,
            ))
    return spans, instants


def ascii_tree(spans, instants=()) -> str:
    """A human summary of the span tree, aggregated by name at each depth.

    One line per ``(path of span names)``: how many spans, their total
    wall time, and any instant annotations attached below them::

        sweep (2)  4.21s
          shard (8)  4.05s
            attempt (11)  4.02s
              measure (1536)  3.90s
              ! chaos.raise (3)
    """
    by_parent: dict = {}
    ids = {sp.span_id for sp in spans}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in ids else ROOT
        by_parent.setdefault(parent, []).append(sp)
    inst_by_parent: dict = {}
    for ev in instants:
        inst_by_parent.setdefault(ev.parent_id, []).append(ev)

    lines: list[str] = []

    def walk(parents: list[str], depth: int) -> None:
        children: list[Span] = []
        for p in parents:
            children.extend(by_parent.get(p, ()))
        groups: dict = {}
        for sp in children:
            groups.setdefault(sp.name, []).append(sp)
        for name in sorted(groups, key=lambda n: min(
                s.start_s for s in groups[n])):
            members = groups[name]
            total = sum(s.dur_s for s in members)
            lines.append(
                f"{'  ' * depth}{name} ({len(members)})  {total:.3f}s"
            )
            notes: dict = {}
            for sp in members:
                for ev in inst_by_parent.get(sp.span_id, ()):
                    notes[ev.name] = notes.get(ev.name, 0) + 1
            for note, n in sorted(notes.items()):
                lines.append(f"{'  ' * (depth + 1)}! {note} ({n})")
            walk([sp.span_id for sp in members], depth + 1)

    walk([ROOT], 0)
    return "\n".join(lines) if lines else "(no spans recorded)"
