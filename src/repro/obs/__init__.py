"""Unified tracing + metrics for the sweep engine, search, and emulator.

This module is the *facade* the rest of the codebase talks to; the whole
subsystem is off by default and every call degrades to (near) nothing
until :func:`enable` installs a collector.  Call sites therefore
instrument unconditionally::

    with obs.span("sweep", key=label, args={"points": n}) as sp:
        ...
        sp.annotate(hits=stats.hits)
    obs.add("engine.measured", stats.measured, kernel=name)

and pay only a module-attribute ``None`` check when observability is
disabled -- the warm-sweep overhead budget (<=5%, asserted in
``benchmarks/test_bench_obs.py``) is enforced against exactly this
path.

The span taxonomy, worker-buffer shipping protocol, and determinism
contract live in :mod:`repro.obs.trace`; the metric catalog in
:mod:`repro.obs.metrics`; export validation in :mod:`repro.obs.schema`;
``python -m repro.obs.cli`` validates and pretty-prints exported
artifacts (CI's ``obs`` job is its main caller).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    ROOT,
    Tracer,
    ascii_tree,
    child_id,
    chrome_trace,
)

__all__ = [
    "enable", "disable", "enabled", "tracer", "metrics",
    "span", "attach", "instant", "record_span", "current_parent_id",
    "child_id", "add", "set_gauge", "observe",
    "begin_capture", "end_capture",
    "absorb", "write_trace", "write_metrics", "render_tree",
]

tracer: Tracer | None = None
metrics: MetricsRegistry | None = None


def enable(trace: bool = True, metrics_: bool = True) -> None:
    """Install fresh collectors (idempotent per component: enabling
    again replaces them, which is what tests want)."""
    global tracer, metrics
    if trace:
        tracer = Tracer()
    if metrics_:
        metrics = MetricsRegistry()


def disable() -> None:
    global tracer, metrics
    tracer = None
    metrics = None


def enabled() -> bool:
    return tracer is not None or metrics is not None


# -- tracing ----------------------------------------------------------------

@contextmanager
def _null_cm():
    yield NULL_SPAN


def span(name: str, key=None, args: dict | None = None):
    """Context manager timing one unit of work (no-op when disabled)."""
    t = tracer
    if t is None:
        return _null_cm()
    return t.span(name, key=key, args=args)


def attach(parent_id: str):
    """Context manager parenting subsequent spans under a remote ID."""
    t = tracer
    if t is None:
        return _null_cm()
    return t.attach(parent_id)


def instant(name: str, args: dict | None = None,
            parent_id: str | None = None) -> None:
    t = tracer
    if t is not None:
        t.instant(name, args=args, parent_id=parent_id)


def record_span(span_id: str, parent_id: str, name: str, key,
                start_s: float, dur_s: float,
                args: dict | None = None) -> None:
    t = tracer
    if t is not None:
        t.record_span(span_id, parent_id, name, key, start_s, dur_s,
                      args=args)


def current_parent_id() -> str:
    t = tracer
    return t.current_parent if t is not None else ROOT


def absorb(buffer) -> None:
    """Merge a worker-shipped ``(spans, instants)`` buffer."""
    t = tracer
    if t is not None:
        t.absorb(buffer)


# -- worker-side capture ----------------------------------------------------

def begin_capture(parent_id: str):
    """Start capturing spans in this process under a remote parent
    (worker processes, once per shard attempt).  Returns an opaque
    capture handle for :func:`end_capture`; installs a fresh tracer so
    the worker pays collection cost only while a traced attempt runs."""
    global tracer
    prev = tracer
    tracer = Tracer()
    tracer._stack.append(parent_id)
    return prev


def end_capture(handle) -> tuple[list, list] | None:
    """Stop a :func:`begin_capture` session; return the shipped buffer
    (``None`` when nothing was captured, to keep untraced replies
    small)."""
    global tracer
    t, tracer = tracer, handle
    if t is None:
        return None
    spans, instants = t.drain()
    return (spans, instants) if (spans or instants) else None


# -- metrics ----------------------------------------------------------------

def add(name: str, value: float = 1, **labels) -> None:
    m = metrics
    if m is not None:
        m.add(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    m = metrics
    if m is not None:
        m.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    m = metrics
    if m is not None:
        m.observe(name, value, **labels)


# -- export -----------------------------------------------------------------

def write_trace(path: str | Path) -> dict:
    """Export the collected trace as Chrome trace-event JSON; returns
    the document (handy for tests)."""
    t = tracer
    doc = chrome_trace(t.spans, t.instants) if t is not None else \
        chrome_trace([], [])
    Path(path).write_text(json.dumps(doc))
    return doc


def write_metrics(path: str | Path) -> dict:
    m = metrics
    doc = m.snapshot() if m is not None else MetricsRegistry().snapshot()
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))
    return doc


def render_tree() -> str:
    """The collected spans as the human ASCII summary."""
    t = tracer
    if t is None:
        return "(tracing disabled)"
    return ascii_tree(t.spans, t.instants)
