"""Structural validation of exported trace and metrics documents.

Hand-rolled (the container has no ``jsonschema``), but strict about the
invariants downstream consumers rely on: Chrome-trace event shape so
Perfetto loads the file, span-ID linkage so the tree reconstructs, and
metric-series shape so dashboards can ingest the snapshot blind.  Each
validator returns a list of problem strings -- empty means valid --
so the CLI and tests can report every defect at once instead of
stopping at the first.
"""

from __future__ import annotations

from repro.obs.metrics import METRICS_SCHEMA
from repro.obs.trace import ID_BITS, TRACE_SCHEMA

_HEX = set("0123456789abcdef")


def _is_span_id(v) -> bool:
    return isinstance(v, str) and len(v) == ID_BITS and set(v) <= _HEX


def validate_trace(doc) -> list[str]:
    """Problems in a Chrome trace-event document (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    if doc.get("metadata", {}).get("schema") != TRACE_SCHEMA:
        problems.append(
            f"metadata.schema != {TRACE_SCHEMA!r}:"
            f" {doc.get('metadata', {}).get('schema')!r}"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents is not a list"]

    span_ids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            problems.append(f"{where}: ph {ph!r} not in ('X', 'i')")
            continue
        for field, typ in (("name", str), ("ts", (int, float)),
                           ("pid", int), ("tid", int)):
            if not isinstance(ev.get(field), typ):
                problems.append(f"{where}: bad {field}: {ev.get(field)!r}")
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: args missing")
            continue
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                problems.append(f"{where}: bad dur: {ev.get('dur')!r}")
            if not _is_span_id(args.get("span_id")):
                problems.append(
                    f"{where}: bad args.span_id: {args.get('span_id')!r}"
                )
            else:
                span_ids.add(args["span_id"])
        parent = args.get("parent_id")
        if parent is None or not (parent == "" or _is_span_id(parent)):
            problems.append(f"{where}: bad args.parent_id: {parent!r}")

    # linkage: every non-root parent_id must resolve to a span in the
    # file, except parents lost with a killed worker's buffer -- spans
    # never dangle (the supervisor records attempt spans itself), but a
    # surviving instant may reference nothing.  Only "X" linkage is
    # therefore structural.
    for i, ev in enumerate(events):
        if not (isinstance(ev, dict) and ev.get("ph") == "X"):
            continue
        parent = ev.get("args", {}).get("parent_id")
        if parent and parent not in span_ids:
            problems.append(
                f"traceEvents[{i}]: span parent {parent!r} not in file"
            )
    return problems


def validate_metrics(doc) -> list[str]:
    """Problems in a metrics snapshot document (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["metrics document is not a JSON object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema != {METRICS_SCHEMA!r}: {doc.get('schema')!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        rows = doc.get(section)
        if not isinstance(rows, list):
            problems.append(f"{section} is not a list")
            continue
        for i, row in enumerate(rows):
            where = f"{section}[{i}]"
            if not isinstance(row, dict):
                problems.append(f"{where}: not an object")
                continue
            if not isinstance(row.get("name"), str) or not row.get("name"):
                problems.append(f"{where}: bad name: {row.get('name')!r}")
            labels = row.get("labels")
            if not (isinstance(labels, dict) and all(
                    isinstance(k, str) for k in labels)):
                problems.append(f"{where}: bad labels: {labels!r}")
            if section == "histograms":
                for field in ("count", "sum", "min", "max"):
                    if not isinstance(row.get(field), (int, float)):
                        problems.append(
                            f"{where}: bad {field}: {row.get(field)!r}"
                        )
                bounds = row.get("bucket_bounds")
                buckets = row.get("buckets")
                if not (isinstance(bounds, list) and isinstance(buckets, list)
                        and len(buckets) == len(bounds) + 1):
                    problems.append(f"{where}: bucket shape mismatch")
                elif isinstance(row.get("count"), int) and \
                        sum(buckets) != row["count"]:
                    problems.append(
                        f"{where}: bucket counts sum {sum(buckets)}"
                        f" != count {row['count']}"
                    )
            elif not isinstance(row.get("value"), (int, float)):
                problems.append(f"{where}: bad value: {row.get('value')!r}")
    return problems
