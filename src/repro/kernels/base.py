"""Benchmark registry and the common benchmark interface.

The registry is the workload corpus the whole stack is exercised
against.  Every benchmark carries a set of *tags* from the fixed
taxonomy in :data:`TAGS` (``memory-bound``, ``compute-bound``,
``stencil``, ``reduction``, ``multi-pass``) so callers -- the ``suite``
experiment, examples, tests -- can select coherent sub-corpora with
:func:`list_benchmarks`.  Benchmarks whose structure constrains the
tuning space (shared-memory tiles, block-level reductions) declare their
own default :class:`~repro.autotune.space.ParameterSpace` and an
emulation-safe launch configuration instead of inheriting the paper's
Table III defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


TAGS = frozenset({
    "memory-bound",
    "compute-bound",
    "stencil",
    "reduction",
    "multi-pass",
    "irregular",
})
"""The corpus tag taxonomy.

``memory-bound``
    Performance limited by global-memory streams (low computational
    intensity: atax, BiCG, the matvec family, mvt, gesummv, gemver).
``compute-bound``
    Arithmetic-dense kernels (high intensity: ex14FJ, gemm).
``stencil``
    Neighbourhood reads with halo/boundary handling (ex14FJ, jacobi2d).
``reduction``
    Cross-thread combining via shared memory and/or atomics (dot,
    histogram).
``multi-pass``
    Several dependent kernel launches per run (atax, BiCG, mvt, gemver).
``irregular``
    Workloads beyond the affine Table IV shape: data-dependent trip
    counts, guards, or store/atomic targets loaded from the inputs
    (spmv_csr, histogram, compact), plus the round-by-round divergent
    cooperative prefix scan -- where static counting degrades and the
    emulator is the ground truth.
"""

DEFAULT_EMU_LAUNCH = (32, 4)
"""Launch configuration used for emulator validation when a benchmark
does not constrain its launch (``tc=32, bc=4`` covers every unconstrained
kernel via the grid-stride mapping)."""


@dataclass(frozen=True)
class Benchmark:
    """One tunable benchmark: kernel specs + reference semantics.

    Attributes
    ----------
    name:
        Registry key (paper name, lowercased).
    specs:
        Kernel specs launched in sequence (atax and BiCG are two passes).
    make_inputs:
        ``f(N, rng) -> dict`` mapping parameter names to NumPy arrays and
        scalars, including zero-initialized outputs.
    reference:
        ``f(inputs) -> dict`` of expected output arrays, NumPy semantics.
    sizes:
        The paper's five input sizes for this benchmark.
    param_env:
        ``f(N) -> dict`` of scalar parameter bindings used by trip-count
        evaluation (e.g. ``{"N": N, "NN": N*N}``).
    output_names:
        Parameter names holding results (checked against the reference).
    tags:
        Corpus tags, a subset of :data:`TAGS`.
    tuning_space:
        Optional zero-argument factory for the benchmark's own default
        :class:`~repro.autotune.space.ParameterSpace` (declared when the
        kernel's structure constrains TC/UIF, e.g. block-level
        reductions needing TC a tile multiple).  ``None`` inherits the
        paper's Table III space.
    emulation_launch:
        Optional ``f(N) -> (tc, bc)`` giving a launch configuration that
        satisfies the kernel's cooperative constraints under emulation
        (barrier trip counts, tile alignment).  ``None`` uses
        :data:`DEFAULT_EMU_LAUNCH`.
    expected_diagnostics:
        Static-analysis findings this benchmark is *expected* to carry
        (``repro.analyze`` check ids, optionally pinned to a kernel as
        ``(kernel_name, check)``).  Every registered benchmark must lint
        clean modulo this list -- an empty tuple, the norm, means "no
        diagnostics tolerated"; ``runner lint`` and the registry test
        fail on anything unexpected.
    """

    name: str
    description: str
    specs: tuple
    make_inputs: Callable
    reference: Callable
    sizes: tuple
    param_env: Callable
    output_names: tuple
    tags: tuple = ()
    tuning_space: Callable | None = None
    emulation_launch: Callable | None = None
    expected_diagnostics: tuple = ()

    def __post_init__(self):
        unknown = set(self.tags) - TAGS
        if unknown:
            raise ValueError(
                f"benchmark {self.name!r} has unknown tags {sorted(unknown)}; "
                f"taxonomy: {sorted(TAGS)}"
            )
        from repro.analyze.checkers import CHECKS

        for entry in self.expected_diagnostics:
            check = entry[1] if isinstance(entry, tuple) else entry
            if check not in CHECKS:
                raise ValueError(
                    f"benchmark {self.name!r} expects unknown diagnostic "
                    f"{check!r}; checks: {CHECKS}"
                )

    def work_extent(self, n: int) -> int:
        """Total parallel-loop iterations at size ``n`` (max over kernels)."""
        from repro.codegen.ast_nodes import evaluate_expr, For

        env = self.param_env(n)
        worst = 0
        for spec in self.specs:
            for s in spec.body:
                if isinstance(s, For) and s.parallel:
                    span = int(evaluate_expr(s.upper, env)) - int(
                        evaluate_expr(s.lower, env)
                    )
                    worst = max(worst, span)
        return worst

    @property
    def smallest_size(self) -> int:
        return min(self.sizes)

    def default_space(self):
        """The benchmark's own tuning space, or the paper's Table III
        space when none is declared."""
        if self.tuning_space is not None:
            return self.tuning_space()
        from repro.autotune.spec import default_tuning_spec

        return default_tuning_spec()

    def emu_launch(self, n: int) -> tuple[int, int]:
        """An emulation-safe ``(tc, bc)`` at size ``n``."""
        if self.emulation_launch is not None:
            tc, bc = self.emulation_launch(n)
            return int(tc), int(bc)
        return DEFAULT_EMU_LAUNCH

    def emulate(
        self,
        n: int | None = None,
        rng=None,
        launch: tuple[int, int] | None = None,
        mode: str | None = None,
        gpu=None,
    ):
        """Compile and emulate this benchmark at size ``n``.

        One-call ground truth: builds inputs, compiles every kernel, and
        runs the full launch sequence under the SIMT emulator at the
        benchmark's declared emulation-safe launch (or ``launch``).
        Routed through the vectorized grid-level fast path by default;
        ``mode="scalar"`` (or ``REPRO_EMU=scalar`` in the environment)
        selects the per-warp reference path, with identical results.

        Returns ``(outputs, result)`` as
        :func:`repro.sim.emulator.run_benchmark_emulated`.
        """
        from repro.codegen.compiler import CompileOptions, compile_module
        from repro.sim.emulator import run_benchmark_emulated
        from repro.util.rng import rng_for

        n = self.smallest_size if n is None else n
        rng = rng_for("emulate", self.name, n) if rng is None else rng
        inputs = self.make_inputs(n, rng)
        if gpu is None:
            from repro.arch import K20 as gpu  # noqa: N811 - GPU constant
        module = compile_module(
            self.name, list(self.specs), CompileOptions(gpu=gpu)
        )
        tc, bc = self.emu_launch(n) if launch is None else launch
        return run_benchmark_emulated(
            module, inputs, tc=tc, bc=bc, mode=mode
        )


BENCHMARKS: dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in BENCHMARKS:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    if benchmark.emulation_launch is None:
        from repro.codegen.ast_nodes import Sync, walk_stmts

        for spec in benchmark.specs:
            cooperative = bool(spec.smem_arrays) or any(
                isinstance(s, Sync) for s in walk_stmts(spec.body)
            )
            if cooperative:
                raise ValueError(
                    f"benchmark {benchmark.name!r}: kernel {spec.name!r} "
                    "uses bar.sync / __shared__ arrays but declares no "
                    "emulation_launch; the default launch would violate its "
                    "cooperative constraints and every emulator-backed "
                    "consumer (suite ground truth, corpus validation) would "
                    "fail or silently skip it. Declare emulation_launch="
                    "lambda n: (tc, bc) satisfying its barrier/tile "
                    "constraints."
                )
    BENCHMARKS[benchmark.name] = benchmark
    return benchmark


def get_benchmark(name: str) -> Benchmark:
    key = name.strip().lower()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]


def list_benchmarks(tag: str | None = None) -> list[Benchmark]:
    """Registered benchmarks, sorted by name; ``tag`` filters the corpus.

    >>> [b.name for b in list_benchmarks(tag="stencil")]
    ['ex14fj', 'jacobi2d']
    """
    if tag is not None and tag not in TAGS:
        raise KeyError(f"unknown tag {tag!r}; taxonomy: {sorted(TAGS)}")
    out = [
        b for b in BENCHMARKS.values()
        if tag is None or tag in b.tags
    ]
    return sorted(out, key=lambda b: b.name)
