"""Benchmark registry and the common benchmark interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class Benchmark:
    """One tunable benchmark: kernel specs + reference semantics.

    Attributes
    ----------
    name:
        Registry key (paper name, lowercased).
    specs:
        Kernel specs launched in sequence (atax and BiCG are two passes).
    make_inputs:
        ``f(N, rng) -> dict`` mapping parameter names to NumPy arrays and
        scalars, including zero-initialized outputs.
    reference:
        ``f(inputs) -> dict`` of expected output arrays, NumPy semantics.
    sizes:
        The paper's five input sizes for this benchmark.
    param_env:
        ``f(N) -> dict`` of scalar parameter bindings used by trip-count
        evaluation (e.g. ``{"N": N, "NN": N*N}``).
    output_names:
        Parameter names holding results (checked against the reference).
    """

    name: str
    description: str
    specs: tuple
    make_inputs: Callable
    reference: Callable
    sizes: tuple
    param_env: Callable
    output_names: tuple

    def work_extent(self, n: int) -> int:
        """Total parallel-loop iterations at size ``n`` (max over kernels)."""
        from repro.codegen.ast_nodes import evaluate_expr, For

        env = self.param_env(n)
        worst = 0
        for spec in self.specs:
            for s in spec.body:
                if isinstance(s, For) and s.parallel:
                    span = int(evaluate_expr(s.upper, env)) - int(
                        evaluate_expr(s.lower, env)
                    )
                    worst = max(worst, span)
        return worst


BENCHMARKS: dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in BENCHMARKS:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    BENCHMARKS[benchmark.name] = benchmark
    return benchmark


def get_benchmark(name: str) -> Benchmark:
    key = name.strip().lower()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[key]
