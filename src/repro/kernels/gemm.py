"""gemm: C = alpha A B + beta C  (general matrix multiply, polybench form).

One thread per *output element* over the flattened N x N product domain
(:func:`~repro.codegen.dsl.pfor2d`): thread ``n`` computes row ``i = n/N``,
column ``j = n%N`` and walks the full ``k`` dot-product loop.  Lanes of a
warp share a row of ``A`` (uniform per iteration, cached) and read
consecutive columns of ``B`` (coalesced), so the kernel streams well and
its cost is dominated by the fused multiply-adds of the inner loop --
the corpus's clearest *compute-bound* member, with N FLOP-pairs per
output against three global streams.

Parallelism is ``N^2`` (like matVec2D there is always enough work to fill
every block) and the inner loop is the natural unrolling target, so gemm
rewards both high occupancy and larger ``UIF`` values.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
alpha = dsl.sparam("alpha", "f32")
beta = dsl.sparam("beta", "f32")
A = dsl.farray("A")
B = dsl.farray("B")
C = dsl.farray("C")

_i, _j, _k, _n = dsl.ivars("i", "j", "k", "n")
_s = dsl.var("s", "f32")

GEMM_K = dsl.kernel(
    "gemm",
    params=[N, alpha, beta, A, B, C],
    body=[
        dsl.pfor2d(_i, _j, N, N, [
            dsl.assign("s", beta * C[_n]),
            dsl.sfor(_k, N, [
                dsl.assign("s", _s + alpha * A[_i * N + _k] * B[_k * N + _j]),
            ]),
            C.store(_n, _s),
        ], flat=_n),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    return {
        "N": n,
        "alpha": np.float32(1.5),
        "beta": np.float32(1.2),
        "A": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "B": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "C": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    b = inputs["B"].reshape(n, n).astype(np.float64)
    c = inputs["C"].reshape(n, n).astype(np.float64)
    out = float(inputs["alpha"]) * (a @ b) + float(inputs["beta"]) * c
    return {"C": out.reshape(-1).astype(np.float32)}


GEMM = register(
    Benchmark(
        name="gemm",
        description="General matrix multiply: C = alpha A B + beta C",
        specs=(GEMM_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(16, 32, 64, 128, 256),
        param_env=lambda n: {"N": n},
        output_names=("C",),
        tags=("compute-bound",),
    )
)
