"""Shared-memory-tiled matrix-vector product (extension kernel).

A tiled variant of the row-per-thread matvec: each block stages a
TILE-element slice of ``x`` in shared memory behind a barrier, then its
threads stream their rows against the staged tile.  Exercises the parts of
the substrate the Table IV benchmarks leave cold -- ``__shared__`` arrays,
``bar.sync``, and shared-memory-limited occupancy -- and demonstrates the
S* headroom story of Table VII: the tile size directly trades occupancy
for reuse.

Constraints (documented, asserted by the input generator): the matrix
order ``N`` must be a multiple of the tile (128), and the launch must use
``TC`` a multiple of 128 with ``TC * BC == N`` so that every thread of a
block reaches each ``bar.sync`` exactly once.  Registered as benchmark
``matvec_smem``; not part of the paper's kernel set, so experiments
exclude it by default.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.codegen.ast_nodes import Load, Store
from repro.kernels.base import Benchmark, register
from repro.ptx.isa import DType

TILE = 128

N = dsl.sparam("N")
A = dsl.farray("A")
x = dsl.farray("x")
y = dsl.farray("y")

_i, _j, _t = dsl.ivars("i", "j", "t")
_s = dsl.var("s", "f32")
_lane = dsl.ivar("lane")

MATVEC_SMEM_K = dsl.kernel(
    "matvec_smem",
    params=[N, A, x, y],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("s", dsl.f32(0.0)),
            dsl.assign("lane", _i % TILE),
            dsl.sfor(_t, N // TILE, [
                # stage one tile of x cooperatively, then synchronize
                Store("xs", _lane, x[_t * TILE + _lane]),
                dsl.sync(),
                dsl.sfor(_j, TILE, [
                    dsl.assign(
                        "s",
                        _s + A[_i * N + _t * TILE + _j]
                        * Load("xs", _j, DType.F32),
                    ),
                ]),
                dsl.sync(),
            ]),
            y.store(_i, _s),
        ]),
    ],
    smem_arrays=(("xs", TILE, DType.F32),),
)


def tuning_space():
    """The Table III space with TC restricted to tile multiples (the
    cooperative-staging constraint)."""
    from repro.autotune.spec import default_tuning_spec

    return default_tuning_spec().restrict(
        "TC", tuple(range(TILE, 1025, TILE))
    )


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    if n % TILE:
        raise ValueError(f"matvec_smem requires N % {TILE} == 0, got {n}")
    a = rng.standard_normal((n, n)).astype(np.float32)
    xv = rng.standard_normal(n).astype(np.float32)
    return {
        "N": n,
        "A": a.reshape(-1),
        "x": xv,
        "y": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    return {"y": (a @ inputs["x"].astype(np.float64)).astype(np.float32)}


MATVEC_SMEM = register(
    Benchmark(
        name="matvec_smem",
        description="shared-memory-tiled y = Ax (extension kernel)",
        specs=(MATVEC_SMEM_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(128, 256, 384, 512, 640),
        param_env=lambda n: {"N": n},
        output_names=("y",),
        tags=("memory-bound",),
        tuning_space=tuning_space,
        emulation_launch=lambda n: (TILE, n // TILE),
    )
)
