"""gesummv: y = alpha A x + beta B x  (scalar-vector-matrix sum, polybench).

A single row-parallel pass that streams *two* row-major matrices against
one shared vector: each thread accumulates both partial products for its
row and combines them on the way out.  Doubling the matrix traffic
without adding reuse gives gesummv the heaviest memory stream per FLOP
of the single-pass corpus members (four global reads per two
multiply-add pairs) -- a pure memory-bound workload with atax-like
``N``-way parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
alpha = dsl.sparam("alpha", "f32")
beta = dsl.sparam("beta", "f32")
A = dsl.farray("A")
B = dsl.farray("B")
x = dsl.farray("x")
y = dsl.farray("y")

_i, _j = dsl.ivars("i", "j")
_sa = dsl.var("sa", "f32")
_sb = dsl.var("sb", "f32")
_ib = dsl.ivar("ib")

GESUMMV_K = dsl.kernel(
    "gesummv",
    params=[N, alpha, beta, A, B, x, y],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("sa", dsl.f32(0.0)),
            dsl.assign("sb", dsl.f32(0.0)),
            dsl.assign("ib", _i * N),
            dsl.sfor(_j, N, [
                dsl.assign("sa", _sa + A[_ib + _j] * x[_j]),
                dsl.assign("sb", _sb + B[_ib + _j] * x[_j]),
            ]),
            y.store(_i, alpha * _sa + beta * _sb),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    return {
        "N": n,
        "alpha": np.float32(1.5),
        "beta": np.float32(1.2),
        "A": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "B": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "x": rng.standard_normal(n).astype(np.float32),
        "y": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    b = inputs["B"].reshape(n, n).astype(np.float64)
    xv = inputs["x"].astype(np.float64)
    out = float(inputs["alpha"]) * (a @ xv) + float(inputs["beta"]) * (b @ xv)
    return {"y": out.astype(np.float32)}


GESUMMV = register(
    Benchmark(
        name="gesummv",
        description="Scalar, vector and matrix sum: y = alpha A x + beta B x",
        specs=(GESUMMV_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n},
        output_names=("y",),
        tags=("memory-bound",),
    )
)
