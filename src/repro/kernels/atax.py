"""atax: y = A^T (A x)  (elementary linear algebra, polybench form).

Two dependent passes, compiled and launched as two kernels (a grid-wide
dependency cannot be synchronized inside one kernel):

- pass 1 (row-parallel): ``tmp[i] = sum_j A[i*N+j] * x[j]``.  Each thread
  walks one row of the row-major matrix, so lanes of a warp touch addresses
  N elements apart (strided) while consecutive iterations of one thread
  advance by one element -- a cache-line-reuse access that degrades when
  too many warps are resident.
- pass 2 (column-parallel): ``y[j] = sum_i A[i*N+j] * tmp[i]``.  Lanes
  touch consecutive columns (coalesced); each iteration steps one full row
  (no line reuse).

The parallelism of both passes is only ``N`` (32-512 in the paper's runs),
which is why large thread counts leave most blocks without work -- the
mechanism behind atax preferring the lower thread ranges in the paper's
Fig. 4/Table V.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
A = dsl.farray("A")
x = dsl.farray("x")
tmp = dsl.farray("tmp")
y = dsl.farray("y")

_i, _j = dsl.ivars("i", "j")
_s = dsl.var("s", "f32")
_ib = dsl.ivar("ib")

ATAX_K1 = dsl.kernel(
    "atax_k1",
    params=[N, A, x, tmp],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("s", dsl.f32(0.0)),
            dsl.assign("ib", _i * N),
            dsl.sfor(_j, N, [
                dsl.assign("s", _s + A[_ib + _j] * x[_j]),
            ]),
            tmp.store(_i, _s),
        ]),
    ],
)

ATAX_K2 = dsl.kernel(
    "atax_k2",
    params=[N, A, tmp, y],
    body=[
        dsl.pfor(_j, N, [
            dsl.assign("s", dsl.f32(0.0)),
            dsl.sfor(_i, N, [
                dsl.assign("s", _s + A[_i * N + _j] * tmp[_i]),
            ]),
            y.store(_j, _s),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    a = rng.standard_normal((n, n)).astype(np.float32)
    xv = rng.standard_normal(n).astype(np.float32)
    return {
        "N": n,
        "A": a.reshape(-1),
        "x": xv,
        "tmp": np.zeros(n, dtype=np.float32),
        "y": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    xv = inputs["x"].astype(np.float64)
    tmpv = a @ xv
    yv = a.T @ tmpv
    return {"tmp": tmpv.astype(np.float32), "y": yv.astype(np.float32)}


ATAX = register(
    Benchmark(
        name="atax",
        description="Matrix transpose, vector multiplication: y = A^T(Ax)",
        specs=(ATAX_K1, ATAX_K2),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n},
        output_names=("tmp", "y"),
        tags=("memory-bound", "multi-pass"),
    )
)
