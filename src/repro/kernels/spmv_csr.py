"""spmv_csr: y = A x with A in CSR form -- data-dependent trip counts.

The first *irregular* corpus member: each row's inner loop runs
``rowptr[r+1] - rowptr[r]`` iterations, a bound the kernel loads from
memory, so neighbouring lanes of a warp run different trip counts and
the warp serializes on the loop latch.  Row lengths are drawn from a
geometric distribution (mean ~8, with empty rows), so the latch
divergence is real, not an artifact of one outlier row.

The closed-form counting substrate stays exact *when the input arrays
are bound in the environment* (the suite's emulator ground-truth
comparison binds them); with scalar parameters only, trip counts fall
back to :data:`repro.codegen.regions.DATA_DEP_TRIPS_DEFAULT` -- the
static analyzer's documented blind spot this member exists to measure.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

R = dsl.sparam("R")
rowptr = dsl.farray("rowptr", "s32")
colidx = dsl.farray("colidx", "s32")
vals = dsl.farray("vals")
x = dsl.farray("x")
y = dsl.farray("y")

_r = dsl.ivar("r")
_k = dsl.ivar("k")
_acc = dsl.var("acc", "f32")

SPMV_K = dsl.kernel(
    "spmv_csr",
    params=[R, rowptr, colidx, vals, x, y],
    body=[
        dsl.pfor(_r, R, [
            dsl.assign("acc", dsl.f32(0.0)),
            dsl.sfor(_k, rowptr[_r + 1], [
                dsl.assign("acc", _acc + vals[_k] * x[colidx[_k]]),
            ], lower=rowptr[_r]),
            y.store(_r, _acc),
        ]),
    ],
)

MEAN_NNZ = 8


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    """A random n x n CSR matrix with geometric row lengths."""
    lens = rng.geometric(1.0 / MEAN_NNZ, n) - 1  # >= 0, mean ~7, empty rows
    lens = np.minimum(lens, n)
    if lens.sum() == 0:
        lens[0] = 1
    rp = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(lens, out=rp[1:])
    nnz = int(rp[-1])
    return {
        "R": n,
        "rowptr": rp,
        "colidx": rng.integers(0, n, nnz).astype(np.int32),
        "vals": rng.standard_normal(nnz).astype(np.float32),
        "x": rng.standard_normal(n).astype(np.float32),
        "y": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    rp = inputs["rowptr"].astype(np.int64)
    rows = np.repeat(np.arange(rp.size - 1), np.diff(rp))
    prods = (
        inputs["vals"].astype(np.float64)
        * inputs["x"].astype(np.float64)[inputs["colidx"]]
    )
    out = np.zeros(rp.size - 1, dtype=np.float64)
    np.add.at(out, rows, prods)
    return {"y": out.astype(np.float32)}


SPMV = register(
    Benchmark(
        name="spmv_csr",
        description="CSR sparse matrix-vector product "
                    "(data-dependent row trip counts)",
        specs=(SPMV_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(64, 128, 256, 512, 1024),
        param_env=lambda n: {"R": n},
        output_names=("y",),
        tags=("irregular", "memory-bound"),
    )
)
