"""jacobi2d: one 5-point Jacobi relaxation sweep over an N x N grid.

The 2-D companion to ex14FJ's 3-D stencil: one thread per grid point over
the flattened domain (:func:`~repro.codegen.dsl.pfor2d`), a divergent
boundary test (edge points copy the input, the Dirichlet frame), and
halo reads of the four nearest neighbours:

    B[i][j] = 0.2 (A[i][j] + A[i][j-1] + A[i][j+1] + A[i-1][j] + A[i+1][j])

Unlike ex14FJ there is no variable coefficient and no special function --
five coalesced-or-adjacent reads against four adds and one multiply make
the sweep *memory-bound*, so the two stencils bracket the intensity axis
of the tag taxonomy.  Warps straddle the domain edge every N threads
(the row seam), giving a higher divergence rate than the 3-D kernel at
equal point counts.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
A = dsl.farray("A")
B = dsl.farray("B")

_i, _j, _n = dsl.ivars("i", "j", "n")

_fifth = dsl.f32(0.2)


def _edge(c):
    return dsl.either(c.eq(0), c.eq(N - 1))


def _boundary_cond():
    # written over the flat loop variable (``n//N``, ``n%N`` rather than
    # the ``i``/``j`` locals) so branch fractions stay exactly countable
    return dsl.either(_edge(_n // N), _edge(_n % N))


JACOBI2D_K = dsl.kernel(
    "jacobi2d",
    params=[N, A, B],
    body=[
        dsl.pfor2d(_i, _j, N, N, [
            dsl.when(
                _boundary_cond(),
                # Dirichlet frame: pass-through
                [B.store(_n, A[_n])],
                # interior: 5-point halo read
                [B.store(
                    _n,
                    _fifth * (A[_n] + A[_n - 1] + A[_n + 1]
                              + A[_n - N] + A[_n + N]),
                )],
            ),
        ], flat=_n),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    return {
        "N": n,
        "A": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "B": np.zeros(n * n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    out = a.copy()
    out[1:-1, 1:-1] = 0.2 * (
        a[1:-1, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
        + a[:-2, 1:-1] + a[2:, 1:-1]
    )
    return {"B": out.reshape(-1).astype(np.float32)}


JACOBI2D = register(
    Benchmark(
        name="jacobi2d",
        description="One 5-point Jacobi sweep with a Dirichlet frame",
        specs=(JACOBI2D_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n},
        output_names=("B",),
        tags=("stencil", "memory-bound"),
    )
)
