"""The benchmark kernels of the paper's Table IV.

============  ==========================  ==========================
Kernel        Category                    Operation
============  ==========================  ==========================
atax          Elementary linear algebra   y = A^T (A x)
BiCG          Linear solvers              q = A p,  s = A^T r
ex14FJ        3-D Jacobi computation      F(x) = A(u) v (Bratu solid
                                          fuel ignition Jacobian)
matVec2D      Elementary linear algebra   y = A x (2-D decomposition)
============  ==========================  ==========================

Each benchmark bundles: the kernel spec(s) in the loop-nest DSL (the form
Orio transforms), a NumPy reference implementation used to validate the
emulator, an input generator, and the problem sizes the paper sweeps.
"""

from repro.kernels.base import Benchmark, BENCHMARKS, get_benchmark
from repro.kernels import atax, bicg, ex14fj, matvec2d  # noqa: F401  (register)
from repro.kernels import matvec_smem  # noqa: F401  (extension kernel)

__all__ = ["Benchmark", "BENCHMARKS", "get_benchmark"]
