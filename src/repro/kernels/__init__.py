"""The workload corpus: the paper's Table IV kernels plus the suite
extensions, all registered by name and tagged by workload class.

============  ==========================  ==========================
Kernel        Tags                        Operation
============  ==========================  ==========================
atax          memory-bound, multi-pass    y = A^T (A x)
BiCG          memory-bound, multi-pass    q = A p,  s = A^T r
ex14FJ        compute-bound, stencil      F(x) = A(u) v (Bratu solid
                                          fuel ignition Jacobian, 3-D)
matVec2D      memory-bound                y = A x (2-D decomposition)
matvec_smem   memory-bound                y = A x (shared-memory tiles)
gemm          compute-bound               C = alpha A B + beta C
mvt           memory-bound, multi-pass    x1 += A y1,  x2 += A^T y2
gesummv       memory-bound                y = alpha A x + beta B x
jacobi2d      stencil, memory-bound       one 5-point Jacobi sweep
dot           reduction, memory-bound     out = x . y (smem tree +
                                          atomicAdd)
gemver        memory-bound, multi-pass    rank-2 update + dependent
                                          matrix-vector passes
spmv_csr      irregular, memory-bound     y = A x, CSR (data-dependent
                                          row trip counts)
histogram     irregular, reduction,       hist[keys[i]] += w[i]
              memory-bound                (skew-tunable atomics)
scan          irregular, memory-bound     tile-wise inclusive prefix
                                          (Hillis-Steele in smem)
compact       irregular, memory-bound     stable stream compaction
                                          (rank loop + guarded scatter)
============  ==========================  ==========================

The first four are the paper's Table IV set (what the paper experiments
sweep by default); the rest are suite extensions selectable by tag via
:func:`list_benchmarks` and driven end to end by the ``suite``
experiment.  The ``irregular`` quartet leaves the affine world the
closed-form counting substrate was built for; see
:mod:`repro.kernels.spmv_csr` for the input-aware counting story.  Each benchmark bundles: the kernel spec(s) in the loop-nest
DSL (the form Orio transforms), a NumPy reference implementation used to
validate the emulator, an input generator, the problem sizes swept, and
its corpus tags.
"""

from repro.kernels.base import (
    BENCHMARKS,
    Benchmark,
    TAGS,
    get_benchmark,
    list_benchmarks,
)
from repro.kernels import atax, bicg, ex14fj, matvec2d  # noqa: F401  (register)
from repro.kernels import (  # noqa: F401  (suite extension kernels)
    compact,
    dot,
    gemm,
    gemver,
    gesummv,
    histogram,
    jacobi2d,
    matvec_smem,
    mvt,
    scan,
    spmv_csr,
)

__all__ = [
    "Benchmark",
    "BENCHMARKS",
    "TAGS",
    "get_benchmark",
    "list_benchmarks",
]
