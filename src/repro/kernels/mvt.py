"""mvt: x1 = x1 + A y1,  x2 = x2 + A^T y2  (polybench form).

Two *independent* matrix-vector products against the same matrix,
launched as two kernels -- the multi-pass shape of atax/BiCG without the
inter-pass data dependency.  Pass 1 walks rows (strided lanes, per-thread
line reuse); pass 2 walks columns of the same row-major storage
(coalesced lanes, no reuse) -- together they touch both canonical access
patterns of the substrate while streaming 2 N^2 matrix elements against
only ~2 N FLOPs per pass: firmly memory-bound, and with parallelism
``N`` they share atax's preference for the lower thread ranges.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
A = dsl.farray("A")
x1 = dsl.farray("x1")
y1 = dsl.farray("y1")
x2 = dsl.farray("x2")
y2 = dsl.farray("y2")

_i, _j = dsl.ivars("i", "j")
_s = dsl.var("s", "f32")

MVT_K1 = dsl.kernel(
    "mvt_x1",
    params=[N, A, x1, y1],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("s", x1[_i]),
            dsl.sfor(_j, N, [
                dsl.assign("s", _s + A[_i * N + _j] * y1[_j]),
            ]),
            x1.store(_i, _s),
        ]),
    ],
)

MVT_K2 = dsl.kernel(
    "mvt_x2",
    params=[N, A, x2, y2],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("s", x2[_i]),
            dsl.sfor(_j, N, [
                dsl.assign("s", _s + A[_j * N + _i] * y2[_j]),
            ]),
            x2.store(_i, _s),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    return {
        "N": n,
        "A": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "x1": rng.standard_normal(n).astype(np.float32),
        "y1": rng.standard_normal(n).astype(np.float32),
        "x2": rng.standard_normal(n).astype(np.float32),
        "y2": rng.standard_normal(n).astype(np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    return {
        "x1": (inputs["x1"].astype(np.float64)
               + a @ inputs["y1"].astype(np.float64)).astype(np.float32),
        "x2": (inputs["x2"].astype(np.float64)
               + a.T @ inputs["y2"].astype(np.float64)).astype(np.float32),
    }


MVT = register(
    Benchmark(
        name="mvt",
        description="Matrix-vector product and transpose: x1 += A y1, "
                    "x2 += A^T y2",
        specs=(MVT_K1, MVT_K2),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n},
        output_names=("x1", "x2"),
        tags=("memory-bound", "multi-pass"),
    )
)
