"""matVec2D: y = A x with a two-dimensional work decomposition.

One thread per *matrix element*: thread ``n`` (n in [0, N^2)) computes the
product ``A[i][j] * x[j]`` for ``j = n / N``, ``i = n % N`` and accumulates
it into ``y[i]`` with an atomic add.  The matrix is traversed column-major
(``n`` walks down columns), so lanes of a warp read consecutive ``A``
elements (coalesced) and share one ``x[j]`` value (uniform / cached); the
atomic targets 32 consecutive ``y`` entries per warp, so conflicts are rare.

Parallelism is ``N^2`` (up to 262,144 at the paper's largest size): unlike
atax/BiCG, there is always enough work to fill every block, and the deep
per-thread dependency disappears -- performance keeps improving with
occupancy, which is why matVec2D favours the *upper* thread ranges in the
paper's Fig. 4 and crosses the intensity-4.0 threshold in its Table VI.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
NN = dsl.sparam("NN")
Ac = dsl.farray("Ac")  # column-major storage: Ac[j*N + i] = A[i][j]
x = dsl.farray("x")
y = dsl.farray("y")

_n = dsl.ivar("n")
_j = dsl.ivar("j")
_i = dsl.ivar("i")

MATVEC2D_K = dsl.kernel(
    "matvec2d",
    params=[N, NN, Ac, x, y],
    body=[
        dsl.pfor(_n, NN, [
            dsl.assign("j", _n // N),
            dsl.assign("i", _n % N),
            y.atomic_add(_i, Ac[_n] * x[_j]),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    a = rng.standard_normal((n, n)).astype(np.float32)
    xv = rng.standard_normal(n).astype(np.float32)
    return {
        "N": n,
        "NN": n * n,
        "Ac": a.T.reshape(-1).copy(),  # column-major flattening
        "x": xv,
        "y": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["Ac"].reshape(n, n).T.astype(np.float64)  # undo column-major
    xv = inputs["x"].astype(np.float64)
    return {"y": (a @ xv).astype(np.float32)}


MATVEC2D = register(
    Benchmark(
        name="matvec2d",
        description="Matrix-vector multiplication y = Ax, 2-D decomposition",
        specs=(MATVEC2D_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n, "NN": n * n},
        output_names=("y",),
        tags=("memory-bound",),
    )
)
