"""dot: out[0] = sum_i x[i] y[i]  -- block-level tree reduction.

The corpus's *reduction* member, exercising the cooperative substrate the
streaming kernels leave cold: each 128-iteration tile stages its
products in a ``__shared__`` array behind a barrier, folds them with a
log2-step tree (seven halving rounds of ``xs[lane] += xs[lane+stride]``,
each behind its own ``bar.sync``), and lane 0 finishes the tile with one
global ``atomicAdd`` into the scalar accumulator.  The halving ``when``
guards turn warps partially off round by round -- real intra-warp
divergence with *useful* serialized arms, unlike the boundary tests of
the stencils.

Constraints (documented here, satisfied by :meth:`Benchmark.emu_launch`
and the declared tuning space): the reduction tree is correct only when
``TC == 128`` exactly (each block's shared tile holds exactly the 128
products of one tile, ``lane == threadIdx``) and every thread runs the
same number of grid-stride iterations (``N % (TC*BC) == 0``), so that
all warps of a block reach each barrier the same number of times.  The
input sizes are therefore multiples of 512 and the emulation launch is
``(128, 4)``.  Sweep *measurements* are closed-form and do not emulate,
so the declared space may still range ``TC`` over tile multiples.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.codegen.ast_nodes import Load, Store
from repro.kernels.base import Benchmark, register
from repro.ptx.isa import DType

TILE = 128

N = dsl.sparam("N")
x = dsl.farray("x")
y = dsl.farray("y")
out = dsl.farray("out")

_i = dsl.ivar("i")
_lane = dsl.ivar("lane")


def _xs(index):
    return Load("xs", dsl._as_expr(index), DType.F32)


def _tree_reduction():
    """Seven halving rounds, each guarded and barriered.

    The guards are written over the loop variable (``i % TILE``) rather
    than the ``lane`` local so the closed-form counting substrate can
    evaluate the branch fractions exactly.
    """
    steps = []
    stride = TILE // 2
    while stride >= 1:
        steps.append(dsl.when(
            (_i % TILE).lt(stride),
            [Store("xs", _lane, _xs(_lane) + _xs(_lane + stride))],
        ))
        steps.append(dsl.sync())
        stride //= 2
    return steps


DOT_K = dsl.kernel(
    "dot",
    params=[N, x, y, out],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("lane", _i % TILE),
            Store("xs", _lane, x[_i] * y[_i]),
            dsl.sync(),
            *_tree_reduction(),
            dsl.when((_i % TILE).eq(0), [out.atomic_add(0, _xs(0))]),
            dsl.sync(),
        ]),
    ],
    smem_arrays=(("xs", TILE, DType.F32),),
)


def tuning_space():
    """The Table III space with TC restricted to tile multiples and UIF
    pinned (the kernel has no sequential inner loop to unroll)."""
    from repro.autotune.spec import default_tuning_spec

    return (
        default_tuning_spec()
        .restrict("TC", tuple(range(TILE, 1025, TILE)))
        .restrict("UIF", (1,))
    )


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    if n % (TILE * 4):
        raise ValueError(f"dot requires N % {TILE * 4} == 0, got {n}")
    return {
        "N": n,
        "x": rng.standard_normal(n).astype(np.float32),
        "y": rng.standard_normal(n).astype(np.float32),
        "out": np.zeros(1, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    acc = float(
        inputs["x"].astype(np.float64) @ inputs["y"].astype(np.float64)
    )
    return {"out": np.array([acc], dtype=np.float32)}


DOT = register(
    Benchmark(
        name="dot",
        description="Dot product via shared-memory tree reduction "
                    "+ atomicAdd finish",
        specs=(DOT_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(512, 1024, 2048, 4096, 8192),
        param_env=lambda n: {"N": n},
        output_names=("out",),
        tags=("reduction", "memory-bound"),
        tuning_space=tuning_space,
        emulation_launch=lambda n: (TILE, 4),
    )
)
