"""gemver: vector multiplication and matrix addition (polybench form).

Four *dependent* passes -- the longest launch chain in the corpus, twice
atax's depth:

1. ``A = A + u1 v1^T + u2 v2^T``   (rank-2 update, one thread per element)
2. ``x = x + beta A^T y``          (column-parallel, reads pass 1's A)
3. ``x = x + z``                   (elementwise)
4. ``w = w + alpha A x``           (row-parallel, reads passes 1-3)

Every pass streams more global data than it computes on (the rank-2
update is three N^2 streams for four FLOPs per element), so gemver is
memory-bound end to end, and each pass re-reads its predecessor's output
from global memory -- the multi-pass shape that makes cross-launch cache
behaviour matter.  Parallelism alternates between ``N^2`` (passes 1)
and ``N`` (passes 2-4), so no single thread count suits all four
launches -- a deliberately awkward member for the static module.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
alpha = dsl.sparam("alpha", "f32")
beta = dsl.sparam("beta", "f32")
A = dsl.farray("A")
u1 = dsl.farray("u1")
v1 = dsl.farray("v1")
u2 = dsl.farray("u2")
v2 = dsl.farray("v2")
x = dsl.farray("x")
y = dsl.farray("y")
z = dsl.farray("z")
w = dsl.farray("w")

_i, _j, _n = dsl.ivars("i", "j", "n")
_s = dsl.var("s", "f32")

GEMVER_K1 = dsl.kernel(
    "gemver_rank2",
    params=[N, A, u1, v1, u2, v2],
    body=[
        dsl.pfor2d(_i, _j, N, N, [
            A.store(_n, A[_n] + u1[_i] * v1[_j] + u2[_i] * v2[_j]),
        ], flat=_n),
    ],
)

GEMVER_K2 = dsl.kernel(
    "gemver_xupdate",
    params=[N, beta, A, x, y],
    body=[
        dsl.pfor(_j, N, [
            dsl.assign("s", x[_j]),
            dsl.sfor(_i, N, [
                dsl.assign("s", _s + beta * A[_i * N + _j] * y[_i]),
            ]),
            x.store(_j, _s),
        ]),
    ],
)

GEMVER_K3 = dsl.kernel(
    "gemver_xshift",
    params=[N, x, z],
    body=[
        dsl.pfor(_i, N, [
            x.store(_i, x[_i] + z[_i]),
        ]),
    ],
)

GEMVER_K4 = dsl.kernel(
    "gemver_w",
    params=[N, alpha, A, x, w],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("s", w[_i]),
            dsl.sfor(_j, N, [
                dsl.assign("s", _s + alpha * A[_i * N + _j] * x[_j]),
            ]),
            w.store(_i, _s),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    vec = lambda: rng.standard_normal(n).astype(np.float32)  # noqa: E731
    return {
        "N": n,
        "alpha": np.float32(1.5),
        "beta": np.float32(1.2),
        "A": rng.standard_normal((n, n)).astype(np.float32).reshape(-1),
        "u1": vec(), "v1": vec(), "u2": vec(), "v2": vec(),
        "x": vec(), "y": vec(), "z": vec(),
        "w": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    f64 = lambda k: inputs[k].astype(np.float64)  # noqa: E731
    a = f64("A").reshape(n, n)
    a = a + np.outer(f64("u1"), f64("v1")) + np.outer(f64("u2"), f64("v2"))
    xv = f64("x") + float(inputs["beta"]) * (a.T @ f64("y")) + f64("z")
    wv = f64("w") + float(inputs["alpha"]) * (a @ xv)
    return {
        "A": a.reshape(-1).astype(np.float32),
        "x": xv.astype(np.float32),
        "w": wv.astype(np.float32),
    }


GEMVER = register(
    Benchmark(
        name="gemver",
        description="Rank-2 update then two dependent matrix-vector passes",
        specs=(GEMVER_K1, GEMVER_K2, GEMVER_K3, GEMVER_K4),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n},
        output_names=("A", "x", "w"),
        tags=("memory-bound", "multi-pass"),
    )
)
