"""compact: stream compaction -- data-dependent guard + scatter.

Copies the flagged elements of ``data`` to the front of ``out``, stable:
each thread computes its output rank by counting the kept flags before
its index (a triangular ``O(N^2)`` rank loop whose per-lane trip count
is the thread index itself), then a *data-dependent* guard -- the flag
loaded from memory -- decides whether the thread scatters and bumps the
global kept-count.  The guard's arm is deliberately heavy enough to
defeat if-conversion, so this is a real divergent branch whose taken
mask is a property of the input, and the scatter target (the rank) is a
computed, data-dependent store index -- unique per kept element, so the
compaction is race-free without needing a fetch-add.

The rank loop is hoisted *outside* the guard so its triangular trip
count stays exactly countable (mean ``(N-1)/2`` over the parallel
domain); the rank increment inside it is a single predicated assign, so
it contributes no branch region either.  What the static path cannot
know is the guard fraction: input-aware counting (flags bound in the
environment) recovers it exactly, scalar-only counting falls back to
0.5.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
flags = dsl.farray("flags", "s32")
data = dsl.farray("data")
out = dsl.farray("out")
nkept = dsl.farray("nkept")

_i = dsl.ivar("i")
_j = dsl.ivar("j")
_rank = dsl.ivar("rank")

COMPACT_K = dsl.kernel(
    "compact",
    params=[N, flags, data, out, nkept],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("rank", dsl.i32(0)),
            dsl.sfor(_j, _i, [
                # single assign: if-converted, no branch region
                dsl.when(flags[_j].ne(0), [dsl.assign("rank", _rank + 1)]),
            ]),
            # heavy arm: a real divergent branch on loaded data
            dsl.when(flags[_i].ne(0), [
                out.store(_rank, data[_i]),
                nkept.atomic_add(0, dsl.f32(1.0)),
            ]),
        ]),
    ],
)

KEEP_FRACTION = 0.35


def make_inputs(n: int, rng: np.random.Generator,
                keep: float = KEEP_FRACTION) -> dict:
    return {
        "N": n,
        "flags": (rng.random(n) < keep).astype(np.int32),
        "data": rng.standard_normal(n).astype(np.float32),
        "out": np.zeros(n, dtype=np.float32),
        "nkept": np.zeros(1, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    kept = inputs["flags"] != 0
    out = np.zeros_like(inputs["data"])
    out[: int(kept.sum())] = inputs["data"][kept]
    return {
        "out": out,
        "nkept": np.array([kept.sum()], dtype=np.float32),
    }


COMPACT = register(
    Benchmark(
        name="compact",
        description="Stable stream compaction via per-thread rank counting "
                    "(data-dependent guard + scatter)",
        specs=(COMPACT_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(64, 128, 192, 256, 384),
        param_env=lambda n: {"N": n},
        output_names=("out", "nkept"),
        tags=("irregular", "memory-bound"),
    )
)
