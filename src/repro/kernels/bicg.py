"""BiCG: q = A p and s = A^T r  (the BiCGStab sub-kernel, polybench form).

Two passes, written in the *naive* style an annotation-based translator
produces from the C loop nest -- the running vector entry is re-read and
re-written from global memory every inner iteration rather than being kept
in a register (no scalar replacement):

.. code-block:: c

    /* pass 1, parallel over i */            /* pass 2, parallel over j */
    for (j = 0; j < N; j++)                  for (i = 0; i < N; i++)
      q[i] = q[i] + A[i*N+j] * p[j];           s[j] = s[j] + r[i] * A[i*N+j];

The read-modify-write gives BiCG four memory operations per inner
iteration (A, the vector, and the load+store of the output entry), the
lowest computational intensity of the four benchmarks -- matching its
placement in the paper's Table VI -- and a serial per-iteration dependence
chain.  Parallelism is only ``N``, so BiCG shares atax's preference for the
lower thread ranges.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
A = dsl.farray("A")
p = dsl.farray("p")
r = dsl.farray("r")
q = dsl.farray("q")
s_arr = dsl.farray("s")

_i, _j = dsl.ivars("i", "j")
_ib = dsl.ivar("ib")

BICG_K1 = dsl.kernel(
    "bicg_q",
    params=[N, A, p, q],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("ib", _i * N),
            dsl.sfor(_j, N, [
                q.store(_i, q[_i] + A[_ib + _j] * p[_j]),
            ]),
        ]),
    ],
)

BICG_K2 = dsl.kernel(
    "bicg_s",
    params=[N, A, r, s_arr],
    body=[
        dsl.pfor(_j, N, [
            dsl.sfor(_i, N, [
                s_arr.store(_j, s_arr[_j] + r[_i] * A[_i * N + _j]),
            ]),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    a = rng.standard_normal((n, n)).astype(np.float32)
    pv = rng.standard_normal(n).astype(np.float32)
    rv = rng.standard_normal(n).astype(np.float32)
    return {
        "N": n,
        "A": a.reshape(-1),
        "p": pv,
        "r": rv,
        "q": np.zeros(n, dtype=np.float32),
        "s": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    a = inputs["A"].reshape(n, n).astype(np.float64)
    pv = inputs["p"].astype(np.float64)
    rv = inputs["r"].astype(np.float64)
    return {
        "q": (a @ pv).astype(np.float32),
        "s": (a.T @ rv).astype(np.float32),
    }


BICG = register(
    Benchmark(
        name="bicg",
        description="BiCGStab sub-kernel: q = Ap, s = A^T r",
        specs=(BICG_K1, BICG_K2),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(32, 64, 128, 256, 512),
        param_env=lambda n: {"N": n},
        output_names=("q", "s"),
        tags=("memory-bound", "multi-pass"),
    )
)
