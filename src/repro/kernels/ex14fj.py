"""ex14FJ: Jacobian application for the 3-D solid fuel ignition problem.

The paper's application kernel: "the Jacobian computation for a solid fuel
ignition simulation in 3D rectangular domain" (the Bratu problem,
F(x) = A(x)x - b with A(u)v ~= -div(kappa(u) grad v) - lambda e^u v).

One thread per grid point over the flattened N^3 domain.  Boundary points
copy the input (Dirichlet); interior points evaluate a 7-point variable-
coefficient stencil plus the nonlinear reaction term with ``exp``.  The
boundary test is a *divergent branch*: warps straddling the domain surface
serialize both arms (the effect of the paper's Fig. 1), while deep-interior
warps take a single path.

The kernel is the most arithmetic-dense of the four (integer
division/modulo for the 3-D de-flattening, the stencil polynomial, and a
special-function ``exp``), giving it the highest computational intensity in
the paper's Table VI -- and with N^3 parallelism it rewards high occupancy,
i.e. the upper thread ranges.

Note the paper's input sizes for ex14FJ are {8, 16, 32, 64, 128} (the grid
edge length; the point count is its cube).
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

N = dsl.sparam("N")
NN = dsl.sparam("NN")     # N*N
NNN = dsl.sparam("NNN")   # N*N*N
lam = dsl.sparam("lam", "f32")
u = dsl.farray("u")
v = dsl.farray("v")
out = dsl.farray("out")

_n = dsl.ivar("n")

_one = dsl.f32(1.0)
_two = dsl.f32(2.0)


def _boundary_cond():
    ix = _n % N
    iy = (_n // N) % N
    iz = _n // NN
    edge = lambda c: dsl.either(c.eq(0), c.eq(N - 1))  # noqa: E731
    return dsl.either(dsl.either(edge(ix), edge(iy)), edge(iz))


_hx = dsl.var("hx", "f32")
_sc = dsl.var("sc", "f32")
_kap = dsl.var("kap", "f32")
_lap = dsl.var("lap", "f32")
_ctr = dsl.var("ctr", "f32")

EX14FJ_K = dsl.kernel(
    "ex14fj",
    params=[N, NN, NNN, lam, u, v, out],
    body=[
        # mesh spacing and reaction scale, computed once per thread
        dsl.assign("hx", _one / dsl.to_f32(N - 1)),
        dsl.assign("sc", lam * _hx * _hx * _hx),
        dsl.pfor(_n, NNN, [
            dsl.when(
                _boundary_cond(),
                # Dirichlet boundary: pass-through
                [out.store(_n, v[_n])],
                # interior: variable-coefficient 7-point stencil + reaction
                [
                    dsl.assign("ctr", v[_n]),
                    dsl.assign("kap", _one + u[_n] * u[_n]),
                    dsl.assign(
                        "lap",
                        (_two * _ctr - v[_n - 1] - v[_n + 1])
                        + (_two * _ctr - v[_n - N] - v[_n + N])
                        + (_two * _ctr - v[_n - NN] - v[_n + NN]),
                    ),
                    out.store(
                        _n,
                        _kap * _lap * _hx - _sc * dsl.exp(u[_n]) * _ctr,
                    ),
                ],
            ),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    pts = n * n * n
    uv = rng.uniform(0.0, 1.0, pts).astype(np.float32)
    vv = rng.standard_normal(pts).astype(np.float32)
    return {
        "N": n,
        "NN": n * n,
        "NNN": pts,
        "lam": np.float32(6.0),
        "u": uv,
        "v": vv,
        "out": np.zeros(pts, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    n = inputs["N"]
    uv = inputs["u"].reshape(n, n, n).astype(np.float64)
    vv = inputs["v"].reshape(n, n, n).astype(np.float64)
    lam_ = float(inputs["lam"])
    hx = 1.0 / (n - 1)
    sc = lam_ * hx * hx * hx

    outv = vv.copy()
    ctr = vv[1:-1, 1:-1, 1:-1]
    kap = 1.0 + uv[1:-1, 1:-1, 1:-1] ** 2
    lap = (
        (2.0 * ctr - vv[1:-1, 1:-1, :-2] - vv[1:-1, 1:-1, 2:])
        + (2.0 * ctr - vv[1:-1, :-2, 1:-1] - vv[1:-1, 2:, 1:-1])
        + (2.0 * ctr - vv[:-2, 1:-1, 1:-1] - vv[2:, 1:-1, 1:-1])
    )
    outv[1:-1, 1:-1, 1:-1] = (
        kap * lap * hx - sc * np.exp(uv[1:-1, 1:-1, 1:-1]) * ctr
    )
    return {"out": outv.reshape(-1).astype(np.float32)}


EX14FJ = register(
    Benchmark(
        name="ex14fj",
        description="3-D solid fuel ignition Jacobian stencil (Bratu)",
        specs=(EX14FJ_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(8, 16, 32, 64, 128),
        param_env=lambda n: {"N": n, "NN": n * n, "NNN": n * n * n},
        output_names=("out",),
        tags=("compute-bound", "stencil"),
    )
)
