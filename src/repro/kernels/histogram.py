"""histogram: hist[keys[i]] += w[i] -- atomics contention via key skew.

The irregular corpus's *contention* member: every thread issues one
global ``atomicAdd`` whose target bin is loaded from the input, so the
conflict structure -- how many lanes of a warp hit the same bin -- is a
property of the data, not the code.  ``make_inputs`` draws keys from a
Zipf distribution truncated to :data:`BINS` bins; the ``skew`` keyword
(default 1.5) tunes the contention from near-uniform (large exponents
concentrate everything in bin 0) and the fuzz/equivalence tests sweep
it.  This is exactly the shape the vectorized emulator's deferred
atomic-replay machinery must order correctly.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.kernels.base import Benchmark, register

BINS = 64
DEFAULT_SKEW = 1.5

N = dsl.sparam("N")
keys = dsl.farray("keys", "s32")
w = dsl.farray("w")
hist = dsl.farray("hist")

_i = dsl.ivar("i")

HIST_K = dsl.kernel(
    "histogram",
    params=[N, keys, w, hist],
    body=[
        dsl.pfor(_i, N, [
            hist.atomic_add(keys[_i], w[_i]),
        ]),
    ],
)


def make_inputs(n: int, rng: np.random.Generator,
                skew: float = DEFAULT_SKEW) -> dict:
    raw = rng.zipf(skew, n)
    return {
        "N": n,
        "keys": ((raw - 1) % BINS).astype(np.int32),
        "w": rng.standard_normal(n).astype(np.float32),
        "hist": np.zeros(BINS, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    out = np.zeros(BINS, dtype=np.float64)
    np.add.at(out, inputs["keys"], inputs["w"].astype(np.float64))
    return {"hist": out.astype(np.float32)}


HISTOGRAM = register(
    Benchmark(
        name="histogram",
        description="Weighted 64-bin histogram via global atomicAdd "
                    "(contention set by key skew)",
        specs=(HIST_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(256, 512, 1024, 2048, 4096),
        param_env=lambda n: {"N": n},
        output_names=("hist",),
        tags=("irregular", "reduction", "memory-bound"),
    )
)
