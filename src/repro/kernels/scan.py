"""scan: tile-wise inclusive prefix sum -- Hillis-Steele in shared memory.

Block-level prefix over consecutive 128-element tiles: each tile stages
its inputs in a ``__shared__`` buffer, then runs seven Hillis-Steele
doubling rounds (``xs[lane] += xs[lane - stride]`` for lanes past the
stride) ping-ponging between two shared buffers behind ``bar.sync``.
Unlike dot's tree reduction, the *taken fraction* of each round's guard
grows from 127/128 down the rounds' strides, so warps spend most rounds
fully diverged one way or the other -- a different divergence profile
per round, all with useful work in both arms (the not-taken lanes copy
their slot forward).

Same cooperative constraints as dot (documented there): correct only
with ``TC == 128`` and ``N % (TC*BC) == 0`` so every warp reaches every
barrier the same number of times; sizes are multiples of 512 and the
emulation launch is ``(128, 4)``.
"""

from __future__ import annotations

import numpy as np

from repro.codegen import dsl
from repro.codegen.ast_nodes import Load, Store
from repro.kernels.base import Benchmark, register
from repro.ptx.isa import DType

TILE = 128

N = dsl.sparam("N")
x = dsl.farray("x")
out = dsl.farray("out")

_i = dsl.ivar("i")
_lane = dsl.ivar("lane")


def _buf(name, index):
    return Load(name, dsl._as_expr(index), DType.F32)


def _doubling_rounds():
    """Seven ping-ponged Hillis-Steele rounds, each behind a barrier.

    Guards are over the loop variable (``i % TILE``), as in dot, so the
    closed-form counting substrate evaluates the fractions exactly.
    """
    steps = []
    src, dst = "sa", "sb"
    stride = 1
    while stride < TILE:
        steps.append(dsl.when(
            (_i % TILE).ge(stride),
            [Store(dst, _lane, _buf(src, _lane) + _buf(src, _lane - stride))],
            [Store(dst, _lane, _buf(src, _lane))],
        ))
        steps.append(dsl.sync())
        src, dst = dst, src
        stride *= 2
    return steps, src  # src now names the buffer holding the result


_ROUNDS, _RESULT = _doubling_rounds()

SCAN_K = dsl.kernel(
    "scan",
    params=[N, x, out],
    body=[
        dsl.pfor(_i, N, [
            dsl.assign("lane", _i % TILE),
            Store("sa", _lane, x[_i]),
            dsl.sync(),
            *_ROUNDS,
            out.store(_i, _buf(_RESULT, _lane)),
            dsl.sync(),
        ]),
    ],
    smem_arrays=(("sa", TILE, DType.F32), ("sb", TILE, DType.F32)),
)


def tuning_space():
    """Table III with TC restricted to tile multiples and UIF pinned."""
    from repro.autotune.spec import default_tuning_spec

    return (
        default_tuning_spec()
        .restrict("TC", tuple(range(TILE, 1025, TILE)))
        .restrict("UIF", (1,))
    )


def make_inputs(n: int, rng: np.random.Generator) -> dict:
    if n % (TILE * 4):
        raise ValueError(f"scan requires N % {TILE * 4} == 0, got {n}")
    return {
        "N": n,
        "x": rng.standard_normal(n).astype(np.float32),
        "out": np.zeros(n, dtype=np.float32),
    }


def reference(inputs: dict) -> dict:
    tiles = inputs["x"].astype(np.float64).reshape(-1, TILE)
    return {"out": np.cumsum(tiles, axis=1).reshape(-1).astype(np.float32)}


SCAN = register(
    Benchmark(
        name="scan",
        description="Tile-wise inclusive prefix sum "
                    "(Hillis-Steele doubling in shared memory)",
        specs=(SCAN_K,),
        make_inputs=make_inputs,
        reference=reference,
        sizes=(512, 1024, 2048, 4096, 8192),
        param_env=lambda n: {"N": n},
        output_names=("out",),
        tags=("irregular", "memory-bound"),
        tuning_space=tuning_space,
        emulation_launch=lambda n: (TILE, 4),
    )
)
