"""Minimal HTTP/1.1 on ``asyncio.start_server`` -- no ``http.server``.

Just enough of the protocol for a JSON API: request-line + header
parsing, ``Content-Length``-framed bodies, keep-alive, and JSON
responses.  Strictness rules:

- request bodies and response bodies are JSON documents; responses are
  serialized with ``allow_nan=False`` so a non-finite float that escaped
  the protocol's string codec (:mod:`repro.api.protocol`) fails loudly
  at the transport instead of emitting invalid JSON;
- malformed requests answer a structured
  :class:`~repro.api.protocol.ErrorEnvelope`, never a bare string;
- handlers raise :class:`HttpError` to produce non-200 statuses.
"""

from __future__ import annotations

import asyncio
import json
import re

from repro.api.protocol import ErrorEnvelope, ProtocolError

__all__ = ["HttpError", "Request", "Router", "serve_connection"]

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 426: "Upgrade Required",
    500: "Internal Server Error",
}

PROTOCOL_HEADER = "x-repro-protocol"
"""Clients advertise their protocol version here; the server rejects an
incompatible one with 426 before touching the body."""


class HttpError(Exception):
    """Raise inside a handler to answer a non-200 status."""

    def __init__(self, status: int, code: str, message: str,
                 detail: str | None = None):
        super().__init__(message)
        self.status = status
        self.envelope = ErrorEnvelope(code=code, message=message,
                                      detail=detail)


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict, body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self):
        """The body as JSON, or a 400 :class:`HttpError`."""
        if not self.body:
            raise HttpError(400, "bad-request", "request body is empty")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise HttpError(
                400, "bad-json", f"request body is not valid JSON: {e}"
            ) from None


class Router:
    """Method + path-pattern dispatch.

    Patterns use ``{name}`` placeholders matching one path segment::

        router.add("GET", "/v1/sessions/{sid}", handler)

    Handlers are ``async def handler(request, **path_params)`` returning
    ``(status, json_document)`` or just a document (=200).
    """

    def __init__(self):
        self._routes: list[tuple[str, re.Pattern, object]] = []
        self._paths: set[str] = set()

    def add(self, method: str, pattern: str, handler) -> None:
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$"
        )
        self._routes.append((method.upper(), regex, handler))
        self._paths.add(pattern)

    def resolve(self, method: str, path: str):
        """``(handler, params)`` or an :class:`HttpError` (404/405)."""
        path_matched = False
        for m, regex, handler in self._routes:
            match = regex.match(path)
            if match is None:
                continue
            path_matched = True
            if m == method.upper():
                return handler, match.groupdict()
        if path_matched:
            raise HttpError(
                405, "method-not-allowed",
                f"{method} is not supported on {path}",
            )
        raise HttpError(404, "not-found", f"no such endpoint: {path}")


def _encode_response(status: int, doc, keep_alive: bool) -> bytes:
    body = json.dumps(doc, allow_nan=False).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as e:
        if not e.partial:
            return None  # client closed between requests: fine
        raise HttpError(400, "bad-request", "truncated request head") \
            from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "bad-request", "request head too large") \
            from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "bad-request", "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(
            400, "bad-request", f"malformed request line: {lines[0]!r}"
        )
    method, target, _version = parts
    path = target.split("?", 1)[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, "bad-request",
                            f"malformed header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    if not length.isdigit():
        raise HttpError(400, "bad-request",
                        f"bad Content-Length: {length!r}")
    n = int(length)
    if n > MAX_BODY_BYTES:
        raise HttpError(400, "bad-request", "request body too large")
    body = await reader.readexactly(n) if n else b""
    return Request(method, path, headers, body)


async def serve_connection(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           router: Router) -> None:
    """Serve one client connection: request loop with keep-alive."""
    try:
        while True:
            keep_alive = False
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                handler, params = router.resolve(
                    request.method, request.path
                )
                result = await handler(request, **params)
                status, doc = (
                    result if isinstance(result, tuple) else (200, result)
                )
            except HttpError as e:
                status, doc = e.status, e.envelope.to_json()
            except ProtocolError as e:
                status = 400
                doc = ErrorEnvelope(
                    code="protocol-error", message=str(e)
                ).to_json()
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as e:  # handler bug: answer 500, keep serving
                status = 500
                doc = ErrorEnvelope(
                    code="internal-error",
                    message=f"{type(e).__name__}: {e}",
                ).to_json()
            writer.write(_encode_response(status, doc, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
