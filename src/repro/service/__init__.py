"""The autotuning service: an asyncio HTTP server multiplexing many
concurrent ask/tell tuning sessions over one worker fleet and one shared
measurement store.

Layers (each importable and testable on its own):

- :mod:`repro.service.store` -- the server-owned measurement database
  (:class:`~repro.engine.cache.CacheStore` promoted with schema
  versioning, LRU usage tracking and eviction);
- :mod:`repro.service.fleet` -- N drainers consuming a measurement
  queue, each wrapping a supervised
  :class:`~repro.engine.engine.SweepEngine` over the shared store;
- :mod:`repro.service.sessions` -- the session manager: one ask/tell
  strategy instance per session, driven to completion (managed mode) or
  exposed over ask/tell endpoints (external mode);
- :mod:`repro.service.http` -- minimal HTTP/1.1 on
  ``asyncio.start_server`` (stdlib-only, no ``http.server``);
- :mod:`repro.service.server` -- the composed service plus
  :class:`~repro.service.server.ThreadedServer` for tests and
  :func:`~repro.service.server.serve` for the CLI.
"""

from repro.service.server import Server, ThreadedServer, serve
from repro.service.store import STORE_SCHEMA_VERSION, MeasurementStore

__all__ = [
    "STORE_SCHEMA_VERSION",
    "MeasurementStore",
    "Server",
    "ThreadedServer",
    "serve",
]
