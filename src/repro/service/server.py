"""The composed autotuning service.

:class:`Server` wires the layers together -- store, fleet, session
manager, HTTP router -- on one asyncio event loop.  Three ways to run
it:

- ``await Server(...).start()`` inside an existing loop (tests);
- :class:`ThreadedServer`: the server on a daemon thread with its own
  loop (tests, examples, and notebook use);
- :func:`serve`: blocking foreground mode with SIGTERM/SIGINT shutdown
  and optional obs artifact export (what ``runner serve`` calls).

Endpoints (all JSON, prefix ``/v1``)::

    GET  /v1/hello                      protocol handshake (ServerInfo)
    POST /v1/sessions                   submit a TuneRequest -> SessionStatus
    GET  /v1/sessions                   all sessions' statuses
    GET  /v1/sessions/{sid}             one SessionStatus
    GET  /v1/sessions/{sid}/result      SessionResult (409 until done)
    POST /v1/sessions/{sid}/ask         external mode: next AskBatch
    POST /v1/sessions/{sid}/tell        external mode: answer a batch
    POST /v1/sessions/{sid}/cancel      cancel a session
    GET  /v1/store                      StoreStats
    POST /v1/store/flush                checkpoint + evict, then StoreStats

A client may advertise its protocol version in the ``X-Repro-Protocol``
header; an incompatible one is refused with 426 before the body is
read.  Bodies carry their own ``v`` field, enforced the same way.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
from pathlib import Path

from repro import obs
from repro.api.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServerInfo,
    StoreStats,
    TellResult,
    TuneRequest,
    check_version,
)
from repro.service.fleet import WorkerFleet
from repro.service.http import PROTOCOL_HEADER, HttpError, Router, \
    serve_connection
from repro.service.sessions import SessionError, SessionManager
from repro.service.store import MeasurementStore

__all__ = ["Server", "ThreadedServer", "serve"]


class Server:
    """The service: store + fleet + sessions behind the HTTP router.

    Parameters
    ----------
    cache_dir:
        Where the shared measurement store lives; ``None`` runs
        storeless (every session measures fresh -- tests mostly want a
        ``tmp_path`` here).
    max_entries:
        LRU cap for the store (``None`` = unbounded).
    drainers:
        Concurrent measurement jobs (fleet width).
    jobs:
        Worker processes per drainer engine (1 = inline, supervised).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache_dir=None, max_entries: int | None = None,
                 drainers: int = 2, jobs: int = 1,
                 max_sessions: int = 1024):
        self.host = host
        self.port = port
        self.store = (
            MeasurementStore(Path(cache_dir), max_entries=max_entries)
            if cache_dir is not None else None
        )
        self.fleet = WorkerFleet(self.store, drainers=drainers,
                                 drainer_jobs=jobs)
        self.sessions = SessionManager(
            self.fleet, max_sessions=max_sessions,
            on_session_finished=self._eviction_pass,
        )
        self.router = self._build_router()
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        await self.fleet.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.sessions.shutdown()
        await self.fleet.stop()
        if self.store is not None:
            self.store.flush()
            self.store.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def _on_connection(self, reader, writer) -> None:
        await serve_connection(reader, writer, self.router)

    def _eviction_pass(self, _session) -> None:
        """After every finished session: checkpoint the WAL and trim the
        store to its LRU cap."""
        if self.store is not None:
            self.store.evict()
            self.store.flush()

    # -- routing --------------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/v1/hello", self._hello)
        router.add("POST", "/v1/sessions", self._submit)
        router.add("GET", "/v1/sessions", self._list_sessions)
        router.add("GET", "/v1/sessions/{sid}", self._status)
        router.add("GET", "/v1/sessions/{sid}/result", self._result)
        router.add("POST", "/v1/sessions/{sid}/ask", self._ask)
        router.add("POST", "/v1/sessions/{sid}/tell", self._tell)
        router.add("POST", "/v1/sessions/{sid}/cancel", self._cancel)
        router.add("GET", "/v1/store", self._store_stats)
        router.add("POST", "/v1/store/flush", self._store_flush)
        return router

    @staticmethod
    def _check_request_version(request) -> None:
        advertised = request.headers.get(PROTOCOL_HEADER)
        if advertised is None:
            return
        try:
            check_version(advertised)
        except ProtocolError as e:
            raise HttpError(426, "protocol-mismatch", str(e)) from None

    def _parse_body(self, request, message_type):
        self._check_request_version(request)
        doc = request.json()
        if "v" in doc:
            try:
                check_version(doc.get("v"))
            except ProtocolError as e:
                raise HttpError(426, "protocol-mismatch", str(e)) from None
        try:
            return message_type.from_json(doc)
        except ProtocolError as e:
            raise HttpError(400, "protocol-error", str(e)) from None

    # -- handlers -------------------------------------------------------------

    async def _hello(self, request):
        self._check_request_version(request)
        return ServerInfo(
            protocol=PROTOCOL_VERSION,
            sessions=len(self.sessions),
            store_entries=len(self.store) if self.store is not None else 0,
        ).to_json()

    async def _submit(self, request):
        tr = self._parse_body(request, TuneRequest)
        try:
            session = self.sessions.create(tr)
        except SessionError as e:
            raise HttpError(e.status, e.envelope.code,
                            e.envelope.message) from None
        except ProtocolError as e:
            raise HttpError(400, "bad-request", str(e)) from None
        return session.status().to_json()

    async def _list_sessions(self, request):
        self._check_request_version(request)
        return {
            "type": "session-list", "v": PROTOCOL_VERSION,
            "sessions": [
                s.status().to_json() for s in self.sessions.all()
            ],
        }

    def _get_session(self, sid):
        try:
            return self.sessions.get(sid)
        except SessionError as e:
            raise HttpError(e.status, e.envelope.code,
                            e.envelope.message) from None

    async def _status(self, request, sid):
        self._check_request_version(request)
        return self._get_session(sid).status().to_json()

    async def _result(self, request, sid):
        self._check_request_version(request)
        session = self._get_session(sid)
        if session.state == "failed" and session.error is not None:
            raise HttpError(409, session.error.code,
                            session.error.message)
        if session.result is None:
            raise HttpError(
                409, "not-done",
                f"session {sid} is {session.state}; "
                "poll its status until it is done",
            )
        return session.result.to_json()

    async def _ask(self, request, sid):
        self._check_request_version(request)
        try:
            batch = await self.sessions.ask(sid)
        except SessionError as e:
            raise HttpError(e.status, e.envelope.code,
                            e.envelope.message) from None
        return batch.to_json()

    async def _tell(self, request, sid):
        told = self._parse_body(request, TellResult)
        try:
            status = await self.sessions.tell(sid, told)
        except SessionError as e:
            raise HttpError(e.status, e.envelope.code,
                            e.envelope.message) from None
        except (ValueError, RuntimeError) as e:
            raise HttpError(400, "bad-tell", str(e)) from None
        return status.to_json()

    async def _cancel(self, request, sid):
        self._check_request_version(request)
        try:
            session = self.sessions.cancel(sid)
        except SessionError as e:
            raise HttpError(e.status, e.envelope.code,
                            e.envelope.message) from None
        return session.status().to_json()

    async def _store_stats(self, request):
        self._check_request_version(request)
        return self._stats().to_json()

    async def _store_flush(self, request):
        self._check_request_version(request)
        if self.store is not None:
            self.store.evict()
            self.store.flush()
        return self._stats().to_json()

    def _stats(self) -> StoreStats:
        store = self.store
        return StoreStats(
            entries=len(store) if store is not None else 0,
            hits=store.hits if store is not None else 0,
            misses=store.misses if store is not None else 0,
            corrupt=store.corrupt if store is not None else 0,
            evicted=getattr(store, "evicted", 0) if store is not None else 0,
            measured=self.fleet.total_measured,
            served_from_cache=self.fleet.total_hits,
            sessions=len(self.sessions),
            max_entries=getattr(store, "max_entries", None)
            if store is not None else None,
            schema_version=getattr(store, "schema_version", 0)
            if store is not None else 0,
        )


class ThreadedServer:
    """A :class:`Server` on a daemon thread with its own event loop.

    What tests and the bundled example use::

        with ThreadedServer(cache_dir=tmp) as server:
            client = connect(server.url)
            ...
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self.server: Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop = loop.create_future()
        self._stop_future = stop

        async def main():
            try:
                self.server = Server(**self._kwargs)
                await self.server.start()
            except BaseException as e:
                self._startup_error = e
                self._ready.set()
                return
            self._ready.set()
            await stop
            await self.server.stop()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def stop(self) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(
            lambda: self._stop_future.done()
            or self._stop_future.set_result(None)
        )
        self._thread.join(timeout=30)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()


def serve(host: str = "127.0.0.1", port: int = 8737, cache_dir=None,
          max_entries: int | None = None, drainers: int = 2,
          jobs: int = 1, trace=None, metrics=None,
          ready_message: bool = True) -> int:
    """Run the service in the foreground until SIGTERM/SIGINT.

    ``trace``/``metrics`` enable observability and export the artifacts
    on shutdown (what CI's ``service`` job validates).  Returns the exit
    status (0 on clean shutdown).
    """
    if trace is not None or metrics is not None:
        obs.enable()

    async def main() -> int:
        server = Server(host=host, port=port, cache_dir=cache_dir,
                        max_entries=max_entries, drainers=drainers,
                        jobs=jobs)
        await server.start()
        if ready_message:
            print(f"[service] listening on {server.url} "
                  f"(protocol {PROTOCOL_VERSION})", file=sys.stderr,
                  flush=True)
        stop = asyncio.get_running_loop().create_future()

        def request_stop(signame: str) -> None:
            if not stop.done():
                stop.set_result(signame)

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, request_stop, sig.name
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-unix event loops
        signame = await stop
        print(f"[service] {signame} received; shutting down",
              file=sys.stderr, flush=True)
        await server.stop()
        return 0

    try:
        rc = asyncio.run(main())
    except KeyboardInterrupt:
        rc = 130
    finally:
        if trace is not None:
            obs.write_trace(trace)
            print(f"[obs] trace written to {trace}", file=sys.stderr)
        if metrics is not None:
            obs.write_metrics(metrics)
            print(f"[obs] metrics written to {metrics}", file=sys.stderr)
    return rc
