"""The worker fleet: N drainers consuming a shared measurement queue.

Every managed session turns each ask/tell round into one *measurement
job* -- a ``(benchmark, gpu, [(config, size), ...])`` batch.  Jobs from
all sessions land on one :class:`asyncio.Queue`; each of the fleet's N
drainers owns a supervised :class:`~repro.engine.engine.SweepEngine`
over the *shared* :class:`~repro.service.store.MeasurementStore` and
drains jobs off the queue on a worker thread (``asyncio.to_thread``), so
the event loop never blocks on a sweep.

Determinism: a session submits exactly one job per round and awaits it,
so its results always come back in request order regardless of which
drainer ran them or how the queue interleaved sessions -- and the
engine's own canonical-order reassembly plus the deterministic timing
model make the measurements byte-identical to a serial in-process run
(the acceptance test asserts exactly this across >=4 concurrent
sessions).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field

from repro import obs

__all__ = ["FleetError", "WorkerFleet"]


class FleetError(RuntimeError):
    """A measurement job failed (quarantined work items or a worker
    fault that supervision could not recover)."""


@dataclass
class _Job:
    benchmark: object
    gpu: object
    pairs: list
    params: object
    repetitions: int
    trial_index: int
    parent_span_id: str
    future: asyncio.Future = field(repr=False, default=None)


class WorkerFleet:
    """N queue drainers over one shared measurement store.

    Parameters
    ----------
    store:
        The shared :class:`~repro.service.store.MeasurementStore` (or
        any :class:`~repro.engine.cache.CacheStore`); may be ``None``
        for a storeless fleet (everything is measured fresh).
    drainers:
        Concurrent jobs in flight (one engine each).
    drainer_jobs:
        Worker *processes* per engine; the default 1 runs each job
        inline on the drainer thread under full supervision.
    """

    def __init__(self, store=None, drainers: int = 2,
                 drainer_jobs: int = 1):
        if drainers < 1:
            raise ValueError("fleet needs at least one drainer")
        self.store = store
        self.drainers = int(drainers)
        self.drainer_jobs = drainer_jobs
        self._queue: asyncio.Queue = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._engines: list = []
        self._stats_lock = threading.Lock()
        self.total_measured = 0
        """Fresh measurements over the fleet's lifetime."""
        self.total_hits = 0
        """Store hits over the fleet's lifetime."""
        self.jobs_done = 0

    @property
    def started(self) -> bool:
        return bool(self._tasks)

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    async def start(self) -> None:
        if self._tasks:
            return
        from repro.engine import SweepEngine

        for i in range(self.drainers):
            # the shared store is a CacheStore *instance*, so no engine
            # ever closes it (engines only own caches they opened)
            engine = SweepEngine(jobs=self.drainer_jobs, cache=self.store)
            self._engines.append(engine)
            self._tasks.append(
                asyncio.create_task(
                    self._drain(engine), name=f"fleet-drainer-{i}"
                )
            )

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        for engine in self._engines:
            engine.close()
        self._engines = []
        # fail anything still queued rather than stranding its waiter
        while not self._queue.empty():
            job = self._queue.get_nowait()
            if job.future is not None and not job.future.done():
                job.future.set_exception(
                    FleetError("fleet stopped before the job ran")
                )

    async def measure(self, benchmark, gpu, pairs, params,
                      repetitions: int = 10, trial_index: int = 4,
                      parent_span_id: str = "") -> list:
        """Enqueue one measurement batch; await its results (input
        order).  Raises :class:`FleetError` if any point was quarantined
        -- a session must never silently receive a partial batch."""
        if not self._tasks:
            raise RuntimeError("fleet is not started")
        job = _Job(
            benchmark=benchmark, gpu=gpu, pairs=list(pairs), params=params,
            repetitions=repetitions, trial_index=trial_index,
            parent_span_id=parent_span_id,
            future=asyncio.get_running_loop().create_future(),
        )
        await self._queue.put(job)
        obs.set_gauge("service.queue_depth", self._queue.qsize())
        return await job.future

    # -- internals -----------------------------------------------------------

    async def _drain(self, engine) -> None:
        while True:
            job = await self._queue.get()
            try:
                result = await asyncio.to_thread(self._run_job, engine, job)
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.set_exception(
                        FleetError("fleet stopped while the job ran")
                    )
                raise
            except BaseException as e:
                if not job.future.done():
                    job.future.set_exception(e)
            else:
                if not job.future.done():
                    job.future.set_result(result)
            finally:
                self._queue.task_done()

    def _run_job(self, engine, job: _Job) -> list:
        """Run one batch through this drainer's engine (worker thread).

        The ambient span stack is thread-local, so the session's round
        span is attached explicitly to parent the engine's batch span.
        """
        with obs.attach(job.parent_span_id):
            measurements = engine.run(
                job.benchmark, job.gpu, job.pairs, params=job.params,
                repetitions=job.repetitions, trial_index=job.trial_index,
            )
        if engine.last_failures:
            quarantined = sorted(
                i for f in engine.last_failures for i in f.indices
            )
            raise FleetError(
                f"{len(quarantined)} work item(s) quarantined after retry "
                f"exhaustion (batch indices {quarantined[:5]}); "
                "the session cannot receive a partial batch"
            )
        stats = engine.last_stats
        with self._stats_lock:
            self.jobs_done += 1
            if stats is not None:
                self.total_measured += stats.measured
                self.total_hits += stats.hits
        if stats is not None:
            obs.add("service.fleet_measured", stats.measured)
            obs.add("service.fleet_store_hits", stats.hits)
        return measurements
