"""The session manager: many concurrent ask/tell strategies, one fleet.

A *session* is one strategy instance (:class:`~repro.autotune.search.base.Search`)
plus its request context.  Two modes:

- **managed** -- the server drives the exact loop
  :meth:`Search.search() <repro.autotune.search.base.Search.search>`
  runs in-process (reset -> ask(remaining) -> measure -> tell -> ... ->
  result), with the measurement step routed through the
  :class:`~repro.service.fleet.WorkerFleet`.  Because the loop, the
  strategy code, the engine, and the deterministic timing model are all
  shared with the library path, a managed session's
  :class:`~repro.api.protocol.SessionResult` is byte-identical to
  :func:`repro.api.tune` of the same request.
- **external** -- the server only hosts the strategy: the client pulls
  :class:`~repro.api.protocol.AskBatch` es, measures on its own
  hardware, and pushes :class:`~repro.api.protocol.TellResult` s.

Observability: each session records a deterministic ``session`` span
(ID derived from the session id via
:func:`repro.obs.trace.child_id`) with one ``round`` span per ask/tell
round; the fleet's engine spans parent under the round span.  Spans are
recorded through :func:`repro.obs.record_span` when each unit finishes,
so a trace exported at shutdown validates even with sessions mid-flight.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro import obs
from repro.api.local import resolve_request
from repro.api.protocol import (
    AskBatch,
    ErrorEnvelope,
    SessionResult,
    SessionStatus,
    TellResult,
    TuneRequest,
)
from repro.obs.trace import ROOT, child_id

__all__ = ["Session", "SessionError", "SessionManager"]


class SessionError(Exception):
    """A session-level failure with a structured envelope and an HTTP
    status for the transport layer."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.envelope = ErrorEnvelope(code=code, message=message)


class Session:
    """One tuning session: request context + live strategy state."""

    def __init__(self, session_id: str, request: TuneRequest,
                 benchmark, gpu, space, strategy):
        self.session_id = session_id
        self.request = request
        self.benchmark = benchmark
        self.gpu = gpu
        self.space = space
        self.strategy = strategy
        self.state = "pending"
        self.rounds = 0
        self.measurements: list = []
        """Every variant measured for this session, in evaluation order
        (empty for external sessions -- the client measured)."""
        self.driver: asyncio.Task | None = None
        self.error: ErrorEnvelope | None = None
        self.result: SessionResult | None = None
        self.started_s = time.time()
        self._t0 = time.monotonic()
        self._finished = asyncio.Event()
        self._lock = asyncio.Lock()
        """External-mode ask/tell must serialize: the strategy is not
        reentrant."""
        self._pending: list | None = None
        self._pending_round: int | None = None
        self.span_id = child_id(ROOT, "session", session_id)
        """Deterministic root of this session's trace subtree."""

    # -- observability --------------------------------------------------------

    def round_span_id(self, round_no: int) -> str:
        return child_id(self.span_id, "round", round_no)

    def _record_round_span(self, round_no: int, start_s: float,
                           t0: float, batch: int) -> None:
        obs.record_span(
            self.round_span_id(round_no), self.span_id, "round", round_no,
            start_s, time.monotonic() - t0,
            args={"strategy": self.strategy.name, "batch": batch},
        )
        obs.add("service.rounds", strategy=self.strategy.name)

    def _record_session_span(self) -> None:
        obs.record_span(
            self.span_id, ROOT, "session", self.session_id,
            self.started_s, time.monotonic() - self._t0,
            args={
                "kernel": self.request.kernel,
                "gpu": self.request.gpu,
                "strategy": self.strategy.name,
                "mode": self.request.mode,
                "state": self.state,
                "rounds": self.rounds,
            },
        )

    # -- lifecycle ------------------------------------------------------------

    def finish(self, state: str, error: ErrorEnvelope | None = None) -> None:
        if self.state in ("done", "failed", "cancelled"):
            return
        self.state = state
        self.error = error
        self._record_session_span()
        obs.add("service.sessions_finished", state=state)
        self._finished.set()

    async def wait(self, timeout: float | None = None) -> bool:
        try:
            await asyncio.wait_for(self._finished.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- progress snapshots ---------------------------------------------------

    def status(self) -> SessionStatus:
        best_config, best_value = None, None
        strategy = self.strategy
        # _best_config exists once reset() ran (pending sessions: not yet)
        if getattr(strategy, "evaluations", 0):
            try:
                sr = strategy.result()
                best_config, best_value = sr.best_config, sr.best_value
            except ValueError:
                pass
        return SessionStatus(
            session_id=self.session_id,
            state=self.state,
            kernel=self.request.kernel,
            gpu=self.request.gpu,
            size=self.request.size,
            search=self.request.search,
            mode=self.request.mode,
            rounds=self.rounds,
            evaluations=getattr(strategy, "evaluations", 0),
            best_value=best_value,
            best_config=best_config,
            error=self.error,
        )


class SessionManager:
    """Creates, drives, and indexes sessions over one shared fleet."""

    def __init__(self, fleet, max_sessions: int = 1024,
                 on_session_finished=None):
        self.fleet = fleet
        self.max_sessions = max_sessions
        self.on_session_finished = on_session_finished
        """Optional callback run after each session reaches a terminal
        state (the server hooks its store-eviction pass here)."""
        self._sessions: dict[str, Session] = {}
        self._counter = itertools.count(1)
        self._drivers: set[asyncio.Task] = set()

    def _session_finished(self, session: Session) -> None:
        if self.on_session_finished is not None:
            try:
                self.on_session_finished(session)
            except Exception:
                pass  # maintenance must never take a session down

    # -- registry -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def all(self) -> list[Session]:
        return list(self._sessions.values())

    def get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(
                404, "unknown-session", f"no such session: {session_id!r}"
            )
        return session

    # -- creation -------------------------------------------------------------

    def create(self, request: TuneRequest) -> Session:
        """Validate a request, instantiate its strategy, register the
        session, and (managed mode) start its driver task."""
        if len(self._sessions) >= self.max_sessions:
            raise SessionError(
                409, "too-many-sessions",
                f"server at its session cap ({self.max_sessions})",
            )
        benchmark, gpu, space = resolve_request(request)
        if space is None:
            space = benchmark.default_space()
        from repro.autotune.tuner import Autotuner

        tuner = Autotuner(benchmark, gpu, space=space)
        strategy = tuner.make_search(
            request.search, use_rule=request.use_rule, size=request.size,
            **dict(request.search_args),
        )
        session_id = f"s{next(self._counter):04d}-{request.tenant}"
        session = Session(session_id, request, benchmark, gpu, space,
                          strategy)
        self._sessions[session_id] = session
        obs.add("service.sessions", mode=request.mode,
                strategy=strategy.name)
        if request.mode == "managed":
            task = asyncio.create_task(
                self._drive(session), name=f"session-{session_id}"
            )
            session.driver = task
            self._drivers.add(task)
            task.add_done_callback(self._drivers.discard)
        else:
            # external sessions start on the first ask
            session.state = "waiting"
        return session

    def cancel(self, session_id: str) -> Session:
        session = self.get(session_id)
        if session.driver is not None and not session.driver.done():
            session.driver.cancel()
        else:
            session.finish("cancelled")
        return session

    async def shutdown(self) -> None:
        """Cancel every driver; mark unfinished sessions cancelled (which
        records their spans, keeping an exported trace parent-complete)."""
        for task in list(self._drivers):
            task.cancel()
        if self._drivers:
            await asyncio.gather(*self._drivers, return_exceptions=True)
        for session in self._sessions.values():
            session.finish("cancelled")

    # -- managed mode ---------------------------------------------------------

    async def _drive(self, session: Session) -> None:
        """The server-side replica of ``Search.search()``'s driver loop,
        with the measurement step routed through the fleet.  Heavy
        strategy work (``reset`` compiles under static search) runs on a
        worker thread."""
        strategy = session.strategy
        request = session.request
        session.state = "running"
        try:
            await asyncio.to_thread(
                strategy.reset, session.space, request.budget
            )
            while not strategy.done:
                k = strategy.remaining
                if k is not None and k <= 0:
                    break
                configs = await asyncio.to_thread(strategy.ask, k)
                if not configs:
                    break
                round_no = session.rounds
                start_s, t0 = time.time(), time.monotonic()
                values = await self._measure(session, configs, round_no)
                strategy.tell(configs, values)
                session._record_round_span(round_no, start_s, t0,
                                           len(configs))
                session.rounds += 1
            sr = strategy.result()
            session.result = SessionResult.from_search(
                session.session_id, sr,
                measurements=session.measurements,
            )
            session.finish("done")
        except asyncio.CancelledError:
            session.finish("cancelled")
            raise
        except Exception as e:
            session.finish("failed", ErrorEnvelope(
                code="session-failed",
                message=f"{type(e).__name__}: {e}",
            ))
        finally:
            self._session_finished(session)

    async def _measure(self, session: Session, configs: list,
                       round_no: int) -> list:
        from repro.sim.timing import DEFAULT_PARAMS

        measurements = await self.fleet.measure(
            session.benchmark, session.gpu,
            [(config, session.request.size) for config in configs],
            params=DEFAULT_PARAMS,
            parent_span_id=session.round_span_id(round_no),
        )
        session.measurements.extend(measurements)
        return [m.seconds for m in measurements]

    # -- external mode --------------------------------------------------------

    def _require_external(self, session: Session) -> None:
        if session.request.mode != "external":
            raise SessionError(
                409, "managed-session",
                f"session {session.session_id} is managed; "
                "poll its status and result instead of ask/tell",
            )

    async def ask(self, session_id: str) -> AskBatch:
        """The next proposal batch of an external session."""
        session = self.get(session_id)
        self._require_external(session)
        async with session._lock:
            if session.state in ("done", "failed", "cancelled"):
                return AskBatch(
                    session_id=session_id, round=session.rounds,
                    configs=(), remaining=0, done=True,
                )
            if session._pending is not None:
                raise SessionError(
                    409, "tell-pending",
                    "the previous batch has not been answered "
                    "(one tell per ask)",
                )
            strategy = session.strategy
            if session._pending_round is None:
                # first ask: reset runs here (compiles, under static
                # search, so it goes to a worker thread)
                await asyncio.to_thread(
                    strategy.reset, session.space, session.request.budget
                )
                session._pending_round = -1
                session.state = "running"
            k = strategy.remaining
            configs = []
            if not strategy.done and (k is None or k > 0):
                configs = await asyncio.to_thread(strategy.ask, k)
            if not configs:
                self._finalize_external(session)
                return AskBatch(
                    session_id=session_id, round=session.rounds,
                    configs=(), remaining=strategy.remaining, done=True,
                )
            session._pending = configs
            session.state = "waiting"
            return AskBatch(
                session_id=session_id, round=session.rounds,
                configs=tuple(dict(c) for c in configs),
                remaining=strategy.remaining, done=False,
            )

    async def tell(self, session_id: str, told: TellResult) -> SessionStatus:
        """Answer an external session's pending batch."""
        session = self.get(session_id)
        self._require_external(session)
        async with session._lock:
            if session._pending is None:
                raise SessionError(
                    409, "no-pending-ask", "tell without a pending ask"
                )
            if told.round != session.rounds:
                raise SessionError(
                    409, "round-mismatch",
                    f"tell answers round {told.round} but round "
                    f"{session.rounds} is pending",
                )
            if len(told.values) != len(session._pending):
                raise SessionError(
                    400, "batch-mismatch",
                    f"{len(session._pending)} configurations were asked "
                    f"but {len(told.values)} values were told",
                )
            strategy = session.strategy
            start_s, t0 = time.time(), time.monotonic()
            strategy.tell(session._pending, list(told.values))
            session._record_round_span(session.rounds, start_s, t0,
                                       len(session._pending))
            session.rounds += 1
            session._pending = None
            session.state = "running"
            k = strategy.remaining
            if strategy.done or (k is not None and k <= 0):
                self._finalize_external(session)
            else:
                session.state = "waiting"
            return session.status()

    def _finalize_external(self, session: Session) -> None:
        try:
            sr = session.strategy.result()
        except ValueError as e:
            session.finish("failed", ErrorEnvelope(
                code="session-failed", message=str(e),
            ))
            self._session_finished(session)
            return
        session.result = SessionResult.from_search(
            session.session_id, sr, measurements=(),
        )
        session.finish("done")
        self._session_finished(session)
