"""The server-owned, multi-tenant measurement store.

:class:`MeasurementStore` is the engine's on-disk cache
(:class:`~repro.engine.cache.CacheStore`) promoted to a long-lived,
server-owned WAL database shared by every tuning session:

- **content addressing** is unchanged -- keys come from
  :func:`repro.engine.cache.measurement_key` /
  :func:`repro.util.hashing.stable_hash`, so any session measuring the
  same ``(kernel, GPU, config, size, model)`` point hits the same row
  regardless of which tenant or strategy produced it;
- **schema versioning**: a ``meta`` table records the store schema; an
  incompatible store found on disk is emptied and rebuilt rather than
  misread (measurements are a cache -- rebuilding costs time, never
  correctness);
- **LRU usage tracking**: every get/put stamps the touched keys with a
  monotonic tick in a ``usage`` table, and :meth:`evict` deletes the
  least-recently-used overflow beyond ``max_entries``, so a long-running
  server's database stays bounded;
- **thread safety** comes from the base class's per-thread connections
  (every drainer thread gets its own WAL connection with its own
  ``busy_timeout``); the tick counter is the only shared state and is
  lock-guarded here.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path

from repro.engine.cache import CacheStore

__all__ = ["STORE_SCHEMA_VERSION", "MeasurementStore"]

STORE_SCHEMA_VERSION = 1
"""Bump when the service-side tables (meta/usage) change shape."""

_META_SCHEMA_KEY = "store_schema"


class MeasurementStore(CacheStore):
    """A :class:`CacheStore` with schema versioning and LRU eviction.

    ``max_entries`` bounds the measurement table; ``None`` means
    unbounded (eviction passes become no-ops).
    """

    def __init__(self, path: str | Path | None = None,
                 max_entries: int | None = None):
        self.max_entries = max_entries
        self.evicted = 0
        """Measurements deleted by LRU eviction over this store's life."""
        self._tick_lock = threading.Lock()
        self._tick = 0
        super().__init__(path)
        self._adopt_or_rebuild()
        row = self._conn.execute("SELECT MAX(tick) FROM usage").fetchone()
        self._tick = int(row[0] or 0)

    # -- schema --------------------------------------------------------------

    def _schema(self, conn: sqlite3.Connection) -> None:
        super()._schema(conn)
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            " key TEXT PRIMARY KEY,"
            " value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS usage ("
            " key TEXT PRIMARY KEY,"
            " tick INTEGER NOT NULL)"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS usage_by_tick ON usage (tick)"
        )

    def _adopt_or_rebuild(self) -> None:
        """Accept a store written by this schema; empty anything else."""
        conn = self._conn
        row = conn.execute(
            "SELECT value FROM meta WHERE key = ?", (_META_SCHEMA_KEY,)
        ).fetchone()
        found = int(row[0]) if row and str(row[0]).isdigit() else None
        if found != STORE_SCHEMA_VERSION:
            if found is not None or len(self):
                # a populated store from another schema: rebuild empty
                conn.execute("DELETE FROM measurements")
                conn.execute("DELETE FROM quarantine")
                conn.execute("DELETE FROM usage")
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (_META_SCHEMA_KEY, str(STORE_SCHEMA_VERSION)),
            )
            conn.commit()

    @property
    def schema_version(self) -> int:
        return STORE_SCHEMA_VERSION

    # -- LRU bookkeeping -----------------------------------------------------

    def _touch(self, keys) -> None:
        keys = list(keys)
        if not keys:
            return
        with self._tick_lock:
            start = self._tick
            self._tick += len(keys)
        self._conn.executemany(
            "INSERT OR REPLACE INTO usage (key, tick) VALUES (?, ?)",
            [(k, start + i) for i, k in enumerate(keys)],
        )
        self._conn.commit()

    def get(self, key: str):
        m = super().get(key)
        if m is not None:
            self._touch([key])
        return m

    def get_many(self, keys) -> dict:
        found = super().get_many(keys)
        self._touch(found)
        return found

    def put_many(self, items) -> None:
        items = list(items)
        super().put_many(items)
        self._touch(k for k, _m in items)

    def clear(self) -> None:
        super().clear()
        self._conn.execute("DELETE FROM usage")
        self._conn.commit()

    # -- eviction ------------------------------------------------------------

    def evict(self, max_entries: int | None = None) -> int:
        """Delete the least-recently-used measurements beyond the cap;
        return how many were evicted.  Safe to run while sessions are
        active (a session losing a row simply re-measures it)."""
        cap = self.max_entries if max_entries is None else max_entries
        if cap is None:
            return 0
        conn = self._conn
        excess = len(self) - cap
        if excess <= 0:
            return 0
        victims = [row[0] for row in conn.execute(
            # never-touched rows (no usage stamp) are the coldest of all
            "SELECT m.key FROM measurements m"
            " LEFT JOIN usage u ON u.key = m.key"
            " ORDER BY u.tick IS NOT NULL, u.tick"
            " LIMIT ?",
            (excess,),
        ).fetchall()]
        conn.executemany(
            "DELETE FROM measurements WHERE key = ?",
            [(k,) for k in victims],
        )
        conn.executemany(
            "DELETE FROM usage WHERE key = ?", [(k,) for k in victims]
        )
        conn.commit()
        self.evicted += len(victims)
        self.flush()
        return len(victims)
