"""The repo-wide stable content digest.

Everything that needs a deterministic identity -- cache keys, chaos
fault rolls, retry jitter, trace span IDs -- derives it from
:func:`stable_hash`, so "same content, same identity" holds across
processes and interpreter runs.  The helper lives here (leaf of the
import graph) so low-level packages like :mod:`repro.obs` can use it
without importing the engine; :mod:`repro.engine.cache` re-exports it
for its historical callers.
"""

from __future__ import annotations

import hashlib
import json


def stable_hash(obj) -> str:
    """SHA-256 hex digest of an object's canonical JSON form.

    ``sort_keys`` makes dict ordering irrelevant; non-JSON values fall
    back to ``repr`` (deterministic for the dataclasses used here).
    """
    blob = json.dumps(obj, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()
