"""Deterministic RNG policy.

Every stochastic component (measurement noise, random/genetic/annealing
search) derives its generator from a textual scope key, so experiments are
reproducible run-to-run and independent of module import order.
"""

from __future__ import annotations

import hashlib

import numpy as np

GLOBAL_SEED = 0x5CA1AB1E
"""Project-wide base seed; combine with a scope string via :func:`rng_for`."""


def rng_for(*scope, seed: int | None = None) -> np.random.Generator:
    """Return a Generator seeded deterministically from ``scope`` parts.

    >>> a = rng_for("measure", "atax", "K20")
    >>> b = rng_for("measure", "atax", "K20")
    >>> float(a.random()) == float(b.random())
    True
    """
    base = GLOBAL_SEED if seed is None else seed
    key = "|".join(str(s) for s in scope).encode()
    digest = hashlib.sha256(key + base.to_bytes(8, "little", signed=False)).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))
