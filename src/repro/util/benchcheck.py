"""Benchmark-regression gate for CI.

Compares two ``pytest-benchmark --benchmark-json`` files and fails when
any benchmark matching the watched name patterns slowed down by more
than the threshold on its median.  Used by the ``benchmarks`` CI job to
compare every run against the baseline JSON cached from the last push to
``main``::

    python -m repro.util.benchcheck bench.json baseline/bench.json \
        --threshold 0.30 --pattern emulator --pattern sweep

A missing baseline is not an error (first run on a fresh cache); the
comparison simply reports that nothing was compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_PATTERNS = ("emulator", "sweep")
"""Benchmarks watched by default: the emulator fast path and the engine
sweep/cache paths -- the two hot paths with asserted speedup bars."""


def load_medians(path: str | Path) -> dict[str, float]:
    """``fullname -> median seconds`` from a pytest-benchmark JSON file."""
    data = json.loads(Path(path).read_text())
    return {
        b["fullname"]: float(b["stats"]["median"])
        for b in data.get("benchmarks", [])
    }


def find_regressions(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = 0.30,
    patterns: tuple[str, ...] = DEFAULT_PATTERNS,
) -> list[tuple[str, float, float, float]]:
    """Watched benchmarks whose median slowed by more than ``threshold``.

    Returns ``(fullname, baseline_median, current_median, ratio)`` rows,
    worst first.  Benchmarks absent from the baseline are new and never
    regressions; benchmarks matching no pattern are not watched.
    """
    out = []
    for name, cur in sorted(current.items()):
        if patterns and not any(p in name for p in patterns):
            continue
        base = baseline.get(name)
        if base is None or base <= 0:
            continue
        ratio = cur / base
        if ratio > 1.0 + threshold:
            out.append((name, base, cur, ratio))
    out.sort(key=lambda r: r[3], reverse=True)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.util.benchcheck",
        description="Fail on pytest-benchmark median regressions.",
    )
    parser.add_argument("current", help="benchmark JSON of this run")
    parser.add_argument("baseline", help="benchmark JSON of the baseline")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed median slowdown (default 0.30)")
    parser.add_argument("--pattern", action="append", default=None,
                        help="watched fullname substring (repeatable; "
                             f"default {list(DEFAULT_PATTERNS)})")
    args = parser.parse_args(argv)
    patterns = tuple(args.pattern) if args.pattern else DEFAULT_PATTERNS

    if not Path(args.baseline).exists():
        print(f"benchcheck: no baseline at {args.baseline}; "
              "nothing to compare (first run?)")
        return 0
    current = load_medians(args.current)
    baseline = load_medians(args.baseline)
    watched = [
        n for n in sorted(current)
        if not patterns or any(p in n for p in patterns)
    ]
    for name in watched:
        base = baseline.get(name)
        cur = current[name]
        note = f"{cur / base:6.2f}x vs baseline" if base else "   new"
        print(f"  {cur * 1e3:9.1f} ms  {note}  {name}")

    regressions = find_regressions(current, baseline,
                                   threshold=args.threshold,
                                   patterns=patterns)
    if regressions:
        print(f"\nbenchcheck: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for name, base, cur, ratio in regressions:
            print(f"  {name}: {base * 1e3:.1f} ms -> {cur * 1e3:.1f} ms "
                  f"({ratio:.2f}x)")
        return 1
    print(f"\nbenchcheck: {len(watched)} watched benchmark(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
