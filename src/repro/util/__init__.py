"""Shared utilities: ASCII tables/plots, statistics helpers, RNG policy."""

from repro.util.tables import ascii_table, ascii_bar_chart, ascii_histogram
from repro.util.stats import (
    mean_absolute_error,
    sum_squared_error,
    mode,
    percentile,
    normalize,
    describe,
)
from repro.util.rng import rng_for

__all__ = [
    "ascii_table",
    "ascii_bar_chart",
    "ascii_histogram",
    "mean_absolute_error",
    "sum_squared_error",
    "mode",
    "percentile",
    "normalize",
    "describe",
    "rng_for",
]
