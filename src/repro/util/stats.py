"""Statistics helpers used across experiments.

These implement exactly the aggregate statistics the paper reports: mean
absolute error (Fig. 5), sum-of-squares error rates (Table VI), mode and
quartiles (Table V), and min-max normalization for comparing predicted
against measured execution-time profiles.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np


def mean_absolute_error(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """MAE between two equal-length sequences (paper Fig. 5 metric)."""
    p = np.asarray(predicted, dtype=float)
    o = np.asarray(observed, dtype=float)
    if p.shape != o.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {o.shape}")
    if p.size == 0:
        raise ValueError("empty input")
    return float(np.mean(np.abs(p - o)))


def sum_squared_error(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Sum-of-squares error (paper Table VI metric)."""
    p = np.asarray(predicted, dtype=float)
    o = np.asarray(observed, dtype=float)
    if p.shape != o.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {o.shape}")
    return float(np.sum((p - o) ** 2))


def mode(values: Sequence[float]) -> float:
    """Most frequent value; ties break toward the smaller value."""
    if len(values) == 0:
        raise ValueError("mode of empty sequence")
    counts = Counter(values)
    best = max(counts.items(), key=lambda kv: (kv[1], -float(kv[0])))
    return best[0]


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100), linear interpolation (numpy default)."""
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def normalize(values: Sequence[float]) -> np.ndarray:
    """Min-max normalize to [0, 1]; constant sequences map to zeros."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("normalize of empty sequence")
    lo, hi = float(v.min()), float(v.max())
    if hi == lo:
        return np.zeros_like(v)
    return (v - lo) / (hi - lo)


def describe(values: Sequence[float]) -> dict[str, float]:
    """Mean / std / mode / quartiles bundle used by Table V rows."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("describe of empty sequence")
    return {
        "mean": float(v.mean()),
        "std": float(v.std(ddof=1)) if v.size > 1 else 0.0,
        "mode": mode(list(v)),
        "p25": percentile(v, 25),
        "p50": percentile(v, 50),
        "p75": percentile(v, 75),
    }
