"""ASCII rendering for tables, bar charts and histograms.

Every experiment regenerates its paper table/figure as plain text so results
can be diffed, logged from pytest-benchmark runs, and pasted into
EXPERIMENTS.md without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt_cell(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.1f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table."""
    srows = [[_fmt_cell(c) for c in row] for row in rows]
    cols = len(headers)
    for i, r in enumerate(srows):
        if len(r) != cols:
            raise ValueError(
                f"row {i} has {len(r)} cells, expected {cols}: {r}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in srows)) if srows else len(headers[c])
        for c in range(cols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for c, cell in enumerate(cells):
            out.append(cell.rjust(widths[c]) if align_right else cell.ljust(widths[c]))
        return "| " + " | ".join(out) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in srows)
    lines.append(sep)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    fmt: str = "{:.3f}",
    max_value: float | None = None,
) -> str:
    """Horizontal bar chart; one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = max_value if max_value is not None else max([*values, 1e-12])
    lw = max((len(lab) for lab in labels), default=0)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        n = 0 if vmax <= 0 else int(round(width * max(v, 0.0) / vmax))
        lines.append(f"{label.ljust(lw)} | {'#' * n:<{width}} {fmt.format(v)}")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: Sequence[float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Histogram of ``values`` over bin edges ``bins`` (len(bins)-1 bars)."""
    import numpy as np

    counts, edges = np.histogram(np.asarray(values, dtype=float), bins=bins)
    labels = [
        f"[{edges[i]:>6.0f},{edges[i + 1]:>6.0f})" for i in range(len(counts))
    ]
    return ascii_bar_chart(
        labels, counts.tolist(), width=width, title=title, fmt="{:.0f}"
    )
