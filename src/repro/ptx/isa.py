"""Opcodes, data types and instruction categorization.

The opcode set is a compact PTX subset sufficient for the loop-nest kernels
the paper tunes (dense linear algebra and stencils): integer/floating
arithmetic, fused multiply-add, comparisons and selects, conversions,
special-function ops, loads/stores across memory spaces, branches and
barriers.

:func:`categorize` maps an (opcode, dtype) pair to the paper's Table II
category, which is the basis of every instruction-mix metric in
:mod:`repro.core.instruction_mix`.
"""

from __future__ import annotations

import enum

from repro.arch.throughput import InstrCategory


class DType(enum.Enum):
    """Operand data types (PTX naming)."""

    PRED = "pred"
    S32 = "s32"
    U32 = "u32"
    S64 = "s64"
    F32 = "f32"
    F64 = "f64"

    @property
    def nbytes(self) -> int:
        return {
            DType.PRED: 1,
            DType.S32: 4,
            DType.U32: 4,
            DType.S64: 8,
            DType.F32: 4,
            DType.F64: 8,
        }[self]

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def is_int(self) -> bool:
        return self in (DType.S32, DType.U32, DType.S64)

    @property
    def is_64bit(self) -> bool:
        return self in (DType.S64, DType.F64)


class MemSpace(enum.Enum):
    """PTX state spaces relevant to our kernels."""

    GLOBAL = "global"
    SHARED = "shared"
    PARAM = "param"
    LOCAL = "local"


class CmpOp(enum.Enum):
    """Comparison operators for ``setp``."""

    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"


class SRegKind(enum.Enum):
    """Special (read-only) registers."""

    TID_X = "tid.x"
    NTID_X = "ntid.x"
    CTAID_X = "ctaid.x"
    NCTAID_X = "nctaid.x"
    TID_Y = "tid.y"
    NTID_Y = "ntid.y"
    CTAID_Y = "ctaid.y"
    NCTAID_Y = "nctaid.y"
    LANEID = "laneid"


class Opcode(enum.Enum):
    """The instruction opcodes of the virtual ISA."""

    # arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MULWIDE = "mul.wide"  # 32-bit operands, 64-bit result (addressing)
    MAD = "mad"  # d = a*b + c (integer) / fma (float)
    FMA = "fma"
    DIV = "div"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    # bitwise / shift
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # compare / select
    SETP = "setp"
    SELP = "selp"
    # conversion
    CVT = "cvt"
    # special function unit
    RCP = "rcp"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EX2 = "ex2"
    LG2 = "lg2"
    SIN = "sin"
    COS = "cos"
    # data movement
    MOV = "mov"
    LD = "ld"
    ST = "st"
    RED = "red"  # atomic reduction add to memory
    # control
    BRA = "bra"
    BAR = "bar.sync"
    RET = "ret"
    EXIT = "exit"


#: Opcodes executed by the special function unit; always LogSinCos category.
SFU_OPS = frozenset(
    {Opcode.RCP, Opcode.SQRT, Opcode.RSQRT, Opcode.EX2, Opcode.LG2,
     Opcode.SIN, Opcode.COS, Opcode.DIV}
)

#: Opcodes that end a basic block.
TERMINATORS = frozenset({Opcode.BRA, Opcode.RET, Opcode.EXIT})

#: Opcodes with no destination register.
NO_DEST = frozenset(
    {Opcode.ST, Opcode.RED, Opcode.BRA, Opcode.BAR, Opcode.RET, Opcode.EXIT}
)

_FLOAT_ARITH = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MAD, Opcode.FMA,
     Opcode.NEG, Opcode.ABS}
)
_INT_ARITH = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MULWIDE, Opcode.MAD,
     Opcode.NEG, Opcode.ABS}
)
_SHIFT_LOGIC = frozenset(
    {Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHL, Opcode.SHR}
)


def categorize(opcode: Opcode, dtype: DType | None) -> InstrCategory:
    """Map an (opcode, dtype) pair to its paper Table II category.

    FMA counts as a single instruction of its dtype's floating class, like
    the hardware issue slot it occupies.  Divides and transcendental ops go
    to the special-function (LogSinCos) category on every architecture.
    """
    if opcode in SFU_OPS:
        return InstrCategory.LOG_SIN_COS
    if opcode in (Opcode.MIN, Opcode.MAX, Opcode.SELP):
        return InstrCategory.COMP_MINMAX
    if opcode in _SHIFT_LOGIC:
        return InstrCategory.SHIFT
    if opcode is Opcode.CVT:
        if dtype is not None and dtype.is_64bit:
            return InstrCategory.CONV64
        return InstrCategory.CONV32
    if opcode in (Opcode.LD, Opcode.ST, Opcode.RED):
        return InstrCategory.LDST
    if opcode in (Opcode.SETP, Opcode.BRA, Opcode.BAR, Opcode.RET, Opcode.EXIT):
        return InstrCategory.PRED_CTRL
    if opcode is Opcode.MOV:
        return InstrCategory.MOVE
    if opcode in _FLOAT_ARITH and dtype is not None and dtype.is_float:
        return InstrCategory.FP64 if dtype is DType.F64 else InstrCategory.FP32
    if opcode in _INT_ARITH:
        return InstrCategory.INT_ADD32
    raise ValueError(f"cannot categorize {opcode} with dtype {dtype}")


def opcode_category(opcode: Opcode, dtype: DType | None = None) -> str:
    """Human-readable Table II category label for (opcode, dtype)."""
    return categorize(opcode, dtype).value
