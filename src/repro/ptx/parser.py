"""Parser for the textual assembly produced by :mod:`repro.ptx.printer`.

The printer and parser round-trip: ``parse_kernel(print_kernel(k))``
reproduces ``k`` structurally.  The parser exists so that kernels can be
stored, diffed and analyzed as text, mirroring the paper's workflow of
running the static analyzer over disassembler output rather than over
in-memory compiler state.
"""

from __future__ import annotations

import re

from repro.ptx.instruction import (
    Imm,
    Instruction,
    Label,
    LabelRef,
    MemRef,
    ParamRef,
    Reg,
    SReg,
)
from repro.ptx.isa import CmpOp, DType, MemSpace, Opcode, SRegKind
from repro.ptx.module import KernelIR, KernelParam, PTXModule


class ParseError(ValueError):
    """Raised on malformed assembly text."""

    def __init__(self, message: str, line_no: int | None = None, line: str = ""):
        loc = f" at line {line_no}" if line_no is not None else ""
        detail = f": {line.strip()!r}" if line else ""
        super().__init__(f"{message}{loc}{detail}")
        self.line_no = line_no


_DTYPES = {d.value: d for d in DType}
_SPACES = {s.value: s for s in MemSpace}
_CMPS = {c.value: c for c in CmpOp}
_SREGS = {f"%{k.value}": k for k in SRegKind}

_KERNEL_RE = re.compile(r"^\.kernel\s+(\w+)\s*\((.*)\)\s*$")
_PARAM_RE = re.compile(r"^\.param\s+\.(\w+)(\*?)\s+(\w+)$")
_LABEL_RE = re.compile(r"^(\$?\w+):$")
_MEM_RE = re.compile(r"^\[(%\w+(?:\.\w+)*)(?:\+(-?\d+))?\]$")

# register-class prefix -> dtype, used to type bare register tokens
_REG_CLASS = {"%p": DType.PRED, "%rd": DType.S64, "%fd": DType.F64,
              "%f": DType.F32, "%r": DType.S32}


def _reg_dtype(name: str) -> DType:
    # longest prefix match (%rd before %r, %fd before %f)
    for prefix in ("%rd", "%fd", "%p", "%f", "%r", "%v"):
        if name.startswith(prefix):
            return _REG_CLASS.get(prefix, DType.S32)
    return DType.S32


def _parse_operand(tok: str, dtype: DType | None):
    tok = tok.strip()
    if tok in _SREGS:
        return SReg(_SREGS[tok])
    m = _MEM_RE.match(tok)
    if m:
        base = m.group(1)
        off = int(m.group(2)) if m.group(2) else 0
        if base.startswith("%"):
            return MemRef(MemSpace.GLOBAL, Reg(base, _reg_dtype(base)), off)
        raise ParseError(f"bad memory operand {tok!r}")
    if tok.startswith("["):  # parameter reference [name]
        return ParamRef(tok[1:-1])
    if tok.startswith("%"):
        return Reg(tok, _reg_dtype(tok))
    if tok.startswith("$") or tok[0].isalpha() or tok[0] == "_":
        return LabelRef(tok)
    # immediate
    try:
        if dtype is not None and dtype.is_float:
            return Imm(float(tok), dtype)
        if "." in tok or "e" in tok or "E" in tok:
            return Imm(float(tok), dtype or DType.F32)
        return Imm(int(tok), dtype or DType.S32)
    except ValueError:
        raise ParseError(f"cannot parse operand {tok!r}") from None


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas that are not inside brackets."""
    out, depth, cur = [], 0, []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _parse_instruction(text: str, line_no: int) -> Instruction:
    text = text.strip().rstrip(";")
    pred = None
    pred_neg = False
    if text.startswith("@"):
        guard, _, text = text.partition(" ")
        body = guard[1:]
        if body.startswith("!"):
            pred_neg = True
            body = body[1:]
        pred = Reg(body, DType.PRED)
        text = text.strip()

    mnemonic, _, rest = text.partition(" ")
    parts = mnemonic.split(".")
    opname = parts[0]

    cmp = None
    space = None
    dtype = None
    src_dtype = None

    if opname == "bar" and len(parts) >= 2 and parts[1] == "sync":
        opcode = Opcode.BAR
    elif opname == "mul" and len(parts) == 3 and parts[1] == "wide":
        opcode = Opcode.MULWIDE
        dtype = DType.S64
        src_dtype = _DTYPES[parts[2]]
    elif opname == "setp":
        opcode = Opcode.SETP
        if len(parts) != 3 or parts[1] not in _CMPS or parts[2] not in _DTYPES:
            raise ParseError("malformed setp", line_no, text)
        cmp = _CMPS[parts[1]]
        dtype = _DTYPES[parts[2]]
    elif opname in ("ld", "st"):
        opcode = Opcode.LD if opname == "ld" else Opcode.ST
        if len(parts) != 3 or parts[1] not in _SPACES or parts[2] not in _DTYPES:
            raise ParseError(f"malformed {opname}", line_no, text)
        space = _SPACES[parts[1]]
        dtype = _DTYPES[parts[2]]
    elif opname == "red":
        opcode = Opcode.RED
        if (len(parts) != 4 or parts[1] not in _SPACES or parts[2] != "add"
                or parts[3] not in _DTYPES):
            raise ParseError("malformed red", line_no, text)
        space = _SPACES[parts[1]]
        dtype = _DTYPES[parts[3]]
    elif opname == "cvt":
        opcode = Opcode.CVT
        if len(parts) != 3:
            raise ParseError("malformed cvt", line_no, text)
        dtype = _DTYPES[parts[1]]
        src_dtype = _DTYPES[parts[2]]
    else:
        try:
            opcode = Opcode(opname)
        except ValueError:
            raise ParseError(f"unknown opcode {opname!r}", line_no, text) from None
        if len(parts) == 2:
            if parts[1] not in _DTYPES:
                raise ParseError(f"unknown dtype {parts[1]!r}", line_no, text)
            dtype = _DTYPES[parts[1]]

    toks = _split_operands(rest) if rest.strip() else []
    operands = [_parse_operand(t, dtype) for t in toks]

    from repro.ptx.isa import NO_DEST

    dst = None
    srcs = operands
    if opcode not in NO_DEST and operands:
        dst, *srcs = operands
        if not isinstance(dst, Reg):
            raise ParseError("destination must be a register", line_no, text)

    # memory operands inherit the instruction's space
    if space is not None:
        srcs = [
            MemRef(space, s.base, s.offset) if isinstance(s, MemRef) else s
            for s in srcs
        ]

    return Instruction(
        opcode=opcode,
        dtype=dtype,
        dst=dst,
        srcs=tuple(srcs),
        pred=pred,
        pred_negated=pred_neg,
        cmp=cmp,
        space=space,
        src_dtype=src_dtype,
    )


def parse_kernel(text: str) -> KernelIR:
    """Parse a single ``.kernel`` definition."""
    kernels = parse_module(text).kernels
    if len(kernels) != 1:
        raise ParseError(f"expected exactly one kernel, found {len(kernels)}")
    return next(iter(kernels.values()))


def parse_module(text: str, name: str = "module") -> PTXModule:
    """Parse assembly text holding one or more kernels."""
    module = PTXModule(name=name)
    cur: KernelIR | None = None
    in_body = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(".kernel"):
            m = _KERNEL_RE.match(line)
            if not m:
                raise ParseError("malformed .kernel line", line_no, line)
            kname, params_text = m.group(1), m.group(2)
            params = []
            if params_text.strip():
                for ptext in params_text.split(","):
                    pm = _PARAM_RE.match(ptext.strip())
                    if not pm:
                        raise ParseError("malformed parameter", line_no, ptext)
                    params.append(
                        KernelParam(
                            name=pm.group(3),
                            dtype=_DTYPES[pm.group(1)],
                            is_pointer=pm.group(2) == "*",
                        )
                    )
            cur = KernelIR(name=kname, params=tuple(params), body=[])
            in_body = False
        elif line.startswith(".reg"):
            if cur is None:
                raise ParseError(".reg outside kernel", line_no, line)
            cur.regs_per_thread = int(line.split()[1])
        elif line.startswith(".shared"):
            if cur is None:
                raise ParseError(".shared outside kernel", line_no, line)
            cur.static_smem_bytes = int(line.split()[1])
        elif line.startswith(".target"):
            if cur is None:
                module.target_sm = int(line.split()[1].replace("sm_", ""))
            else:
                cur.target_sm = int(line.split()[1].replace("sm_", ""))
        elif line == "{":
            if cur is None:
                raise ParseError("'{' outside kernel", line_no, line)
            in_body = True
        elif line == "}":
            if cur is None or not in_body:
                raise ParseError("unmatched '}'", line_no, line)
            module.add(cur)
            cur, in_body = None, False
        else:
            if cur is None or not in_body:
                raise ParseError("instruction outside kernel body", line_no, line)
            lm = _LABEL_RE.match(line)
            if lm:
                cur.body.append(Label(lm.group(1)))
            else:
                cur.body.append(_parse_instruction(line, line_no))

    if cur is not None:
        raise ParseError("unterminated kernel at end of input")
    return module
