"""Structural verification of kernel IR.

The verifier catches codegen bugs early and documents the IR's invariants:

- every branch target is a defined label;
- every register is written before it is read on every path (a
  reaching-definitions query over the CFG, see
  :func:`repro.analyze.dataflow.first_undefined_read`);
- destination/source types agree with the instruction dtype;
- guard predicates are predicate-typed;
- the body ends with a terminator;
- declared resource usage is consistent (regs_per_thread covers the
  physical registers referenced, when physical names are used).
"""

from __future__ import annotations

from repro.analyze.dataflow import first_undefined_read
from repro.ptx.cfg import build_cfg
from repro.ptx.instruction import Imm, LabelRef, ParamRef, Reg
from repro.ptx.isa import DType, Opcode, NO_DEST
from repro.ptx.module import KernelIR


class VerificationError(ValueError):
    """Raised when a kernel violates an IR invariant."""


def _type_ok(op, expected: DType | None) -> bool:
    if expected is None:
        return True
    if isinstance(op, Reg):
        return op.dtype == expected
    if isinstance(op, Imm):
        if expected.is_float:
            return op.dtype.is_float
        return op.dtype.is_int or op.dtype is DType.PRED
    return True  # SReg / MemRef / ParamRef / LabelRef are checked elsewhere


def verify_kernel(kernel: KernelIR, strict_types: bool = True) -> None:
    """Validate ``kernel``; raise :class:`VerificationError` on failure."""
    labels = set(kernel.labels())
    instrs = kernel.instructions()
    if not instrs:
        raise VerificationError(f"{kernel.name}: empty body")
    if not instrs[-1].is_terminator:
        raise VerificationError(
            f"{kernel.name}: body must end with a terminator, "
            f"got {instrs[-1].opcode.value}"
        )

    param_names = {p.name for p in kernel.params}

    # Write-before-read over the CFG (any entry path reaching a read
    # without a definition).  CFG construction itself fails on branches
    # to unknown labels; the per-instruction branch-target check below
    # reports those with the proper message, so swallow that here.
    undef: tuple[int, object, str] | None = None
    try:
        undef = first_undefined_read(build_cfg(kernel))
    except ValueError:
        pass

    for idx, ins in enumerate(instrs):
        where = f"{kernel.name}[{idx}] {ins}"

        # branch targets resolve
        if ins.opcode is Opcode.BRA:
            tgt = ins.branch_target
            if tgt is None:
                raise VerificationError(f"{where}: branch without label target")
            if tgt not in labels:
                raise VerificationError(f"{where}: undefined label {tgt!r}")

        # guard predicate sanity
        if ins.pred is not None and ins.pred.dtype is not DType.PRED:
            raise VerificationError(f"{where}: guard must be predicate-typed")

        # operand inventory
        for s in ins.srcs:
            if isinstance(s, ParamRef):
                if ins.opcode is not Opcode.LD:
                    raise VerificationError(
                        f"{where}: parameter reference outside ld.param"
                    )
                if s.name not in param_names:
                    raise VerificationError(
                        f"{where}: unknown parameter {s.name!r}"
                    )
            if isinstance(s, LabelRef) and ins.opcode is not Opcode.BRA:
                raise VerificationError(f"{where}: label operand on non-branch")

        # def-before-use on every path (reaching definitions)
        if undef is not None and undef[0] == idx:
            raise VerificationError(
                f"{where}: register {undef[2]} read before definition"
            )

        # dst discipline
        if ins.opcode in NO_DEST:
            if ins.dst is not None:
                raise VerificationError(f"{where}: {ins.opcode.value} has no dst")
        else:
            if ins.dst is None:
                raise VerificationError(f"{where}: missing destination")

        # type discipline
        if strict_types and ins.dtype is not None:
            if ins.opcode is Opcode.SETP:
                if ins.dst.dtype is not DType.PRED:
                    raise VerificationError(f"{where}: setp dst must be pred")
                for s in ins.srcs:
                    if not _type_ok(s, ins.dtype):
                        raise VerificationError(
                            f"{where}: setp operand type mismatch"
                        )
            elif ins.opcode is Opcode.CVT:
                if ins.dst.dtype is not ins.dtype:
                    raise VerificationError(f"{where}: cvt dst type mismatch")
            elif ins.opcode is Opcode.MULWIDE:
                if not ins.dst.dtype.is_64bit:
                    raise VerificationError(
                        f"{where}: mul.wide dst must be 64-bit"
                    )
            elif ins.opcode is Opcode.LD:
                if ins.dst.dtype is not ins.dtype and not (
                    ins.dst.dtype is DType.S64 and ins.dtype is DType.S64
                ):
                    raise VerificationError(f"{where}: ld dst type mismatch")
            elif ins.opcode is Opcode.ST:
                pass  # stored value type checked below via srcs[1]
            elif ins.opcode is Opcode.SELP:
                if ins.dst.dtype is not ins.dtype:
                    raise VerificationError(f"{where}: selp dst type mismatch")
            else:
                if ins.dst is not None and ins.dst.dtype is not ins.dtype:
                    raise VerificationError(
                        f"{where}: dst {ins.dst.dtype.value} != "
                        f"instr {ins.dtype.value}"
                    )
                for s in ins.srcs:
                    if not _type_ok(s, ins.dtype):
                        raise VerificationError(
                            f"{where}: operand type mismatch ({s})"
                        )

    # physical register budget consistency: if the kernel reports a register
    # count, the distinct non-predicate physical registers must fit in it
    if kernel.regs_per_thread:
        phys = {
            r.name
            for r in kernel.registers_used()
            if r.dtype is not DType.PRED and not r.name.startswith("%v")
        }
        # 64-bit registers occupy two 32-bit slots
        slots = 0
        seen: set[str] = set()
        for r in kernel.registers_used():
            if r.dtype is DType.PRED or r.name.startswith("%v"):
                continue
            if r.name in seen:
                continue
            seen.add(r.name)
            slots += 2 if r.dtype.is_64bit else 1
        if phys and slots > kernel.regs_per_thread:
            raise VerificationError(
                f"{kernel.name}: uses {slots} register slots but declares "
                f"only {kernel.regs_per_thread}"
            )
