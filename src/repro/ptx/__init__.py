"""A PTX-like virtual instruction set and IR.

This subpackage stands in for the artifacts the paper's static analyzer
consumes from the NVIDIA toolchain: the instruction stream recovered with
``nvdisasm`` and the compile-time resource report from
``nvcc --ptxas-options=-v``.

Contents
--------
- :mod:`repro.ptx.isa` -- opcodes, data types, memory spaces, and the mapping
  from opcodes to the paper's Table II instruction categories.
- :mod:`repro.ptx.instruction` -- operands and the :class:`Instruction` type.
- :mod:`repro.ptx.module` -- :class:`KernelIR` (one kernel's code + resource
  usage) and :class:`PTXModule` (a compilation unit).
- :mod:`repro.ptx.printer` / :mod:`repro.ptx.parser` -- round-trippable
  textual assembly (the "disassembler" view).
- :mod:`repro.ptx.cfg` -- basic blocks, control-flow graph, dominators,
  post-dominators, natural loops, divergence-relevant branches.
- :mod:`repro.ptx.verifier` -- structural well-formedness checks.
"""

from repro.ptx.isa import (
    Opcode,
    DType,
    MemSpace,
    CmpOp,
    SRegKind,
    categorize,
    opcode_category,
)
from repro.ptx.instruction import (
    Reg,
    Imm,
    SReg,
    ParamRef,
    MemRef,
    LabelRef,
    Instruction,
    Label,
)
from repro.ptx.module import KernelIR, PTXModule, KernelParam
from repro.ptx.printer import print_kernel, print_module, format_instruction
from repro.ptx.parser import parse_module, parse_kernel, ParseError
from repro.ptx.cfg import CFG, BasicBlock, build_cfg
from repro.ptx.verifier import verify_kernel, VerificationError

__all__ = [
    "Opcode",
    "DType",
    "MemSpace",
    "CmpOp",
    "SRegKind",
    "categorize",
    "opcode_category",
    "Reg",
    "Imm",
    "SReg",
    "ParamRef",
    "MemRef",
    "LabelRef",
    "Instruction",
    "Label",
    "KernelIR",
    "PTXModule",
    "KernelParam",
    "print_kernel",
    "print_module",
    "format_instruction",
    "parse_module",
    "parse_kernel",
    "ParseError",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "verify_kernel",
    "VerificationError",
]
