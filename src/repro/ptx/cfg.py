"""Control-flow graph construction and analysis.

The paper's analyzer "builds a CFG to help understand flow divergence".
This module recovers basic blocks from the flat instruction stream, builds a
:class:`networkx.DiGraph` over them, and provides the structural analyses the
rest of the system needs:

- dominators and post-dominators (for SIMT reconvergence points in the
  emulator: a divergent warp reconverges at the immediate post-dominator of
  the branch block);
- natural-loop detection via back edges (for trip-count attribution and the
  static divergence estimate);
- identification of *divergence-relevant* branches: conditional branches
  whose predicate depends on the thread index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.ptx.instruction import Instruction, Label, Reg, SReg
from repro.ptx.isa import Opcode, SRegKind
from repro.ptx.module import KernelIR

ENTRY = "__entry__"
EXIT = "__exit__"


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self)} instrs)"


@dataclass
class Loop:
    """A natural loop: a back edge ``latch -> header`` plus its body."""

    header: str
    latch: str
    body: frozenset[str]
    depth: int = 1

    def __contains__(self, block: str) -> bool:
        return block in self.body


class CFG:
    """Control-flow graph over :class:`BasicBlock`.

    Nodes are block names; synthetic :data:`ENTRY` and :data:`EXIT` nodes
    bound the graph so dominator queries are total.
    """

    def __init__(self, kernel_name: str):
        self.kernel_name = kernel_name
        self.blocks: dict[str, BasicBlock] = {}
        self.block_of_label: dict[str, str] = {}
        """Label name -> owning block name.  Consecutive labels collapse
        into one block, so a branch target may be an *alias* of the block
        that carries the instructions; executors resolve through
        :meth:`resolve_label`."""
        self.graph = nx.DiGraph()
        self.graph.add_node(ENTRY)
        self.graph.add_node(EXIT)
        self._idom: dict[str, str] | None = None
        self._ipdom: dict[str, str] | None = None

    # -- construction ------------------------------------------------------

    def add_block(self, block: BasicBlock) -> None:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        self.blocks[block.name] = block
        self.graph.add_node(block.name)
        self._idom = self._ipdom = None

    def add_edge(self, src: str, dst: str) -> None:
        self.graph.add_edge(src, dst)
        self._idom = self._ipdom = None

    # -- queries -----------------------------------------------------------

    @property
    def entry_block(self) -> str:
        succs = list(self.graph.successors(ENTRY))
        if len(succs) != 1:
            raise ValueError("CFG entry must have exactly one successor")
        return succs[0]

    def resolve_label(self, label: str) -> str:
        """The block a branch label lands in (labels collapsed into
        another block resolve to that block; block names map to
        themselves)."""
        return self.block_of_label.get(label, label)

    def successors(self, name: str) -> list[str]:
        return [s for s in self.graph.successors(name) if s != EXIT]

    def predecessors(self, name: str) -> list[str]:
        return [p for p in self.graph.predecessors(name) if p != ENTRY]

    def immediate_dominators(self) -> dict[str, str]:
        if self._idom is None:
            self._idom = nx.immediate_dominators(self.graph, ENTRY)
        return self._idom

    def immediate_post_dominators(self) -> dict[str, str]:
        """Immediate post-dominators, computed on the reversed graph."""
        if self._ipdom is None:
            rev = self.graph.reverse(copy=False)
            self._ipdom = nx.immediate_dominators(rev, EXIT)
        return self._ipdom

    def reconvergence_point(self, block: str) -> str:
        """The SIMT reconvergence point for a branch in ``block``: its
        immediate post-dominator (EXIT if control never rejoins)."""
        return self.immediate_post_dominators().get(block, EXIT)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b``."""
        idom = self.immediate_dominators()
        node = b
        while node != ENTRY:
            if node == a:
                return True
            node = idom.get(node, ENTRY)
            if node == idom.get(node):  # reached root
                return node == a
        return a == ENTRY

    def back_edges(self) -> list[tuple[str, str]]:
        """Edges ``latch -> header`` where the header dominates the latch."""
        out = []
        for src, dst in self.graph.edges():
            if src in (ENTRY, EXIT) or dst in (ENTRY, EXIT):
                continue
            if self.dominates(dst, src):
                out.append((src, dst))
        return out

    def natural_loops(self) -> list[Loop]:
        """All natural loops, with nesting depth computed by containment."""
        loops: list[Loop] = []
        for latch, header in self.back_edges():
            body = {header, latch}
            stack = [latch]
            while stack:
                node = stack.pop()
                if node == header:
                    continue
                for pred in self.predecessors(node):
                    if pred not in body:
                        body.add(pred)
                        stack.append(pred)
            loops.append(Loop(header=header, latch=latch, body=frozenset(body)))
        for loop in loops:
            loop.depth = sum(
                1
                for other in loops
                if other is not loop and loop.body < other.body
            ) + 1
        return loops

    def loop_depth_of_block(self, name: str) -> int:
        """Nesting depth of ``name`` (0 = not in any loop)."""
        return sum(1 for lp in self.natural_loops() if name in lp.body)

    def conditional_branch_blocks(self) -> list[str]:
        """Blocks ending in a conditional branch (two CFG successors)."""
        return [
            name
            for name, blk in self.blocks.items()
            if blk.terminator is not None and blk.terminator.is_conditional_branch
        ]

    def divergent_branch_blocks(self) -> list[str]:
        """Conditional-branch blocks whose predicate is (transitively)
        derived from a per-thread special register.

        This is the static divergence test: a branch on a value that differs
        across lanes of a warp can serialize execution (paper Fig. 1), while
        a branch on block-uniform values cannot.
        """
        tainted = self._thread_dependent_registers()
        out = []
        for name in self.conditional_branch_blocks():
            pred = self.blocks[name].terminator.pred
            if pred is not None and pred.name in tainted:
                out.append(name)
        return out

    def _thread_dependent_registers(self) -> set[str]:
        """Fixed-point taint from ``%tid``/``%laneid`` through dataflow."""
        tainted: set[str] = set()
        instrs = [
            ins for blk in self.blocks.values() for ins in blk.instructions
        ]
        changed = True
        while changed:
            changed = False
            for ins in instrs:
                if ins.dst is None:
                    continue
                src_tainted = False
                for s in ins.srcs:
                    if isinstance(s, SReg) and s.kind in (
                        SRegKind.TID_X,
                        SRegKind.TID_Y,
                        SRegKind.LANEID,
                    ):
                        src_tainted = True
                    elif isinstance(s, Reg) and s.name in tainted:
                        src_tainted = True
                if ins.opcode is Opcode.LD:
                    # loads from thread-dependent addresses yield
                    # thread-dependent values
                    for s in ins.srcs:
                        base = getattr(s, "base", None)
                        if base is not None and base.name in tainted:
                            src_tainted = True
                if src_tainted and ins.dst.name not in tainted:
                    tainted.add(ins.dst.name)
                    changed = True
        return tainted

    # -- statistics consumed by the static analyzer -------------------------

    def block_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return sum(
            1
            for s, d in self.graph.edges()
            if s not in (ENTRY, EXIT) and d not in (ENTRY, EXIT)
        )


def build_cfg(kernel: KernelIR) -> CFG:
    """Partition a kernel body into basic blocks and wire the CFG.

    Leaders are: the first instruction, every labelled position, and every
    instruction following a terminator.  Fall-through edges connect blocks
    whose last instruction is not an unconditional branch/exit.
    """
    body = kernel.body
    cfg = CFG(kernel.name)
    if not any(isinstance(it, Instruction) for it in body):
        raise ValueError(f"kernel {kernel.name!r} has an empty body")

    # map positions to block starts
    label_at: dict[int, list[str]] = {}
    for i, item in enumerate(body):
        if isinstance(item, Label):
            label_at.setdefault(i, []).append(item.name)

    blocks: list[BasicBlock] = []
    block_of_label: dict[str, str] = {}
    cur: BasicBlock | None = None
    anon = 0

    def fresh_name() -> str:
        nonlocal anon
        anon += 1
        return f"$B{anon}"

    pending_labels: list[str] = []
    for item in body:
        if isinstance(item, Label):
            pending_labels.append(item.name)
            cur = None  # labels always start a new block
            continue
        if cur is None:
            name = pending_labels[0] if pending_labels else fresh_name()
            cur = BasicBlock(name=name)
            blocks.append(cur)
            for lbl in pending_labels:
                block_of_label[lbl] = name
            pending_labels = []
        cur.instructions.append(item)
        if item.is_terminator:
            cur = None
    if pending_labels:
        # trailing labels with no instructions: bind to synthetic empty block
        name = pending_labels[0]
        blk = BasicBlock(name=name)
        blocks.append(blk)
        for lbl in pending_labels:
            block_of_label[lbl] = name

    for blk in blocks:
        cfg.add_block(blk)
    cfg.block_of_label.update(block_of_label)
    cfg.add_edge(ENTRY, blocks[0].name)

    for i, blk in enumerate(blocks):
        term = blk.terminator
        next_name = blocks[i + 1].name if i + 1 < len(blocks) else None
        if term is None:
            if next_name is not None:
                cfg.add_edge(blk.name, next_name)
            else:
                cfg.add_edge(blk.name, EXIT)
            continue
        if term.opcode is Opcode.BRA:
            target = term.branch_target
            if target is None or target not in block_of_label:
                raise ValueError(
                    f"branch to unknown label {target!r} in {kernel.name}"
                )
            cfg.add_edge(blk.name, block_of_label[target])
            if term.is_conditional_branch:
                if next_name is not None:
                    cfg.add_edge(blk.name, next_name)
                else:
                    cfg.add_edge(blk.name, EXIT)
        else:  # ret / exit
            cfg.add_edge(blk.name, EXIT)

    # blocks with no path to EXIT (infinite loops) still need post-dominator
    # queries to terminate: connect any sink-less SCC conservatively
    for name in list(cfg.blocks):
        if not nx.has_path(cfg.graph, name, EXIT):
            cfg.add_edge(name, EXIT)
    return cfg
