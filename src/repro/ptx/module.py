"""Kernel and module containers for the PTX-like IR.

:class:`KernelIR` is what the static analyzer consumes: the instruction
stream (the "disassembly") together with the resource usage the compiler
reports (registers per thread, static shared memory), i.e. the union of the
paper's two extraction steps (``--ptxas-options=-v`` + ``nvdisasm``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ptx.instruction import BodyItem, Instruction, Label, Reg
from repro.ptx.isa import DType


@dataclass(frozen=True)
class KernelParam:
    """A kernel parameter: scalars (``s32``/``f32``/...) or pointers.

    Pointers are typed by their element dtype and always 64-bit.
    """

    name: str
    dtype: DType
    is_pointer: bool = False

    def __str__(self) -> str:
        star = "*" if self.is_pointer else ""
        return f"{self.dtype.value}{star} {self.name}"


@dataclass
class KernelIR:
    """One compiled kernel: code, parameters, and resource usage."""

    name: str
    params: tuple[KernelParam, ...]
    body: list[BodyItem]
    regs_per_thread: int = 0
    """Registers per thread as reported by the (simulated) ptxas."""

    static_smem_bytes: int = 0
    """Static shared memory (``__shared__`` declarations)."""

    target_sm: int = 0
    """SM version this kernel was compiled for (0 = generic)."""

    meta: dict = field(default_factory=dict)
    """Free-form annotations from the compiler (trip-count model, options)."""

    # -- structure --------------------------------------------------------

    def instructions(self) -> list[Instruction]:
        """The instruction stream without label markers."""
        return [it for it in self.body if isinstance(it, Instruction)]

    def labels(self) -> list[str]:
        return [it.name for it in self.body if isinstance(it, Label)]

    def label_positions(self) -> dict[str, int]:
        """Map label name -> index in ``body``."""
        return {
            it.name: i for i, it in enumerate(self.body) if isinstance(it, Label)
        }

    def param(self, name: str) -> KernelParam:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name} has no parameter {name!r}")

    # -- static counting (input to the instruction-mix analysis) ----------

    def static_category_counts(self) -> Counter:
        """Static instruction count per Table II category.

        This is the raw "disassembler" view: each instruction counts once,
        regardless of loop structure.  The analyzer scales these with a
        trip-count estimate to form static mixes.
        """
        counts: Counter = Counter()
        for ins in self.instructions():
            counts[ins.category] += 1
        return counts

    def static_register_operand_count(self) -> int:
        """Total register operands across the static instruction stream
        (the ``Regs`` row of Table II)."""
        return sum(ins.register_operand_count() for ins in self.instructions())

    def registers_used(self) -> set[Reg]:
        """The set of distinct registers appearing in the code."""
        regs: set[Reg] = set()
        for ins in self.instructions():
            regs.update(ins.registers_read())
            regs.update(ins.registers_written())
        return regs

    def __len__(self) -> int:
        return len(self.instructions())

    def __str__(self) -> str:
        from repro.ptx.printer import print_kernel

        return print_kernel(self)


@dataclass
class PTXModule:
    """A compilation unit holding one or more kernels."""

    name: str
    kernels: dict[str, KernelIR] = field(default_factory=dict)
    target_sm: int = 0

    def add(self, kernel: KernelIR) -> None:
        if kernel.name in self.kernels:
            raise ValueError(f"duplicate kernel {kernel.name!r} in module")
        self.kernels[kernel.name] = kernel

    def kernel(self, name: str) -> KernelIR:
        try:
            return self.kernels[name]
        except KeyError:
            raise KeyError(
                f"module {self.name!r} has no kernel {name!r}; "
                f"available: {sorted(self.kernels)}"
            ) from None

    def __iter__(self):
        return iter(self.kernels.values())

    def __len__(self) -> int:
        return len(self.kernels)
