"""Textual assembly emission -- the "nvdisasm" view of a kernel.

The format is a compact PTX dialect that round-trips through
:mod:`repro.ptx.parser`:

.. code-block:: text

    .kernel atax_k1(.param .f32* A, .param .f32* x, .param .s32 N)
    .reg 21
    .shared 0
    .target sm_35
    {
      mov.s32 %r1, %tid.x;
      setp.lt.s32 %p1, %r1, %r2;
      @!%p1 bra $L_exit;
    $L_body:
      ld.global.f32 %f1, [%rd1+4];
      fma.f32 %f2, %f1, %f3, %f2;
      bra $L_body;
    $L_exit:
      exit;
    }
"""

from __future__ import annotations

from repro.ptx.instruction import Instruction, Label
from repro.ptx.isa import Opcode
from repro.ptx.module import KernelIR, PTXModule


def _mnemonic(ins: Instruction) -> str:
    op = ins.opcode
    if op is Opcode.SETP:
        return f"setp.{ins.cmp.value}.{ins.dtype.value}"
    if op in (Opcode.LD, Opcode.ST):
        return f"{op.value}.{ins.space.value}.{ins.dtype.value}"
    if op is Opcode.RED:
        return f"red.{ins.space.value}.add.{ins.dtype.value}"
    if op is Opcode.CVT:
        return f"cvt.{ins.dtype.value}.{ins.src_dtype.value}"
    if op is Opcode.MULWIDE:
        return "mul.wide.s32"
    if op is Opcode.BAR:
        return "bar.sync"
    if op in (Opcode.BRA, Opcode.RET, Opcode.EXIT):
        return op.value
    if ins.dtype is not None:
        return f"{op.value}.{ins.dtype.value}"
    return op.value


def _operand(op) -> str:
    return str(op)


def format_instruction(ins: Instruction) -> str:
    """Render one instruction in textual assembly (without trailing ';')."""
    parts: list[str] = []
    if ins.pred is not None:
        bang = "!" if ins.pred_negated else ""
        parts.append(f"@{bang}{ins.pred.name}")
    parts.append(_mnemonic(ins))
    ops: list[str] = []
    if ins.dst is not None:
        ops.append(_operand(ins.dst))
    ops.extend(_operand(s) for s in ins.srcs)
    head = " ".join(parts)
    if ops:
        return f"{head} {', '.join(ops)}"
    return head


def print_kernel(kernel: KernelIR) -> str:
    """Render a full kernel, including the resource header the analyzer
    reads in place of ``ptxas -v`` output."""
    params = ", ".join(
        f".param .{p.dtype.value}{'*' if p.is_pointer else ''} {p.name}"
        for p in kernel.params
    )
    lines = [
        f".kernel {kernel.name}({params})",
        f".reg {kernel.regs_per_thread}",
        f".shared {kernel.static_smem_bytes}",
        f".target sm_{kernel.target_sm}",
        "{",
    ]
    for item in kernel.body:
        if isinstance(item, Label):
            lines.append(f"{item.name}:")
        else:
            lines.append(f"  {format_instruction(item)};")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: PTXModule) -> str:
    """Render a whole module."""
    header = f"// module {module.name} (target sm_{module.target_sm})"
    return "\n\n".join([header] + [print_kernel(k) for k in module])
