"""Operand and instruction types for the PTX-like IR.

An :class:`Instruction` is a single operation with an optional guard
predicate (PTX ``@%p`` / ``@!%p`` syntax).  Kernel bodies are flat lists of
:class:`Instruction` and :class:`Label` items; the CFG builder recovers block
structure from labels and terminators.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.ptx.isa import CmpOp, DType, MemSpace, Opcode, SRegKind, categorize
from repro.arch.throughput import InstrCategory


@dataclass(frozen=True)
class Reg:
    """A (virtual or physical) register.

    Virtual registers carry codegen-assigned names like ``%v12``; after
    register allocation names follow PTX class conventions (``%r`` s32,
    ``%rd`` s64, ``%f`` f32, ``%fd`` f64, ``%p`` pred).
    """

    name: str
    dtype: DType

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate constant."""

    value: Union[int, float]
    dtype: DType

    def __str__(self) -> str:
        if self.dtype.is_float:
            return repr(float(self.value))
        return str(int(self.value))


@dataclass(frozen=True)
class SReg:
    """A special read-only register (thread/block indices)."""

    kind: SRegKind

    @property
    def dtype(self) -> DType:
        return DType.S32

    def __str__(self) -> str:
        return f"%{self.kind.value}"


@dataclass(frozen=True)
class ParamRef:
    """A reference to a kernel parameter by name (``ld.param`` source)."""

    name: str

    def __str__(self) -> str:
        return f"[{self.name}]"


@dataclass(frozen=True)
class MemRef:
    """A memory operand: ``[base + offset]`` in some state space."""

    space: MemSpace
    base: Reg
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"[{self.base.name}+{self.offset}]"
        return f"[{self.base.name}]"


@dataclass(frozen=True)
class LabelRef:
    """A branch target."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, SReg, ParamRef, MemRef, LabelRef]


@dataclass(frozen=True)
class Label:
    """A label marker inside a kernel body."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class Instruction:
    """One machine operation.

    Attributes
    ----------
    opcode, dtype:
        The operation and its operating type (``None`` for pure control ops
        such as ``bra``/``bar.sync``).
    dst:
        Destination register, or ``None`` for stores/branches/barriers.
    srcs:
        Source operands, in PTX order.
    pred / pred_negated:
        Optional guard predicate (``@%p`` or ``@!%p``).
    cmp:
        Comparison operator, only for ``setp``.
    space:
        Memory space, only for ``ld``/``st``.
    src_dtype:
        Source type for ``cvt`` (dst type is ``dtype``).
    """

    opcode: Opcode
    dtype: DType | None = None
    dst: Reg | None = None
    srcs: tuple = ()
    pred: Reg | None = None
    pred_negated: bool = False
    cmp: CmpOp | None = None
    space: MemSpace | None = None
    src_dtype: DType | None = None

    def __post_init__(self) -> None:
        if self.opcode is Opcode.SETP and self.cmp is None:
            raise ValueError("setp requires a comparison operator")
        if (self.opcode in (Opcode.LD, Opcode.ST, Opcode.RED)
                and self.space is None):
            raise ValueError(f"{self.opcode.value} requires a memory space")

    # -- analysis helpers -------------------------------------------------

    @property
    def category(self) -> InstrCategory:
        """Paper Table II category of this instruction.

        Parameter-space loads are constant-bank accesses, not memory
        pipeline traffic; they count as data movement (``MoveIns``), which
        keeps the FLOPS/MEM intensity ratio meaningful.
        """
        if self.opcode is Opcode.LD and self.space is MemSpace.PARAM:
            return InstrCategory.MOVE
        return categorize(self.opcode, self.dtype)

    def registers_read(self) -> list[Reg]:
        """All register operands read (sources, memory bases, guard)."""
        regs: list[Reg] = []
        for s in self.srcs:
            if isinstance(s, Reg):
                regs.append(s)
            elif isinstance(s, MemRef):
                regs.append(s.base)
        if self.pred is not None:
            regs.append(self.pred)
        return regs

    def registers_written(self) -> list[Reg]:
        return [self.dst] if self.dst is not None else []

    def register_operand_count(self) -> int:
        """Number of register operands touched -- the paper's ``Regs`` metric
        counts register traffic per instruction."""
        return len(self.registers_read()) + len(self.registers_written())

    @property
    def is_terminator(self) -> bool:
        from repro.ptx.isa import TERMINATORS

        return self.opcode in TERMINATORS

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRA

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode is Opcode.BRA and self.pred is not None

    @property
    def branch_target(self) -> str | None:
        if self.opcode is Opcode.BRA and self.srcs:
            tgt = self.srcs[0]
            if isinstance(tgt, LabelRef):
                return tgt.name
        return None

    def with_pred(self, pred: Reg, negated: bool = False) -> "Instruction":
        """Return a guarded copy of this instruction."""
        return replace(self, pred=pred, pred_negated=negated)

    def rename_registers(self, mapping: dict[str, Reg]) -> "Instruction":
        """Return a copy with registers renamed through ``mapping``.

        Registers absent from the mapping are kept as-is (used by the
        register allocator, which maps virtual names to physical ones).
        """

        def m(op):
            if isinstance(op, Reg):
                return mapping.get(op.name, op)
            if isinstance(op, MemRef):
                return replace(op, base=mapping.get(op.base.name, op.base))
            return op

        return replace(
            self,
            dst=m(self.dst) if self.dst is not None else None,
            srcs=tuple(m(s) for s in self.srcs),
            pred=m(self.pred) if self.pred is not None else None,
        )

    def __str__(self) -> str:
        from repro.ptx.printer import format_instruction

        return format_instruction(self)


BodyItem = Union[Instruction, Label]
