"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(**kwargs) -> dict`` (structured results) and
``render(result) -> str`` (the ASCII table/figure).  The CLI
(``python -m repro.experiments`` or the ``repro-experiments`` script) runs
any subset; ``--full`` switches from the structure-preserving reduced
sweep to the paper's full 5,120-variant space.

Index (see DESIGN.md for the complete mapping):

====================  =====================================================
``table1``            GPU hardware parameters (Table I)
``table2``            Instruction throughput (Table II)
``fig1``              Branch divergence performance loss (Fig. 1)
``fig3``              The Orio tuning specification (Fig. 3 / Table III)
``fig4``              Thread-count histograms by rank (Fig. 4)
``table5``            Occupancy/register/thread statistics by rank (Tab. V)
``fig5``              Eq. 6 static time prediction MAE (Fig. 5)
``table6``            Static-vs-dynamic mix error rates (Table VI)
``table7``            Suggested parameters T*, [Ru:R*], S*, occ* (Tab. VII)
``fig6``              Search-space improvement, static vs rules (Fig. 6)
``fig7``              Occupancy calculator, current vs potential (Fig. 7)
``suite``             Cross-kernel corpus evaluation (beyond the paper)
``lint``              Static analysis over the registered corpus
====================  =====================================================
"""

from repro.experiments import common  # noqa: F401

ALL_EXPERIMENTS = (
    "table1",
    "table2",
    "fig1",
    "fig3",
    "fig4",
    "table5",
    "fig5",
    "table6",
    "table7",
    "fig6",
    "fig7",
    "suite",
    "lint",
)
