"""Experiment CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments.runner                 # all, reduced sweep
    python -m repro.experiments.runner fig4 table5     # a subset
    python -m repro.experiments.runner --full fig6     # paper-size sweep
    python -m repro.experiments.runner --arch kepler --kernel atax fig4
    python -m repro.experiments.runner --out results/  # save to files
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    fig1_divergence,
    fig3_spec,
    fig4_thread_counts,
    fig5_time_model,
    fig6_search_improvement,
    fig7_occupancy_calc,
    table1_gpus,
    table2_throughput,
    table5_statistics,
    table6_mix_errors,
    table7_suggestions,
)

_MODULES = {
    "table1": table1_gpus,
    "table2": table2_throughput,
    "fig1": fig1_divergence,
    "fig3": fig3_spec,
    "fig4": fig4_thread_counts,
    "table5": table5_statistics,
    "fig5": fig5_time_model,
    "table6": table6_mix_errors,
    "table7": table7_suggestions,
    "fig6": fig6_search_improvement,
    "fig7": fig7_occupancy_calc,
}

#: which kwargs each experiment accepts
_ACCEPTS = {
    "table1": set(),
    "table2": set(),
    "fig1": set(),
    "fig3": set(),
    "fig4": {"full", "archs", "kernels"},
    "table5": {"full", "archs", "kernels"},
    "fig5": {"full", "archs", "kernels"},
    "table6": {"full", "archs", "kernels"},
    "table7": {"archs", "kernels"},
    "fig6": {"full", "archs", "kernels"},
    "fig7": {"archs"},
}


def run_experiment(name: str, full: bool = False, archs=None,
                   kernels=None) -> str:
    """Run one experiment, return its rendered text."""
    if name not in _MODULES:
        raise KeyError(
            f"unknown experiment {name!r}; available: {list(_MODULES)}"
        )
    mod = _MODULES[name]
    kwargs = {}
    if "full" in _ACCEPTS[name]:
        kwargs["full"] = full
    if "archs" in _ACCEPTS[name] and archs:
        kwargs["archs"] = archs
    if "kernels" in _ACCEPTS[name] and kernels:
        kwargs["kernels"] = kernels
    return mod.render(mod.run(**kwargs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {list(ALL_EXPERIMENTS)} (default all)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full 5,120-variant space")
    parser.add_argument("--arch", action="append", dest="archs",
                        help="restrict to an architecture (repeatable)")
    parser.add_argument("--kernel", action="append", dest="kernels",
                        help="restrict to a kernel (repeatable)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write one .txt per experiment")
    args = parser.parse_args(argv)

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    for name in chosen:
        if name not in _MODULES:
            parser.error(f"unknown experiment {name!r}")

    for name in chosen:
        t0 = time.time()
        text = run_experiment(name, full=args.full, archs=args.archs,
                              kernels=args.kernels)
        elapsed = time.time() - t0
        header = f"##### {name} ({elapsed:.1f}s) " + "#" * 30
        print(header)
        print(text)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
