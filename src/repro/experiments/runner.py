"""Experiment CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments.runner                 # all, reduced sweep
    python -m repro.experiments.runner fig4 table5     # a subset
    python -m repro.experiments.runner --full fig6     # paper-size sweep
    python -m repro.experiments.runner --arch kepler --kernel atax fig4
    python -m repro.experiments.runner --out results/  # save to files
    python -m repro.experiments.runner --jobs 4 fig4 table5   # parallel sweep
    python -m repro.experiments.runner --no-cache fig5 # force remeasurement

Sweeps are backed by a persistent on-disk cache (``--cache``, on by
default; ``--cache-dir`` or ``$REPRO_CACHE_DIR`` picks the location), so
re-running an experiment with the same model parameters is near-free.
``--jobs N`` shards sweep measurement across N worker processes and runs
independent (non-sweep) experiments concurrently; output text is
identical to a serial run regardless.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro import obs
from repro.arch.specs import ALL_GPUS, get_gpu
from repro.engine import default_cache_dir, resolve_jobs
from repro.experiments import ALL_EXPERIMENTS, common
from repro.experiments import (
    fig1_divergence,
    fig3_spec,
    fig4_thread_counts,
    fig5_time_model,
    fig6_search_improvement,
    fig7_occupancy_calc,
    lint_kernels,
    suite_eval,
    table1_gpus,
    table2_throughput,
    table5_statistics,
    table6_mix_errors,
    table7_suggestions,
)
from repro.kernels import BENCHMARKS, get_benchmark
from repro.kernels.base import TAGS

_MODULES = {
    "table1": table1_gpus,
    "table2": table2_throughput,
    "fig1": fig1_divergence,
    "fig3": fig3_spec,
    "fig4": fig4_thread_counts,
    "table5": table5_statistics,
    "fig5": fig5_time_model,
    "table6": table6_mix_errors,
    "table7": table7_suggestions,
    "fig6": fig6_search_improvement,
    "fig7": fig7_occupancy_calc,
    "suite": suite_eval,
    "lint": lint_kernels,
}

#: which kwargs each experiment accepts
_ACCEPTS = {
    "table1": set(),
    "table2": set(),
    "fig1": set(),
    "fig3": set(),
    "fig4": {"full", "archs", "kernels"},
    "table5": {"full", "archs", "kernels"},
    "fig5": {"full", "archs", "kernels"},
    "table6": {"full", "archs", "kernels"},
    "table7": {"archs", "kernels"},
    "fig6": {"full", "archs", "kernels"},
    "fig7": {"archs"},
    "suite": {"full", "archs", "kernels", "tags"},
    "lint": {"kernels", "tags"},
}

#: experiments drawing on the shared exhaustive sweep (and its in-process
#: memo + sweep engine); these run in the coordinating process so they
#: reuse each other's measurements, while the rest may run concurrently.
#: Declared by the modules themselves (``USES_SHARED_SWEEP = True``) so a
#: new sweep-backed experiment cannot silently end up in a worker process
#: with its own second cache writer.
SWEEP_POOLED = frozenset(
    name for name, mod in _MODULES.items()
    if getattr(mod, "USES_SHARED_SWEEP", False)
)


def run_experiment(name: str, full: bool = False, archs=None,
                   kernels=None, tags=None, with_status: bool = False):
    """Run one experiment, return its rendered text.

    ``with_status=True`` returns ``(text, status)`` where ``status`` is
    the experiment's exit code (experiments that gate CI -- ``lint`` --
    declare an ``exit_code(result)``; everything else reports 0).
    """
    if name not in _MODULES:
        raise KeyError(
            f"unknown experiment {name!r}; available: {list(_MODULES)}"
        )
    mod = _MODULES[name]
    kwargs = {}
    if "full" in _ACCEPTS[name]:
        kwargs["full"] = full
    if "archs" in _ACCEPTS[name] and archs:
        kwargs["archs"] = archs
    if "kernels" in _ACCEPTS[name] and kernels:
        kwargs["kernels"] = kernels
    if "tags" in _ACCEPTS[name] and tags:
        kwargs["tags"] = tags
    result = mod.run(**kwargs)
    text = mod.render(result)
    if with_status:
        status = int(getattr(mod, "exit_code", lambda _r: 0)(result))
        return text, status
    return text


def _run_timed(name: str, full: bool, archs, kernels, tags=None) -> tuple:
    """``(text, elapsed, status)`` for one experiment (picklable pool
    target)."""
    t0 = time.time()
    text, status = run_experiment(name, full=full, archs=archs,
                                  kernels=kernels, tags=tags,
                                  with_status=True)
    return text, time.time() - t0, status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {list(ALL_EXPERIMENTS)} (default all)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full 5,120-variant space")
    parser.add_argument("--arch", action="append", dest="archs",
                        help="restrict to an architecture (repeatable)")
    parser.add_argument("--kernel", action="append", dest="kernels",
                        help="restrict to a kernel (repeatable)")
    parser.add_argument("--tag", action="append", dest="tags",
                        help="restrict the suite corpus to a workload tag "
                             f"(repeatable; one of {sorted(TAGS)})")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write one .txt per experiment")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweeps and independent "
                             "experiments (0 = one per CPU)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="persist sweep measurements on disk "
                             "(default: on; --no-cache disables)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help=f"cache location (default {default_cache_dir()})")
    parser.add_argument("--progress", action="store_true",
                        help="paint a sweep progress meter on stderr")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics", type=Path, default=None, metavar="PATH",
                        help="write a JSON metrics snapshot of the run")
    args = parser.parse_args(argv)

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    for name in chosen:
        if name not in _MODULES:
            parser.error(f"unknown experiment {name!r}")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    # validate filter values up front: a typo should name the registry,
    # not raise a KeyError three layers into an experiment
    for kernel in args.kernels or ():
        try:
            get_benchmark(kernel)
        except KeyError:
            parser.error(
                f"unknown kernel {kernel!r}; registered: "
                f"{', '.join(sorted(BENCHMARKS))}"
            )
    for arch in args.archs or ():
        try:
            get_gpu(arch)
        except KeyError:
            parser.error(
                f"unknown architecture {arch!r}; available: "
                f"{', '.join(g.name for g in ALL_GPUS)} (or family aliases)"
            )
    for tag in args.tags or ():
        if tag not in TAGS:
            parser.error(
                f"unknown tag {tag!r}; taxonomy: {', '.join(sorted(TAGS))}"
            )
    if "suite" in chosen and args.tags and args.kernels:
        from repro.suite import corpus_members

        if not corpus_members(tags=args.tags, kernels=args.kernels):
            parser.error(
                f"no registered benchmark matches both --tag {args.tags} "
                f"and --kernel {args.kernels}"
            )

    # observability: collectors must exist before any engine or
    # emulator work runs.  A metrics snapshot is also produced when only
    # --trace is given (and vice versa) since both cost nothing extra.
    if args.trace is not None or args.metrics is not None:
        obs.enable()

    cache_dir = None
    if args.cache:
        cache_dir = args.cache_dir or default_cache_dir()
    common.configure_sweeps(jobs=args.jobs, cache_dir=cache_dir,
                            progress=args.progress)

    # Independent experiments can run concurrently in worker processes;
    # the sweep-pooled ones stay here to share measurements.  Results are
    # printed strictly in the requested order either way.
    futures: dict = {}
    executor = None
    independents = [n for n in dict.fromkeys(chosen) if n not in SWEEP_POOLED]
    if args.jobs != 1 and len(independents) > 1:
        executor = ProcessPoolExecutor(
            max_workers=min(len(independents), resolve_jobs(args.jobs))
        )
        futures = {
            n: executor.submit(_run_timed, n, args.full, args.archs,
                               args.kernels, args.tags)
            for n in independents
        }
    rc = 0
    interrupted = False
    try:
        for name in dict.fromkeys(chosen):
            if name in futures:
                text, elapsed, status = futures[name].result()
            else:
                text, elapsed, status = _run_timed(
                    name, args.full, args.archs, args.kernels, args.tags
                )
            rc = max(rc, status)
            header = f"##### {name} ({elapsed:.1f}s) " + "#" * 30
            print(header)
            print(text)
            print()
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(text + "\n")
    except KeyboardInterrupt:
        # no traceback: close the pools, keep what the incremental
        # checkpointing already persisted, exit nonzero
        interrupted = True
        print(
            "\n[runner] interrupted -- shutting down workers; "
            "measurements completed so far are already persisted",
            file=sys.stderr,
        )
    finally:
        if executor is not None:
            executor.shutdown(
                wait=not interrupted, cancel_futures=interrupted
            )
        _print_engine_summary()
        common.shutdown_sweeps()
        _write_obs_artifacts(args.trace, args.metrics)
    return 130 if interrupted else rc


def _print_engine_summary() -> None:
    """One-line lifetime cache summary for the shared engine (stderr, so
    stdout stays byte-identical across runs).  Always printed when an
    engine ran -- it used to be gated on ``--progress``, which hid the
    lifetime cache stats from every default invocation.  Also mirrors
    the lifetime counters into the metrics registry so the snapshot is
    self-contained."""
    engine = common.shared_engine()
    if engine is None:
        return
    total = engine.total_measured + engine.total_hits
    if not (total or engine.total_retries or engine.total_failures):
        return  # engine configured but never ran (static experiments)
    if obs.metrics is not None:
        obs.set_gauge("engine.lifetime_measured", engine.total_measured)
        obs.set_gauge("engine.lifetime_cache_hits", engine.total_hits)
        obs.set_gauge("engine.lifetime_retries", engine.total_retries)
        obs.set_gauge("engine.lifetime_recovered", engine.total_recovered)
        obs.set_gauge("engine.lifetime_quarantined", engine.total_failures)
        if engine.cache is not None:
            obs.metrics.absorb_cache_stats(engine.cache)
    rate = engine.total_hits / total if total else 0.0
    resilience = ""
    if engine.total_retries or engine.total_failures:
        resilience = (
            f"; {engine.total_retries} retried, "
            f"{engine.total_recovered} recovered, "
            f"{engine.total_failures} quarantined"
        )
    print(
        f"[engine] {engine.total_measured} measured, "
        f"{engine.total_hits} cache hits ({rate:.1%} hit rate) "
        f"over {total} evaluations{resilience}",
        file=sys.stderr,
    )


def _write_obs_artifacts(trace_path, metrics_path) -> None:
    """Export the run's trace and metrics (after the sweep engines shut
    down, so every worker-shipped span buffer has been absorbed), plus
    the ASCII span-tree summary on stderr for traced runs."""
    if trace_path is not None:
        obs.write_trace(trace_path)
        print(f"[obs] trace written to {trace_path}", file=sys.stderr)
        print(obs.render_tree(), file=sys.stderr)
    if metrics_path is not None:
        obs.write_metrics(metrics_path)
        print(f"[obs] metrics written to {metrics_path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
