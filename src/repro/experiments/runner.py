"""Experiment CLI: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments.runner                 # all, reduced sweep
    python -m repro.experiments.runner fig4 table5     # a subset
    python -m repro.experiments.runner --full fig6     # paper-size sweep
    python -m repro.experiments.runner --arch kepler --kernel atax fig4
    python -m repro.experiments.runner --out results/  # save to files
    python -m repro.experiments.runner --jobs 4 fig4 table5   # parallel sweep
    python -m repro.experiments.runner --no-cache fig5 # force remeasurement

Service mode (autotuning as a service; see docs/ARCHITECTURE.md)::

    python -m repro.experiments.runner serve --port 8737 --jobs 2
    python -m repro.experiments.runner client atax bicg --search random \
        --budget 40 --seed 7 --url http://127.0.0.1:8737

Sweeps are backed by a persistent on-disk cache (``--cache``, on by
default; ``--cache-dir`` or ``$REPRO_CACHE_DIR`` picks the location), so
re-running an experiment with the same model parameters is near-free.
``--jobs N`` shards sweep measurement across N worker processes and runs
independent (non-sweep) experiments concurrently; output text is
identical to a serial run regardless.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro import obs
from repro.arch.specs import ALL_GPUS, get_gpu
from repro.engine import default_cache_dir, resolve_jobs
from repro.experiments import ALL_EXPERIMENTS, common
from repro.experiments import (
    fig1_divergence,
    fig3_spec,
    fig4_thread_counts,
    fig5_time_model,
    fig6_search_improvement,
    fig7_occupancy_calc,
    lint_kernels,
    suite_eval,
    table1_gpus,
    table2_throughput,
    table5_statistics,
    table6_mix_errors,
    table7_suggestions,
)
from repro.kernels import BENCHMARKS, get_benchmark
from repro.kernels.base import TAGS

_MODULES = {
    "table1": table1_gpus,
    "table2": table2_throughput,
    "fig1": fig1_divergence,
    "fig3": fig3_spec,
    "fig4": fig4_thread_counts,
    "table5": table5_statistics,
    "fig5": fig5_time_model,
    "table6": table6_mix_errors,
    "table7": table7_suggestions,
    "fig6": fig6_search_improvement,
    "fig7": fig7_occupancy_calc,
    "suite": suite_eval,
    "lint": lint_kernels,
}

#: which kwargs each experiment accepts
_ACCEPTS = {
    "table1": set(),
    "table2": set(),
    "fig1": set(),
    "fig3": set(),
    "fig4": {"full", "archs", "kernels"},
    "table5": {"full", "archs", "kernels"},
    "fig5": {"full", "archs", "kernels"},
    "table6": {"full", "archs", "kernels"},
    "table7": {"archs", "kernels"},
    "fig6": {"full", "archs", "kernels"},
    "fig7": {"archs"},
    "suite": {"full", "archs", "kernels", "tags"},
    "lint": {"kernels", "tags"},
}

#: experiments drawing on the shared exhaustive sweep (and its in-process
#: memo + sweep engine); these run in the coordinating process so they
#: reuse each other's measurements, while the rest may run concurrently.
#: Declared by the modules themselves (``USES_SHARED_SWEEP = True``) so a
#: new sweep-backed experiment cannot silently end up in a worker process
#: with its own second cache writer.
SWEEP_POOLED = frozenset(
    name for name, mod in _MODULES.items()
    if getattr(mod, "USES_SHARED_SWEEP", False)
)


def run_experiment(name: str, full: bool = False, archs=None,
                   kernels=None, tags=None, with_status: bool = False):
    """Run one experiment, return its rendered text.

    ``with_status=True`` returns ``(text, status)`` where ``status`` is
    the experiment's exit code (experiments that gate CI -- ``lint`` --
    declare an ``exit_code(result)``; everything else reports 0).
    """
    if name not in _MODULES:
        raise KeyError(
            f"unknown experiment {name!r}; available: {list(_MODULES)}"
        )
    mod = _MODULES[name]
    kwargs = {}
    if "full" in _ACCEPTS[name]:
        kwargs["full"] = full
    if "archs" in _ACCEPTS[name] and archs:
        kwargs["archs"] = archs
    if "kernels" in _ACCEPTS[name] and kernels:
        kwargs["kernels"] = kernels
    if "tags" in _ACCEPTS[name] and tags:
        kwargs["tags"] = tags
    result = mod.run(**kwargs)
    text = mod.render(result)
    if with_status:
        status = int(getattr(mod, "exit_code", lambda _r: 0)(result))
        return text, status
    return text


def _run_timed(name: str, full: bool, archs, kernels, tags=None) -> tuple:
    """``(text, elapsed, status)`` for one experiment (picklable pool
    target)."""
    t0 = time.time()
    text, status = run_experiment(name, full=full, archs=archs,
                                  kernels=kernels, tags=tags,
                                  with_status=True)
    return text, time.time() - t0, status


def serve_main(argv) -> int:
    """``runner serve``: run the autotuning service in the foreground."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve the autotuner over HTTP (ask/tell sessions, "
                    "shared measurement store, worker fleet).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8737,
                        help="listen port (0 = ephemeral; default 8737)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="shared measurement store location "
                             f"(default {default_cache_dir()}; "
                             "--no-cache disables persistence)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="persist measurements in the shared store "
                             "(default: on)")
    parser.add_argument("--max-entries", type=int, default=None,
                        metavar="N",
                        help="LRU cap for the store (default unbounded)")
    parser.add_argument("--drainers", type=int, default=2, metavar="N",
                        help="concurrent measurement jobs (default 2)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per drainer engine "
                             "(0 = one per CPU; default 1 = inline)")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write a Chrome trace of the server's "
                             "lifetime on shutdown")
    parser.add_argument("--metrics", type=Path, default=None,
                        metavar="PATH",
                        help="write a JSON metrics snapshot on shutdown")
    args = parser.parse_args(argv)

    if not 0 <= args.port <= 65535:
        parser.error(f"--port must be in [0, 65535], got {args.port}")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.drainers < 1:
        parser.error("--drainers must be >= 1")
    if args.max_entries is not None and args.max_entries < 1:
        parser.error("--max-entries must be >= 1")
    cache_dir = None
    if args.cache:
        cache_dir = args.cache_dir or default_cache_dir()

    from repro.api import serve

    return serve(
        host=args.host, port=args.port, cache_dir=cache_dir,
        max_entries=args.max_entries, drainers=args.drainers,
        jobs=args.jobs, trace=args.trace, metrics=args.metrics,
    )


def client_main(argv) -> int:
    """``runner client``: submit tuning sessions to a running server."""
    import os

    parser = argparse.ArgumentParser(
        prog="repro-experiments client",
        description="Tune kernels through a running autotuning server.",
    )
    parser.add_argument("kernels", nargs="+",
                        help="kernels to tune (one session each)")
    parser.add_argument("--url",
                        default=os.environ.get("REPRO_SERVICE_URL",
                                               "http://127.0.0.1:8737"),
                        help="server URL (default $REPRO_SERVICE_URL or "
                             "http://127.0.0.1:8737)")
    parser.add_argument("--arch", default="kepler",
                        help="GPU name or family (default kepler)")
    parser.add_argument("--size", type=int, default=64,
                        help="input size (default 64)")
    parser.add_argument("--search", default="exhaustive",
                        help="search strategy (default exhaustive)")
    parser.add_argument("--budget", type=int, default=None,
                        help="evaluation budget (default: strategy's own)")
    parser.add_argument("--use-rule", action="store_true",
                        help="apply the intensity rule (static search)")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for stochastic strategies")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-session wait timeout in seconds")
    args = parser.parse_args(argv)

    # the same up-front registry validation the experiments path does: a
    # typo should name the registry here, not surface as a server 400
    from repro.autotune.search import SEARCH_REGISTRY

    for kernel in args.kernels:
        try:
            get_benchmark(kernel)
        except KeyError:
            parser.error(
                f"unknown kernel {kernel!r}; registered: "
                f"{', '.join(sorted(BENCHMARKS))}"
            )
    try:
        get_gpu(args.arch)
    except KeyError:
        parser.error(
            f"unknown architecture {args.arch!r}; available: "
            f"{', '.join(g.name for g in ALL_GPUS)} (or family aliases)"
        )
    if args.search.strip().lower() not in SEARCH_REGISTRY:
        parser.error(
            f"unknown search {args.search!r}; available: "
            f"{', '.join(sorted(SEARCH_REGISTRY))}"
        )
    if args.size <= 0:
        parser.error("--size must be positive")
    if args.budget is not None and args.budget <= 0:
        parser.error("--budget must be positive")

    from repro.api import connect
    from repro.client import ServiceError

    try:
        client = connect(args.url)
    except (OSError, ServiceError) as e:
        print(f"[client] cannot reach {args.url}: {e}", file=sys.stderr)
        return 2

    search_args = {}
    if args.seed is not None:
        search_args["seed"] = args.seed
    rc = 0
    for kernel in args.kernels:
        try:
            result = client.tune(
                kernel, args.arch, args.size, search=args.search,
                budget=args.budget, use_rule=args.use_rule,
                timeout=args.timeout, **search_args,
            )
        except (ServiceError, TimeoutError, OSError) as e:
            print(f"[client] {kernel}: FAILED: {e}", file=sys.stderr)
            rc = max(rc, 1)
            continue
        print(
            f"{kernel}: best {result.best_config} = "
            f"{result.best_value:.6g}s over {result.evaluations} "
            f"evaluations (space {result.space_size}/"
            f"{result.full_space_size})"
        )
    stats = client.store_stats()
    print(
        f"[client] server store: {stats.entries} entries, "
        f"{stats.measured} measured / {stats.served_from_cache} served "
        "from cache (fleet lifetime)",
        file=sys.stderr,
    )
    return rc


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # service subcommands dispatch before the experiments parser so each
    # keeps its own focused --help and argument validation
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {list(ALL_EXPERIMENTS)} (default all)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full 5,120-variant space")
    parser.add_argument("--arch", action="append", dest="archs",
                        help="restrict to an architecture (repeatable)")
    parser.add_argument("--kernel", action="append", dest="kernels",
                        help="restrict to a kernel (repeatable)")
    parser.add_argument("--tag", action="append", dest="tags",
                        help="restrict the suite corpus to a workload tag "
                             f"(repeatable; one of {sorted(TAGS)})")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write one .txt per experiment")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweeps and independent "
                             "experiments (0 = one per CPU)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="persist sweep measurements on disk "
                             "(default: on; --no-cache disables)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help=f"cache location (default {default_cache_dir()})")
    parser.add_argument("--progress", action="store_true",
                        help="paint a sweep progress meter on stderr")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH",
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics", type=Path, default=None, metavar="PATH",
                        help="write a JSON metrics snapshot of the run")
    args = parser.parse_args(argv)

    chosen = args.experiments or list(ALL_EXPERIMENTS)
    for name in chosen:
        if name not in _MODULES:
            parser.error(f"unknown experiment {name!r}")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    # validate filter values up front: a typo should name the registry,
    # not raise a KeyError three layers into an experiment
    for kernel in args.kernels or ():
        try:
            get_benchmark(kernel)
        except KeyError:
            parser.error(
                f"unknown kernel {kernel!r}; registered: "
                f"{', '.join(sorted(BENCHMARKS))}"
            )
    for arch in args.archs or ():
        try:
            get_gpu(arch)
        except KeyError:
            parser.error(
                f"unknown architecture {arch!r}; available: "
                f"{', '.join(g.name for g in ALL_GPUS)} (or family aliases)"
            )
    for tag in args.tags or ():
        if tag not in TAGS:
            parser.error(
                f"unknown tag {tag!r}; taxonomy: {', '.join(sorted(TAGS))}"
            )
    if "suite" in chosen and args.tags and args.kernels:
        from repro.suite import corpus_members

        if not corpus_members(tags=args.tags, kernels=args.kernels):
            parser.error(
                f"no registered benchmark matches both --tag {args.tags} "
                f"and --kernel {args.kernels}"
            )

    # observability: collectors must exist before any engine or
    # emulator work runs.  A metrics snapshot is also produced when only
    # --trace is given (and vice versa) since both cost nothing extra.
    if args.trace is not None or args.metrics is not None:
        obs.enable()

    cache_dir = None
    if args.cache:
        cache_dir = args.cache_dir or default_cache_dir()
    common.configure_sweeps(jobs=args.jobs, cache_dir=cache_dir,
                            progress=args.progress)

    # Independent experiments can run concurrently in worker processes;
    # the sweep-pooled ones stay here to share measurements.  Results are
    # printed strictly in the requested order either way.
    futures: dict = {}
    executor = None
    independents = [n for n in dict.fromkeys(chosen) if n not in SWEEP_POOLED]
    if args.jobs != 1 and len(independents) > 1:
        executor = ProcessPoolExecutor(
            max_workers=min(len(independents), resolve_jobs(args.jobs))
        )
        futures = {
            n: executor.submit(_run_timed, n, args.full, args.archs,
                               args.kernels, args.tags)
            for n in independents
        }
    rc = 0
    interrupted = False
    try:
        for name in dict.fromkeys(chosen):
            if name in futures:
                text, elapsed, status = futures[name].result()
            else:
                text, elapsed, status = _run_timed(
                    name, args.full, args.archs, args.kernels, args.tags
                )
            rc = max(rc, status)
            header = f"##### {name} ({elapsed:.1f}s) " + "#" * 30
            print(header)
            print(text)
            print()
            if args.out is not None:
                args.out.mkdir(parents=True, exist_ok=True)
                (args.out / f"{name}.txt").write_text(text + "\n")
    except KeyboardInterrupt:
        # no traceback: close the pools, keep what the incremental
        # checkpointing already persisted, exit nonzero
        interrupted = True
        print(
            "\n[runner] interrupted -- shutting down workers; "
            "measurements completed so far are already persisted",
            file=sys.stderr,
        )
    finally:
        if executor is not None:
            executor.shutdown(
                wait=not interrupted, cancel_futures=interrupted
            )
        _print_engine_summary()
        common.shutdown_sweeps()
        _write_obs_artifacts(args.trace, args.metrics)
    return 130 if interrupted else rc


def _print_engine_summary() -> None:
    """One-line lifetime cache summary for the shared engine (stderr, so
    stdout stays byte-identical across runs).  Always printed when an
    engine ran -- it used to be gated on ``--progress``, which hid the
    lifetime cache stats from every default invocation.  Also mirrors
    the lifetime counters into the metrics registry so the snapshot is
    self-contained."""
    engine = common.shared_engine()
    if engine is None:
        return
    total = engine.total_measured + engine.total_hits
    if not (total or engine.total_retries or engine.total_failures):
        return  # engine configured but never ran (static experiments)
    if obs.metrics is not None:
        obs.set_gauge("engine.lifetime_measured", engine.total_measured)
        obs.set_gauge("engine.lifetime_cache_hits", engine.total_hits)
        obs.set_gauge("engine.lifetime_retries", engine.total_retries)
        obs.set_gauge("engine.lifetime_recovered", engine.total_recovered)
        obs.set_gauge("engine.lifetime_quarantined", engine.total_failures)
        if engine.cache is not None:
            obs.metrics.absorb_cache_stats(engine.cache)
    rate = engine.total_hits / total if total else 0.0
    resilience = ""
    if engine.total_retries or engine.total_failures:
        resilience = (
            f"; {engine.total_retries} retried, "
            f"{engine.total_recovered} recovered, "
            f"{engine.total_failures} quarantined"
        )
    print(
        f"[engine] {engine.total_measured} measured, "
        f"{engine.total_hits} cache hits ({rate:.1%} hit rate) "
        f"over {total} evaluations{resilience}",
        file=sys.stderr,
    )


def _write_obs_artifacts(trace_path, metrics_path) -> None:
    """Export the run's trace and metrics (after the sweep engines shut
    down, so every worker-shipped span buffer has been absorbed), plus
    the ASCII span-tree summary on stderr for traced runs."""
    if trace_path is not None:
        obs.write_trace(trace_path)
        print(f"[obs] trace written to {trace_path}", file=sys.stderr)
        print(obs.render_tree(), file=sys.stderr)
    if metrics_path is not None:
        obs.write_metrics(metrics_path)
        print(f"[obs] metrics written to {metrics_path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
