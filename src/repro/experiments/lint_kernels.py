"""``lint``: static analysis over the registered kernel corpus.

Runs every :mod:`repro.analyze` checker on each registered benchmark
(compiled at its smallest size, under its emulation-safe launch) and
prints a per-kernel diagnostics table.  A diagnostic is *unexpected*
unless the benchmark's ``expected_diagnostics`` annotation covers it;
the CLI exits nonzero on any unexpected finding, which is what the CI
``analyze`` job gates on.
"""

from __future__ import annotations

from repro.analyze import lint_benchmark, unexpected_diagnostics
from repro.experiments.common import resolve_kernels
from repro.kernels import get_benchmark, list_benchmarks
from repro.util.tables import ascii_table


def run(kernels=None, tags=None) -> dict:
    # default to the FULL registry (not the paper's 4-kernel order):
    # lint gates registration, so every benchmark is in scope
    if kernels:
        names = resolve_kernels(kernels)
    else:
        names = [b.name for b in list_benchmarks()]
    if tags:
        tagged = {b.name for t in tags for b in list_benchmarks(tag=t)}
        names = [n for n in names if n in tagged]
    rows = []
    findings = []
    unexpected_total = 0
    for name in names:
        bench = get_benchmark(name)
        reports = lint_benchmark(bench)
        diags = [d for rep in reports for d in rep.diagnostics]
        unexpected = unexpected_diagnostics(bench, reports)
        unexpected_total += len(unexpected)
        unexpected_set = set(unexpected)
        rows.append({
            "benchmark": name,
            "kernels": len(reports),
            "diagnostics": len(diags),
            "expected": len(diags) - len(unexpected),
            "unexpected": len(unexpected),
            "status": "FAIL" if unexpected else "ok",
        })
        findings.extend(
            {"benchmark": name, "text": str(d),
             "unexpected": d in unexpected_set}
            for d in diags
        )
    return {
        "rows": rows,
        "findings": findings,
        "unexpected_total": unexpected_total,
    }


def render(result: dict) -> str:
    headers = ["Benchmark", "Kernels", "Diagnostics", "Expected",
               "Unexpected", "Status"]
    table = ascii_table(
        headers,
        [[r["benchmark"], r["kernels"], r["diagnostics"], r["expected"],
          r["unexpected"], r["status"]] for r in result["rows"]],
        title="Static analysis over the registered kernel corpus",
    )
    lines = [table]
    for f in result["findings"]:
        marker = "UNEXPECTED" if f["unexpected"] else "expected"
        lines.append(f"  [{marker}] {f['text']}")
    n = result["unexpected_total"]
    lines.append(
        f"lint: {n} unexpected diagnostic(s)" if n else "lint: clean"
    )
    return "\n".join(lines)


def exit_code(result: dict) -> int:
    """Nonzero when any diagnostic is not covered by an
    ``expected_diagnostics`` annotation."""
    return 1 if result["unexpected_total"] else 0


def main() -> str:
    text = render(run())
    print(text)
    return text


if __name__ == "__main__":
    import sys

    result = run()
    print(render(result))
    sys.exit(exit_code(result))
