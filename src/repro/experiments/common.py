"""Shared experiment infrastructure: sweep configuration and caching."""

from __future__ import annotations

from functools import lru_cache

from repro.arch.specs import ALL_GPUS, GPUSpec, get_gpu
from repro.autotune.space import Parameter, ParameterSpace
from repro.autotune.spec import default_tuning_spec
from repro.autotune.tuner import Autotuner
from repro.autotune.results import TuningResults
from repro.kernels import BENCHMARKS, get_benchmark

KERNEL_ORDER = ("atax", "bicg", "ex14fj", "matvec2d")
"""Paper presentation order of the Table IV kernels."""


def reduced_space() -> ParameterSpace:
    """A structure-preserving subset of the Table III space.

    Keeps the full 32-value thread axis (every experiment's subject) but
    trims the orthogonal axes, so reduced sweeps finish in seconds while
    every thread-count effect survives: 32 (TC) x 2 (BC) x 2 (UIF) x 1 (PL)
    x 2 (CFLAGS) = 256 variants.
    """
    return ParameterSpace([
        Parameter("TC", tuple(range(32, 1025, 32))),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])


def space_for(full: bool) -> ParameterSpace:
    return default_tuning_spec() if full else reduced_space()


def sizes_for(benchmark_name: str, full: bool) -> tuple:
    bm = get_benchmark(benchmark_name)
    if full:
        return bm.sizes
    return bm.sizes[::2]  # first, middle, largest


def resolve_gpus(archs=None) -> list[GPUSpec]:
    if archs is None:
        return list(ALL_GPUS)
    return [get_gpu(a) for a in archs]


def resolve_kernels(kernels=None) -> list[str]:
    if kernels is None:
        return list(KERNEL_ORDER)
    out = []
    for k in kernels:
        get_benchmark(k)  # validates
        out.append(k.strip().lower())
    return out


_SWEEP_CACHE: dict = {}


def exhaustive_sweep(
    kernel: str, gpu: GPUSpec, full: bool = False
) -> TuningResults:
    """The pooled exhaustive sweep for (kernel, GPU): measurements of every
    variant at every input size (Fig. 4 / Table V data).  Cached per
    process, since several experiments share it."""
    key = (kernel, gpu.name, full)
    if key not in _SWEEP_CACHE:
        bm = get_benchmark(kernel)
        tuner = Autotuner(bm, gpu, space=space_for(full))
        _SWEEP_CACHE[key] = tuner.sweep(sizes=sizes_for(kernel, full))
    return _SWEEP_CACHE[key]


def clear_sweep_cache() -> None:
    _SWEEP_CACHE.clear()
