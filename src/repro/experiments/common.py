"""Shared experiment infrastructure: sweep configuration and caching.

The sweep-backed experiments (fig4, table5, fig5, fig6) all draw from
:func:`exhaustive_sweep`, which routes through the
:class:`~repro.engine.engine.SweepEngine`.  :func:`configure_sweeps` sets
the process-wide engine policy (worker count, persistent cache dir,
progress reporting) -- the runner's ``--jobs``/``--cache`` flags land
here -- without threading engine arguments through every experiment
module's signature.
"""

from __future__ import annotations


from repro.arch.specs import ALL_GPUS, GPUSpec, get_gpu
from repro.autotune.space import Parameter, ParameterSpace
from repro.autotune.spec import default_tuning_spec
from repro.autotune.tuner import Autotuner
from repro.autotune.results import TuningResults
from repro.engine import CacheStore, StderrProgress, SweepEngine
from repro.kernels import get_benchmark

KERNEL_ORDER = ("atax", "bicg", "ex14fj", "matvec2d")
"""Paper presentation order of the Table IV kernels."""


def reduced_space() -> ParameterSpace:
    """A structure-preserving subset of the Table III space.

    Keeps the full 32-value thread axis (every experiment's subject) but
    trims the orthogonal axes, so reduced sweeps finish in seconds while
    every thread-count effect survives: 32 (TC) x 2 (BC) x 2 (UIF) x 1 (PL)
    x 2 (CFLAGS) = 256 variants.
    """
    return ParameterSpace([
        Parameter("TC", tuple(range(32, 1025, 32))),
        Parameter("BC", (48, 144)),
        Parameter("UIF", (1, 3)),
        Parameter("PL", (16,)),
        Parameter("CFLAGS", ("", "-use_fast_math")),
    ])


def space_for(full: bool) -> ParameterSpace:
    return default_tuning_spec() if full else reduced_space()


def sizes_for(benchmark_name: str, full: bool) -> tuple:
    bm = get_benchmark(benchmark_name)
    if full:
        return bm.sizes
    return bm.sizes[::2]  # first, middle, largest


def resolve_gpus(archs=None) -> list[GPUSpec]:
    if archs is None:
        return list(ALL_GPUS)
    return [get_gpu(a) for a in archs]


def resolve_kernels(kernels=None) -> list[str]:
    if kernels is None:
        return list(KERNEL_ORDER)
    out = []
    for k in kernels:
        get_benchmark(k)  # validates
        out.append(k.strip().lower())
    return out


_SWEEP_CACHE: dict = {}

_ENGINE_CONFIG = {"jobs": 1, "cache_dir": None, "progress": False}
_SHARED_ENGINE: list = [None, False]  # [engine, built?]


def configure_sweeps(jobs: int = 1, cache_dir=None,
                     progress: bool = False) -> None:
    """Set the process-wide sweep engine policy.

    ``jobs`` worker processes per sweep; ``cache_dir`` a directory for the
    persistent :class:`~repro.engine.cache.CacheStore` (``None`` disables
    persistence); ``progress`` paints a stderr meter.  Library callers and
    the test suite default to serial, uncached sweeps.
    """
    _ENGINE_CONFIG.update(
        jobs=jobs, cache_dir=cache_dir, progress=progress
    )
    _SHARED_ENGINE[:] = [None, False]


def shared_engine() -> SweepEngine | None:
    """The :class:`SweepEngine` honouring :func:`configure_sweeps` (one
    per configuration, so its cache connection and hit counters persist
    across experiments), or ``None`` for the plain serial default."""
    if not _SHARED_ENGINE[1]:
        cfg = _ENGINE_CONFIG
        if cfg["jobs"] == 1 and not cfg["cache_dir"] and not cfg["progress"]:
            engine = None
        else:
            engine = SweepEngine(
                jobs=cfg["jobs"],
                cache=CacheStore(cfg["cache_dir"]) if cfg["cache_dir"]
                else None,
                progress=StderrProgress() if cfg["progress"] else None,
            )
        _SHARED_ENGINE[:] = [engine, True]
    return _SHARED_ENGINE[0]


def shutdown_sweeps() -> None:
    """Deterministically release the shared engine's workers and close
    its cache store (the runner calls this on exit and on interrupt;
    measurements checkpointed so far stay persisted)."""
    engine = _SHARED_ENGINE[0] if _SHARED_ENGINE[1] else None
    if engine is not None:
        engine.close()
        if engine.cache is not None:
            engine.cache.close()
    _SHARED_ENGINE[:] = [None, False]


def exhaustive_sweep(
    kernel: str, gpu: GPUSpec, full: bool = False
) -> TuningResults:
    """The pooled exhaustive sweep for (kernel, GPU): measurements of every
    variant at every input size (Fig. 4 / Table V data).  Cached per
    process, since several experiments share it; the engine adds process
    parallelism and the persistent cross-run cache when configured."""
    key = (kernel, gpu.name, full)
    if key not in _SWEEP_CACHE:
        bm = get_benchmark(kernel)
        tuner = Autotuner(bm, gpu, space=space_for(full))
        _SWEEP_CACHE[key] = tuner.sweep(
            sizes=sizes_for(kernel, full), engine=shared_engine()
        )
    return _SWEEP_CACHE[key]


def clear_sweep_cache() -> None:
    _SWEEP_CACHE.clear()
