"""Table VII: suggested parameters to achieve theoretical occupancy.

Per kernel and architecture: the thread counts ``T*`` the static analyzer
suggests, the register usage and increase potential ``[R_u : R*]``, the
shared-memory headroom ``S*`` (bytes), and the attainable occupancy
``occ*``.  Purely static -- nothing is executed.
"""

from __future__ import annotations

from repro.core.analyzer import StaticAnalyzer
from repro.experiments.common import resolve_gpus, resolve_kernels
from repro.kernels import get_benchmark
from repro.util.tables import ascii_table

_FAMILY_SHORT = {"Fermi": "Fer", "Kepler": "Kep", "Maxwell": "Max",
                 "Pascal": "Pas"}


def run(archs=None, kernels=None) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    rows = []
    for kernel in names:
        bm = get_benchmark(kernel)
        env = bm.param_env(bm.sizes[-1])
        for gpu in gpus:
            rep = StaticAnalyzer(gpu).analyze(
                list(bm.specs), env, name=kernel
            )
            s = rep.suggestion
            rows.append({
                "kernel": kernel,
                "arch": _FAMILY_SHORT[gpu.family],
                "threads": list(s.threads),
                "ru": s.regs_used,
                "rstar": s.reg_increase,
                "sstar": s.smem_headroom,
                "occ": s.best_occupancy,
                "intensity": rep.intensity,
            })
    return {"rows": rows}


def render(result: dict) -> str:
    return ascii_table(
        ["Kernel", "Arch", "T*", "[Ru : R*]", "S*", "occ*", "Itns"],
        [
            [r["kernel"], r["arch"],
             ", ".join(str(t) for t in r["threads"]),
             f"[{r['ru']} : {r['rstar']}]", r["sstar"], r["occ"],
             r["intensity"]]
            for r in result["rows"]
        ],
        title="Table VII: suggested parameters to achieve theoretical "
              "occupancy",
        align_right=False,
    )


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
