"""Fig. 6: improved search time over exhaustive autotuning.

For every kernel and architecture, the improvement is the fraction of the
exhaustive search space the static analyzer removes:

- "Static": the ``TC`` axis reduced from 32 settings to ``|T*|``
  (e.g. 4 on Kepler -> 87.5% improvement);
- "RB": the intensity rule (Sec. III-C) further halves ``T*``
  (-> ~93.8% improvement).

The experiment also verifies the *quality* of the pruned search: the best
variant found inside the reduced space, relative to the exhaustive
optimum, at the largest input size.  The black-box strategies the paper
compares against (random, simulated annealing, genetic, Nelder-Mead) run
at the same measurement budget the static module spends, so the table
shows what that budget buys without the model.  Every strategy -- model-
guided and black-box alike -- evaluates in ask/tell batches through the
shared sweep engine, so a re-run against a warm cache measures nothing.
"""

from __future__ import annotations

from repro.autotune.tuner import Autotuner
from repro.experiments.common import (
    resolve_gpus,
    resolve_kernels,
    shared_engine,
    sizes_for,
    space_for,
)
from repro.kernels import get_benchmark
from repro.util.tables import ascii_bar_chart, ascii_table

USES_SHARED_SWEEP = True
"""Tunes through the shared engine: the runner keeps this experiment in
the coordinating process so it reuses the engine pool and cache."""

HEURISTICS = ("random", "annealing", "genetic", "simplex")
"""The black-box baselines, run at the static module's budget."""


def run(full: bool = False, archs=None, kernels=None,
        verify_quality: bool = True, heuristics=HEURISTICS) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    space = space_for(full)
    engine = shared_engine()
    heuristics = tuple(heuristics or ())
    rows = []
    for kernel in names:
        bm = get_benchmark(kernel)
        size = sizes_for(kernel, full)[-1]
        for gpu in gpus:
            tuner = Autotuner(bm, gpu, space=space)
            entry = {"kernel": kernel, "arch": gpu.name}
            if verify_quality:
                exhaustive = tuner.tune(size=size, search="exhaustive",
                                        engine=engine)
                base_best = exhaustive.best_seconds
            for label, use_rule in (("static", False), ("rb", True)):
                out = tuner.tune(size=size, search="static",
                                 use_rule=use_rule, engine=engine)
                entry[f"{label}_improvement"] = out.search.space_reduction
                entry[f"{label}_evals"] = out.search.evaluations
                if verify_quality:
                    entry[f"{label}_quality"] = (
                        out.best_seconds / base_best if base_best else 1.0
                    )
            # black-box baselines at the static budget, batched through
            # the same engine
            budget = entry["static_evals"]
            for name in heuristics:
                out = tuner.tune(size=size, search=name, budget=budget,
                                 engine=engine)
                entry[f"{name}_evals"] = out.search.evaluations
                if verify_quality:
                    entry[f"{name}_quality"] = (
                        out.best_seconds / base_best if base_best else 1.0
                    )
            rows.append(entry)
    return {"rows": rows, "space_size": len(space), "full": full,
            "heuristics": list(heuristics)}


def render(result: dict) -> str:
    has_quality = "static_quality" in result["rows"][0]
    headers = ["Kernel", "Arch", "Static impr.", "RB impr.",
               "Static evals", "RB evals"]
    if has_quality:
        headers += ["Static t/t_opt", "RB t/t_opt"]
    body = []
    for r in result["rows"]:
        row = [r["kernel"], r["arch"],
               f"{r['static_improvement']:.3f}",
               f"{r['rb_improvement']:.3f}",
               r["static_evals"], r["rb_evals"]]
        if has_quality:
            row += [f"{r['static_quality']:.3f}", f"{r['rb_quality']:.3f}"]
        body.append(row)
    table = ascii_table(
        headers, body,
        title=(f"Fig. 6: search-space improvement over exhaustive "
               f"({result['space_size']} variants)"),
    )
    heuristics = result.get("heuristics") or []
    if heuristics:
        headers2 = ["Kernel", "Arch", "Strategy", "Evals"]
        if has_quality:
            headers2.append("t/t_opt")
        body2 = []
        for r in result["rows"]:
            for name in heuristics:
                row = [r["kernel"], r["arch"], name, r[f"{name}_evals"]]
                if has_quality:
                    row.append(f"{r[f'{name}_quality']:.3f}")
                body2.append(row)
        table += "\n" + ascii_table(
            headers2, body2,
            title=("\nBlack-box strategies at the static budget "
                   "(batched through the sweep engine):"),
        )
    labels, values = [], []
    for r in result["rows"]:
        labels.append(f"{r['kernel'][:8]:8s}/{r['arch']:5s} static")
        values.append(r["static_improvement"])
        labels.append(f"{r['kernel'][:8]:8s}/{r['arch']:5s} RB")
        values.append(r["rb_improvement"])
    chart = ascii_bar_chart(labels, values, max_value=1.0,
                            title="\nImprovement (fraction of space removed):",
                            fmt="{:.1%}")
    return table + "\n" + chart


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
