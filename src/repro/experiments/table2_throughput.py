"""Table II: instruction throughput per number of cycles."""

from __future__ import annotations

from repro.arch.throughput import THROUGHPUT_BY_SM, InstrCategory
from repro.util.tables import ascii_table


def run() -> dict:
    sms = sorted(THROUGHPUT_BY_SM)
    rows = []
    for cat in InstrCategory:
        rows.append(
            [cat.value, cat.pipe.value]
            + [THROUGHPUT_BY_SM[sm].ipc(cat) for sm in sms]
        )
    return {"sms": sms, "rows": rows}


def render(result: dict) -> str:
    headers = ["Category", "Class"] + [f"SM{sm}" for sm in result["sms"]]
    return ascii_table(
        headers, result["rows"],
        title="Table II: instruction throughput (IPC) per SM version",
    )


def main() -> str:
    text = render(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
