"""Fig. 4: thread counts for Orio exhaustive autotuning, by rank.

For each (kernel, architecture), the exhaustive sweep's variants are split
at the 50th percentile of execution time; the histograms of the thread
counts (``TC``) of each rank group reproduce the paper's Fig. 4 panels:
atax and BiCG concentrate Rank-1 mass at the lower thread ranges,
matVec2D and ex14FJ at the upper ranges.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    exhaustive_sweep,
    resolve_gpus,
    resolve_kernels,
)
from repro.util.tables import ascii_histogram

USES_SHARED_SWEEP = True
"""Drawn from the pooled exhaustive sweep: the runner keeps this
experiment in the coordinating process so measurements are shared."""

_BINS = np.arange(0, 1057, 96)


def run(full: bool = False, archs=None, kernels=None) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    panels = {}
    for kernel in names:
        for gpu in gpus:
            results = exhaustive_sweep(kernel, gpu, full)
            c1, edges = results.thread_histogram(1, bins=_BINS)
            c2, _ = results.thread_histogram(2, bins=_BINS)
            r1 = [
                float(rv.measurement.config["TC"])
                for rv in results.ranked() if rv.rank == 1
            ]
            r2 = [
                float(rv.measurement.config["TC"])
                for rv in results.ranked() if rv.rank == 2
            ]
            panels[(kernel, gpu.name)] = {
                "rank1_hist": c1.tolist(),
                "rank2_hist": c2.tolist(),
                "edges": edges.tolist(),
                "rank1_median": float(np.median(r1)) if r1 else float("nan"),
                "rank2_median": float(np.median(r2)) if r2 else float("nan"),
            }
    return {"panels": panels, "full": full}


def render(result: dict) -> str:
    out = ["Fig. 4: thread counts for exhaustive autotuning "
           "(rank 1 = good performers)"]
    for (kernel, gpu), panel in result["panels"].items():
        out.append(f"\n=== kernel={kernel}  arch={gpu} ===")
        edges = panel["edges"]
        for rank in (1, 2):
            hist = panel[f"rank{rank}_hist"]
            vals = []
            for c, lo in zip(hist, edges):
                vals.extend([lo + 1] * int(c))
            out.append(
                ascii_histogram(
                    vals or [0], bins=edges, width=36,
                    title=(f"rank {rank} (median TC="
                           f"{panel[f'rank{rank}_median']:.0f})"),
                )
            )
    return "\n".join(out)


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
