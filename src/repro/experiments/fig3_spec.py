"""Fig. 3 / Table III: the performance-tuning specification and its space."""

from __future__ import annotations

from repro.autotune.spec import DEFAULT_SPEC_TEXT, parse_perf_tuning
from repro.util.tables import ascii_table


def run() -> dict:
    space = parse_perf_tuning(DEFAULT_SPEC_TEXT)
    return {
        "text": DEFAULT_SPEC_TEXT,
        "parameters": [
            (p.name, len(p), str(list(p.values))[:60]) for p in space.parameters
        ],
        "size": len(space),
    }


def render(result: dict) -> str:
    out = ["Fig. 3: performance tuning specification in Orio", "",
           result["text"]]
    out.append(ascii_table(
        ["Param", "Options", "Values"],
        result["parameters"],
        title="Table III: tuning feature space",
        align_right=False,
    ))
    out.append(f"\nTotal variants: {result['size']}")
    return "\n".join(out)


def main() -> str:
    text = render(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
