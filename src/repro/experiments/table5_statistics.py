"""Table V: statistics for autotuned kernels by rank group.

Occupancy (mean / std / mode, in percent), dynamic register-instruction
traffic (mean / std), allocated registers per thread, and the 25th/50th/
75th percentiles of the thread counts -- for good performers (Rank 1, top
half) and poor performers (Rank 2, bottom half), per kernel and
architecture generation.
"""

from __future__ import annotations

from repro.experiments.common import (
    exhaustive_sweep,
    resolve_gpus,
    resolve_kernels,
)
from repro.util.tables import ascii_table

USES_SHARED_SWEEP = True
"""Drawn from the pooled exhaustive sweep: the runner keeps this
experiment in the coordinating process so measurements are shared."""

_FAMILY_SHORT = {"Fermi": "Fer", "Kepler": "Kep", "Maxwell": "Max",
                 "Pascal": "Pas"}


def run(full: bool = False, archs=None, kernels=None) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    rows = {1: [], 2: []}
    for rank in (1, 2):
        for kernel in names:
            for gpu in gpus:
                results = exhaustive_sweep(kernel, gpu, full)
                st = results.rank_statistics(rank)
                rows[rank].append({
                    "kernel": kernel,
                    "arch": _FAMILY_SHORT[gpu.family],
                    **st,
                })
    return {"rank1": rows[1], "rank2": rows[2], "full": full}


def _table(rows, title):
    return ascii_table(
        ["Kernel", "Arch", "Occ mean", "Occ std", "Occ mode",
         "RegInstr mean", "RegInstr std", "Regs alloc",
         "Thr 25th", "Thr 50th", "Thr 75th"],
        [
            [r["kernel"], r["arch"], r["occ_mean"], r["occ_std"],
             r["occ_mode"], r["reg_mean"], r["reg_std"],
             r["regs_allocated"], r["threads_p25"], r["threads_p50"],
             r["threads_p75"]]
            for r in rows
        ],
        title=title,
    )


def render(result: dict) -> str:
    return (
        _table(result["rank1"],
               "Table V (top half): Rank 1 -- good performers")
        + "\n\n"
        + _table(result["rank2"],
                 "Table V (bottom half): Rank 2 -- poor performers")
    )


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
