"""``suite``: the cross-kernel corpus evaluation (beyond the paper).

Runs every selected corpus member -- by default all ~11 registered
benchmarks, filterable with ``--tag``/``--kernel`` -- through the shared
sweep engine on every selected GPU and renders two cross-kernel tables:

- **model accuracy**: the Fig. 5 profile MAE of the Eq. 6 static time
  estimate and the Table VI static-vs-dynamic instruction-mix error,
  side by side for the whole corpus, so a model regression on *any*
  workload class (stencil, reduction, multi-pass, ...) is visible in
  one artifact;
- **autotuning quality**: the static module's choice (and the
  intensity-rule variant) against the exhaustively-searched optimum of
  each member's own evaluation space -- the Fig. 6 quality check,
  corpus-wide.

Each member is evaluated over its *own* declared tuning space
(:func:`repro.suite.corpus.corpus_space`), which honours structural
constraints such as tile-multiple thread counts.
"""

from __future__ import annotations

from repro.experiments.common import resolve_gpus, shared_engine
from repro.suite import (
    accuracy_row,
    corpus_members,
    corpus_sizes,
    corpus_space,
    quality_row,
)
from repro.util.tables import ascii_table

USES_SHARED_SWEEP = True
"""Measures through the shared engine: the runner keeps this experiment
in the coordinating process so it reuses the engine pool and cache."""


def run(full: bool = False, archs=None, kernels=None, tags=None) -> dict:
    gpus = resolve_gpus(archs)
    members = corpus_members(tags=tags, kernels=kernels)
    if not members:
        raise ValueError("no corpus members match the tag/kernel filters")
    engine = shared_engine()
    accuracy, quality = [], []
    for bm in members:
        space = corpus_space(bm, full)
        sizes = corpus_sizes(bm, full)
        for gpu in gpus:
            accuracy.append(
                accuracy_row(bm, gpu, space, sizes, engine=engine)
            )
            quality.append(
                quality_row(bm, gpu, space, sizes[-1], engine=engine)
            )
    return {
        "accuracy": accuracy,
        "quality": quality,
        "members": [bm.name for bm in members],
        "tags": {bm.name: list(bm.tags) for bm in members},
        "full": full,
    }


def render(result: dict) -> str:
    corpus = ", ".join(result["members"])
    acc = ascii_table(
        ["Kernel", "Arch", "Variants", "Time MAE", "Mix err", "Itns",
         "SIMD eff", "Count err"],
        [[r["kernel"], r["arch"], r["variants"], r["time_mae"],
          r["mix_err"], r["intensity"], f"{r['simd_eff']:.3f}",
          f"{r['count_err']:.2e}"] for r in result["accuracy"]],
        title=("Suite: model accuracy across the corpus "
               "(Eq. 6 profile MAE / static-vs-dynamic mix error / "
               "emulator back-validation)"),
    )
    qual = ascii_table(
        ["Kernel", "Arch", "Size", "Best TC", "Static TC",
         "Static t/t*", "RB t/t*", "Static impr."],
        [[r["kernel"], r["arch"], r["size"], r["best_tc"], r["static_tc"],
          f"{r['static_quality']:.3f}", f"{r['rb_quality']:.3f}",
          f"{r['static_reduction']:.3f}"] for r in result["quality"]],
        title=("\nSuite: autotuning quality (static choice vs. "
               "best-searched config)"),
    )
    tagged = "\n".join(
        f"  {name:12s} [{', '.join(result['tags'][name])}]"
        for name in result["members"]
    )
    return f"Corpus ({len(result['members'])}): {corpus}\n{tagged}\n\n" \
           f"{acc}\n{qual}"


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
