"""Table VI: error rates when estimating dynamic mixes from static mixes.

For each kernel and architecture (the paper reports Fermi, Kepler and
Maxwell), the static analyzer's mix estimate is compared against the
ground-truth dynamic counts at every input size.  The error per class
(FLOPS / MEM / CTRL) is the sum over the input sizes of the squared
relative error of the class fraction:

    err_c = sum_N ((static_frac_c(N) - dyn_frac_c(N)) / dyn_frac_c(N))^2

The final column is the computational intensity from the static mix (the
value the Sec. III-C rule thresholds at 4.0).
"""

from __future__ import annotations

from repro.arch.throughput import PipeClass
from repro.codegen.compiler import CompileOptions, compile_module
from repro.experiments.common import resolve_gpus, resolve_kernels
from repro.kernels import get_benchmark
from repro.suite.evaluate import BASELINE_TC, mix_error_by_class
from repro.util.tables import ascii_table

_FAMILY_SHORT = {"Fermi": "Fer", "Kepler": "Kep", "Maxwell": "Max",
                 "Pascal": "Pas"}


def run(archs=("fermi", "kepler", "maxwell"), kernels=None,
        full: bool = False) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    rows = []
    for kernel in names:
        bm = get_benchmark(kernel)
        sizes = bm.sizes if full else bm.sizes[::2]
        for gpu in gpus:
            module = compile_module(
                kernel, list(bm.specs), CompileOptions(gpu=gpu)
            )
            errs, itns = mix_error_by_class(module, bm.param_env, sizes)
            rows.append({
                "kernel": kernel,
                "arch": _FAMILY_SHORT[gpu.family],
                "flops": errs[PipeClass.FLOPS],
                "mem": errs[PipeClass.MEM],
                "ctrl": errs[PipeClass.CTRL],
                "intensity": itns,
            })
    return {"rows": rows, "baseline_tc": BASELINE_TC}


def render(result: dict) -> str:
    return ascii_table(
        ["Kernel", "Arch", "FLOPS", "MEM", "CTRL", "Itns"],
        [[r["kernel"], r["arch"], r["flops"], r["mem"], r["ctrl"],
          r["intensity"]] for r in result["rows"]],
        title=("Table VI: error when estimating dynamic mixes from static "
               f"mixes (sum of squares over sizes; dynamic baseline "
               f"TC={result['baseline_tc']}, BC=ceil(M/TC))"),
    )


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
