"""Table VI: error rates when estimating dynamic mixes from static mixes.

For each kernel and architecture (the paper reports Fermi, Kepler and
Maxwell), the static analyzer's mix estimate is compared against the
ground-truth dynamic counts at every input size.  The error per class
(FLOPS / MEM / CTRL) is the sum over the input sizes of the squared
relative error of the class fraction:

    err_c = sum_N ((static_frac_c(N) - dyn_frac_c(N)) / dyn_frac_c(N))^2

The final column is the computational intensity from the static mix (the
value the Sec. III-C rule thresholds at 4.0).
"""

from __future__ import annotations

from repro.arch.throughput import PipeClass
from repro.codegen.compiler import CompileOptions, compile_module
from repro.core.instruction_mix import static_mix_module
from repro.experiments.common import resolve_gpus, resolve_kernels
from repro.kernels import get_benchmark
from repro.sim.counting import exact_counts
from repro.sim.timing import LaunchConfig
from repro.util.tables import ascii_table

_FAMILY_SHORT = {"Fermi": "Fer", "Kepler": "Kep", "Maxwell": "Max",
                 "Pascal": "Pas"}

_BASELINE_TC = 128


def _baseline_launch(module, env) -> LaunchConfig:
    """The dynamic baseline: TC=128 with a grid sized to the work.

    Launching far more threads than parallel-loop iterations would fill the
    dynamic counts with idle-thread preambles and say nothing about the
    kernel; a practitioner sizes the grid to ``ceil(M / TC)`` (capped at
    the tuning space's maximum of 192 blocks).
    """
    from repro.codegen.ast_nodes import evaluate_expr

    extent = 0
    for ck in module:
        if ck.parallel_extent is not None:
            extent = max(extent, int(evaluate_expr(ck.parallel_extent, env)))
    bc = max(1, min(192, -(-extent // _BASELINE_TC))) if extent else 1
    return LaunchConfig(tc=_BASELINE_TC, bc=bc)


def _fractions(by_pipe: dict) -> dict:
    tot = sum(v for k, v in by_pipe.items() if k is not PipeClass.REG)
    tot = max(tot, 1e-12)
    return {k: v / tot for k, v in by_pipe.items() if k is not PipeClass.REG}


def run(archs=("fermi", "kepler", "maxwell"), kernels=None,
        full: bool = False) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    rows = []
    for kernel in names:
        bm = get_benchmark(kernel)
        sizes = bm.sizes if full else bm.sizes[::2]
        for gpu in gpus:
            module = compile_module(
                kernel, list(bm.specs), CompileOptions(gpu=gpu)
            )
            errs = {PipeClass.FLOPS: 0.0, PipeClass.MEM: 0.0,
                    PipeClass.CTRL: 0.0}
            itns = 0.0
            for n in sizes:
                env = bm.param_env(n)
                smix = static_mix_module(module, env)
                sfrac = _fractions(smix.by_pipe())
                launch = _baseline_launch(module, env)
                dyn_pipe = {p: 0.0 for p in PipeClass}
                for ck in module:
                    dc = exact_counts(ck, env, launch.tc, launch.bc)
                    for p, v in dc.by_pipe().items():
                        dyn_pipe[p] += v
                dfrac = _fractions(dyn_pipe)
                for p in errs:
                    d = max(dfrac[p], 1e-12)
                    errs[p] += ((sfrac[p] - d) / d) ** 2
                itns = smix.intensity
            rows.append({
                "kernel": kernel,
                "arch": _FAMILY_SHORT[gpu.family],
                "flops": errs[PipeClass.FLOPS],
                "mem": errs[PipeClass.MEM],
                "ctrl": errs[PipeClass.CTRL],
                "intensity": itns,
            })
    return {"rows": rows, "baseline_tc": _BASELINE_TC}


def render(result: dict) -> str:
    return ascii_table(
        ["Kernel", "Arch", "FLOPS", "MEM", "CTRL", "Itns"],
        [[r["kernel"], r["arch"], r["flops"], r["mem"], r["ctrl"],
          r["intensity"]] for r in result["rows"]],
        title=("Table VI: error when estimating dynamic mixes from static "
               f"mixes (sum of squares over sizes; dynamic baseline "
               f"TC={result['baseline_tc']}, BC=ceil(M/TC))"),
    )


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
