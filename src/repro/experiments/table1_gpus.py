"""Table I: GPUs used in this experiment (hardware parameters)."""

from __future__ import annotations

from repro.arch.specs import ALL_GPUS
from repro.util.tables import ascii_table

_ROWS = [
    ("cc", "CUDA capability", lambda g: g.compute_capability),
    ("", "Global mem (MB)", lambda g: g.global_mem_mb),
    ("mp", "Multiprocessors", lambda g: g.multiprocessors),
    ("", "CUDA cores / mp", lambda g: g.cores_per_mp),
    ("", "CUDA cores", lambda g: g.cuda_cores),
    ("", "GPU clock (MHz)", lambda g: g.gpu_clock_mhz),
    ("", "Mem clock (MHz)", lambda g: g.mem_clock_mhz),
    ("", "L2 cache (MB)", lambda g: g.l2_cache_mb),
    ("", "Constant mem (B)", lambda g: g.constant_mem_bytes),
    ("SccB", "Sh mem block (B)", lambda g: g.smem_per_block_bytes),
    ("Rccfs", "Regs per block", lambda g: g.regfile_per_block),
    ("WB", "Warp size", lambda g: g.warp_size),
    ("Tccmp", "Threads per mp", lambda g: g.max_threads_per_mp),
    ("TccB", "Threads per block", lambda g: g.max_threads_per_block),
    ("Bccmp", "Thread blocks / mp", lambda g: g.max_blocks_per_mp),
    ("TccW", "Threads per warp", lambda g: g.warp_size),
    ("Wccmp", "Warps per mp", lambda g: g.max_warps_per_mp),
    ("RccB", "Reg alloc size", lambda g: g.reg_alloc_unit),
    ("RccT", "Regs per thread", lambda g: g.max_regs_per_thread),
    ("", "Family", lambda g: g.family),
]


def run() -> dict:
    return {
        "gpus": [g.name for g in ALL_GPUS],
        "rows": [
            [sym, label] + [fn(g) for g in ALL_GPUS]
            for sym, label, fn in _ROWS
        ],
    }


def render(result: dict) -> str:
    headers = ["Sym", "Parameter"] + result["gpus"]
    return ascii_table(headers, result["rows"],
                       title="Table I: GPUs used in this experiment")


def main() -> str:
    text = render(run())
    print(text)
    return text


if __name__ == "__main__":
    main()
