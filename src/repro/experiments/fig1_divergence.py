"""Fig. 1: the branch divergence problem and the performance loss incurred.

A synthetic kernel splits each warp across ``P`` different branch paths
(path selected by ``n % P``).  Under SIMT execution the warp serializes
every path its lanes touch, so useful-lane efficiency drops toward ``1/P``
and issued instructions grow accordingly.  The experiment runs the warp
emulator for P in {1, 2, 4, 8, 16, 32} and reports measured SIMD
efficiency, issue inflation, and the static analyzer's prediction for the
same kernels.
"""

from __future__ import annotations

from repro.arch.specs import K20
from repro.codegen import dsl
from repro.codegen.compiler import CompileOptions, compile_kernel
from repro.core.divergence import analyze_divergence
from repro.sim.emulator import emulate_kernel
from repro.sim.memory import DeviceMemory
from repro.util.rng import rng_for
from repro.util.tables import ascii_bar_chart, ascii_table

import numpy as np


def build_divergent_kernel(paths: int):
    """A kernel whose warp splits into ``paths`` serialized branch arms.

    The arms form an if/else-if chain (a switch over ``n % paths``), so
    each thread executes exactly one arm and lanes of a warp fan out
    across all ``paths`` of them.  Under SIMT execution with immediate-
    post-dominator reconvergence the warp serializes every arm its lanes
    touch -- issue counts grow toward ``paths``-fold while useful-lane
    efficiency collapses.
    """
    N = dsl.sparam("N")
    x = dsl.farray("x")
    out = dsl.farray("out")
    n = dsl.ivar("n")
    acc = dsl.var("acc", "f32")

    def heavy(k: int):
        # enough work per arm to defeat if-conversion: a small fma chain
        e = acc
        for c in range(4):
            e = e * dsl.f32(1.0001 + k * 0.1 + c) + dsl.f32(0.5 + c)
        return [dsl.assign("acc", e)]

    def chain_from(k: int):
        if k == paths - 1:
            return heavy(k)
        return [dsl.when((n % paths).eq(k), heavy(k), chain_from(k + 1))]

    body = [dsl.assign("acc", x[n])]
    body.extend(heavy(0) if paths == 1 else chain_from(0))
    body.append(out.store(n, acc))

    return dsl.kernel(
        f"divergent_p{paths}",
        params=[N, x, out],
        body=[dsl.pfor(n, N, body)],
    )


def run(n: int = 2048, tc: int = 128, bc: int = 4,
        path_counts=(1, 2, 4, 8, 16, 32)) -> dict:
    rng = rng_for("fig1")
    rows = []
    base_issues = None
    emu_mode = "scalar"
    for paths in path_counts:
        spec = build_divergent_kernel(paths)
        ck = compile_kernel(spec, CompileOptions(gpu=K20))
        memory = DeviceMemory()
        memory.alloc("x", rng.standard_normal(n).astype(np.float32))
        memory.alloc("out", np.zeros(n, dtype=np.float32))
        res, _ = emulate_kernel(ck, {"N": n, "x": None, "out": None},
                                tc=tc, bc=bc, memory=memory)
        static = analyze_divergence(ck)
        if res.profile is not None:
            emu_mode = res.profile.mode
        issues = res.total_issues
        if base_issues is None:
            base_issues = issues
        rows.append({
            "paths": paths,
            "simd_efficiency": res.simd_efficiency,
            "issue_inflation": issues / base_issues,
            "divergent_branches": res.divergent_branches,
            "static_divergent": static.divergent_branches,
            "static_efficiency": static.expected_efficiency,
        })
    return {"n": n, "tc": tc, "bc": bc, "rows": rows, "emu_mode": emu_mode}


def render(result: dict) -> str:
    table = ascii_table(
        ["Paths/warp", "SIMD eff (measured)", "Issue inflation",
         "Divergent branches", "Static branches", "SIMD eff (static)"],
        [
            [r["paths"], r["simd_efficiency"], r["issue_inflation"],
             r["divergent_branches"], r["static_divergent"],
             r["static_efficiency"]]
            for r in result["rows"]
        ],
        title=(
            "Fig. 1: branch divergence performance loss "
            f"(N={result['n']}, TC={result['tc']}, BC={result['bc']}, "
            f"emulated on the {result.get('emu_mode', 'scalar')} path)"
        ),
    )
    chart = ascii_bar_chart(
        [f"P={r['paths']:2d}" for r in result["rows"]],
        [r["issue_inflation"] for r in result["rows"]],
        title="\nRelative issued instructions (1.0 = no divergence):",
        fmt="{:.2f}x",
    )
    return table + "\n" + chart


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
