"""Fig. 7: the occupancy calculator's impact charts.

For the atax kernel (per the paper), render the occupancy achieved across
block sizes for the *current* kernel (its compiled register usage) and the
*potential* optimized version (registers raised by the analyzer's headroom
R*, shared memory raised by S*), mirroring the calculator's "impact of
varying block size / register count / shared memory" panels.
"""

from __future__ import annotations

from repro.core.analyzer import StaticAnalyzer
from repro.core.occupancy import occupancy_curve
from repro.experiments.common import resolve_gpus
from repro.kernels import get_benchmark
from repro.util.tables import ascii_bar_chart


def run(kernel: str = "atax", archs=("kepler",)) -> dict:
    bm = get_benchmark(kernel)
    env = bm.param_env(bm.sizes[-1])
    panels = {}
    for gpu in resolve_gpus(archs):
        rep = StaticAnalyzer(gpu).analyze(list(bm.specs), env, name=kernel)
        s = rep.suggestion
        cur = occupancy_curve(gpu, regs_u=s.regs_used, smem_u=0)
        pot = occupancy_curve(
            gpu, regs_u=s.regs_used + s.reg_increase, smem_u=s.smem_headroom
        )
        panels[gpu.name] = {
            "threads": [r.threads_u for r in cur],
            "current": [r.occupancy for r in cur],
            "potential": [r.occupancy for r in pot],
            "regs_used": s.regs_used,
            "reg_increase": s.reg_increase,
            "smem_headroom": s.smem_headroom,
            "t_star": list(s.threads),
            "occ_star": s.best_occupancy,
        }
    return {"kernel": kernel, "panels": panels}


def render(result: dict) -> str:
    out = [f"Fig. 7: occupancy calculator for {result['kernel']!r}: "
           "current (top) vs potential (bottom)"]
    for gpu, p in result["panels"].items():
        out.append(f"\n=== {gpu} ===")
        out.append(
            f"current: R={p['regs_used']} S=0 | potential: "
            f"R={p['regs_used'] + p['reg_increase']} S={p['smem_headroom']} "
            f"| T*={p['t_star']} occ*={p['occ_star']:g}"
        )
        sel = [i for i, t in enumerate(p["threads"]) if t % 64 == 0]
        labels = [f"T={p['threads'][i]:4d}" for i in sel]
        out.append(ascii_bar_chart(
            labels, [p["current"][i] for i in sel], max_value=1.0,
            title="occupancy, current kernel:", fmt="{:.2f}", width=40,
        ))
        out.append(ascii_bar_chart(
            labels, [p["potential"][i] for i in sel], max_value=1.0,
            title="occupancy, potential kernel (R*, S* applied):",
            fmt="{:.2f}", width=40,
        ))
    return "\n".join(out)


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
