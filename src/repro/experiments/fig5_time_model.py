"""Fig. 5: predicting execution time from static instruction mixes.

For every measured variant of the exhaustive sweep, Eq. 6 computes a
predicted relative cost from the variant's *static* mix (which varies with
the compile-time parameters and the input size, but -- being static --
cannot see the launch configuration).  Both series are min-max normalized
over the sweep, sorted by measured time, and compared with the mean
absolute error, per kernel and architecture.
"""

from __future__ import annotations

import numpy as np

from repro.core.instruction_mix import static_mix_module
from repro.core.timing_model import Eq6Model, profile_mae
from repro.experiments.common import (
    exhaustive_sweep,
    resolve_gpus,
    resolve_kernels,
)
from repro.kernels import get_benchmark
from repro.autotune.measure import Measurer
from repro.util.stats import normalize
from repro.util.tables import ascii_table

USES_SHARED_SWEEP = True
"""Drawn from the pooled exhaustive sweep: the runner keeps this
experiment in the coordinating process so measurements are shared."""


def run(full: bool = False, archs=None, kernels=None) -> dict:
    gpus = resolve_gpus(archs)
    names = resolve_kernels(kernels)
    rows = []
    curves = {}
    for kernel in names:
        bm = get_benchmark(kernel)
        for gpu in gpus:
            results = exhaustive_sweep(kernel, gpu, full)
            eq6 = Eq6Model.for_gpu(gpu)
            measurer = Measurer(bm, gpu)
            mix_cache: dict = {}
            predicted, observed = [], []
            for m in results.measurements:
                if not m.launchable:
                    continue
                key = (m.config["UIF"], m.config["CFLAGS"],
                       m.config["PL"], m.size)
                if key not in mix_cache:
                    module = measurer.module_for(m.config)
                    mix = static_mix_module(module, bm.param_env(m.size))
                    mix_cache[key] = eq6.weighted_cost(mix)
                predicted.append(mix_cache[key])
                observed.append(m.seconds)
            mae = profile_mae(predicted, observed)
            rows.append({"kernel": kernel, "arch": gpu.family, "mae": mae,
                         "variants": len(observed)})
            order = np.argsort(observed)
            curves[(kernel, gpu.name)] = {
                "predicted": normalize(np.asarray(predicted)[order]).tolist(),
                "observed": normalize(np.asarray(observed)[order]).tolist(),
            }
    return {"rows": rows, "curves": curves, "full": full}


def render(result: dict) -> str:
    table = ascii_table(
        ["Kernel", "Arch", "MAE", "Variants"],
        [[r["kernel"], r["arch"], r["mae"], r["variants"]]
         for r in result["rows"]],
        title="Fig. 5: MAE of Eq. 6 execution-time estimates "
              "(normalized, sorted profiles)",
    )
    # compact sparkline-style view of one curve pair per kernel
    lines = [table, "", "Profiles (o = observed, p = predicted; "
                        "x = both), 48 sample columns:"]
    for (kernel, gpu), c in result["curves"].items():
        obs = np.asarray(c["observed"])
        pred = np.asarray(c["predicted"])
        idx = np.linspace(0, len(obs) - 1, num=min(48, len(obs))).astype(int)
        row_o = "".join("x" if abs(obs[i] - pred[i]) < 0.08 else "o"
                        for i in idx)
        row_p = "".join(" " if abs(obs[i] - pred[i]) < 0.08 else "p"
                        for i in idx)
        lines.append(f"{kernel:9s}/{gpu:5s} |{row_o}|")
        lines.append(f"{'':15s} |{row_p}|")
    return "\n".join(lines)


def main(**kwargs) -> str:
    text = render(run(**kwargs))
    print(text)
    return text


if __name__ == "__main__":
    main()
