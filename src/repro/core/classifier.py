"""A STATuner-style learned block-size classifier (paper Sec. V / VII).

The paper contrasts its model-based approach with STATuner, which "uses
machine learning to build a classifier model trained on a CUDA benchmark
suite" from static metrics, predicting a single best block size; the
paper's future work plans "machine learning for code classification" to
complement the analytical models.

This module provides that baseline so the two philosophies can be compared
inside one framework:

- :func:`extract_features` turns a compiled benchmark into the STATuner
  feature vector -- instruction-mix fractions, intensity, register usage,
  shared memory, loop count, divergence -- all static;
- :class:`BlockSizeClassifier` is a multinomial logistic-regression
  classifier (plain NumPy, batch gradient descent) over thread-count
  classes;
- :func:`train_on_sweeps` builds a training set by sweeping benchmarks on
  the simulator and labelling each with its best thread count.

The comparison experiment lives in ``benchmarks/test_bench_classifier.py``:
the learned model predicts one block size, the paper's analytical T* a
*range* -- exactly the trade-off Sec. V discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.specs import GPUSpec
from repro.arch.throughput import InstrCategory
from repro.codegen.compiler import CompiledModule
from repro.core.divergence import analyze_divergence
from repro.core.instruction_mix import static_mix_module
from repro.ptx.cfg import build_cfg

#: thread-count classes the classifier predicts (powers of two, like
#: STATuner's candidate block sizes)
BLOCK_SIZE_CLASSES = (64, 128, 256, 512, 1024)

_FEATURE_CATS = (
    InstrCategory.FP32,
    InstrCategory.INT_ADD32,
    InstrCategory.SHIFT,
    InstrCategory.LOG_SIN_COS,
    InstrCategory.LDST,
    InstrCategory.PRED_CTRL,
    InstrCategory.MOVE,
)

FEATURE_NAMES = tuple(
    [f"frac_{c.name.lower()}" for c in _FEATURE_CATS]
    + ["intensity", "regs_per_thread", "smem_kb", "loops", "divergent",
       "log_extent"]
)


def extract_features(module: CompiledModule, env: dict) -> np.ndarray:
    """The static feature vector of one compiled benchmark."""
    mix = static_mix_module(module, env)
    fracs = mix.fractions()
    feats = [fracs.get(c, 0.0) for c in _FEATURE_CATS]
    itns = mix.intensity
    feats.append(min(itns, 32.0) / 32.0 if np.isfinite(itns) else 1.0)
    feats.append(module.regs_per_thread / 64.0)
    feats.append(module.static_smem_bytes / 49152.0)
    loops = sum(
        len(build_cfg(ck.ir).natural_loops()) for ck in module
    )
    feats.append(min(loops, 8) / 8.0)
    div = sum(
        analyze_divergence(ck).divergent_branches for ck in module
    )
    feats.append(min(div, 4) / 4.0)
    extent = 1.0
    from repro.codegen.ast_nodes import evaluate_expr

    for ck in module:
        if ck.parallel_extent is not None:
            extent = max(extent, float(evaluate_expr(ck.parallel_extent, env)))
    feats.append(np.log10(extent) / 8.0)
    return np.asarray(feats, dtype=float)


@dataclass
class TrainingSet:
    features: np.ndarray  # (n, d)
    labels: np.ndarray    # (n,) indices into BLOCK_SIZE_CLASSES
    tags: list            # provenance strings


class BlockSizeClassifier:
    """Multinomial logistic regression over block-size classes."""

    def __init__(self, n_features: int = len(FEATURE_NAMES),
                 n_classes: int = len(BLOCK_SIZE_CLASSES)):
        self.weights = np.zeros((n_features, n_classes))
        self.bias = np.zeros(n_classes)
        self.trained = False

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def fit(self, data: TrainingSet, epochs: int = 400,
            lr: float = 0.5, l2: float = 1e-3) -> list:
        """Batch gradient descent; returns the loss trajectory."""
        x, y = data.features, data.labels
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError("malformed training set")
        n, _ = x.shape
        onehot = np.zeros((n, len(BLOCK_SIZE_CLASSES)))
        onehot[np.arange(n), y] = 1.0
        losses = []
        for _ in range(epochs):
            probs = self._softmax(x @ self.weights + self.bias)
            grad_w = x.T @ (probs - onehot) / n + l2 * self.weights
            grad_b = (probs - onehot).mean(axis=0)
            self.weights -= lr * grad_w
            self.bias -= lr * grad_b
            losses.append(
                float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
            )
        self.trained = True
        return losses

    def predict(self, features: np.ndarray) -> int:
        """Predicted block size (a single value, like STATuner)."""
        if not self.trained:
            raise RuntimeError("classifier is not trained")
        f = np.atleast_2d(features)
        probs = self._softmax(f @ self.weights + self.bias)
        return int(BLOCK_SIZE_CLASSES[int(np.argmax(probs[0]))])

    def predict_proba(self, features: np.ndarray) -> dict:
        f = np.atleast_2d(features)
        probs = self._softmax(f @ self.weights + self.bias)[0]
        return dict(zip(BLOCK_SIZE_CLASSES, probs.tolist()))


def _nearest_class(tc: int) -> int:
    diffs = [abs(tc - c) for c in BLOCK_SIZE_CLASSES]
    return int(np.argmin(diffs))


def train_on_sweeps(
    gpu: GPUSpec,
    benchmark_names=("atax", "bicg", "matvec2d", "ex14fj"),
    sizes_per_benchmark: int = 3,
) -> tuple[BlockSizeClassifier, TrainingSet]:
    """Build a labelled corpus from simulator sweeps and fit the model.

    Each (benchmark, size, unroll, fast-math) cell contributes one sample:
    features from static analysis, label = the empirically best thread
    count of a TC sweep at fixed BC.
    """
    from repro.autotune.measure import Measurer
    from repro.kernels import get_benchmark

    rows, labels, tags = [], [], []
    for name in benchmark_names:
        bm = get_benchmark(name)
        sizes = bm.sizes[-sizes_per_benchmark:]
        for size in sizes:
            for uif, flags in ((1, ""), (3, "-use_fast_math")):
                measurer = Measurer(bm, gpu)
                cfgbase = {"BC": 96, "UIF": uif, "PL": 16, "CFLAGS": flags}
                best_tc, best_t = None, float("inf")
                for tc in BLOCK_SIZE_CLASSES:
                    m = measurer.measure(dict(cfgbase, TC=tc), size)
                    if m.seconds < best_t:
                        best_t, best_tc = m.seconds, tc
                module = measurer.module_for(cfgbase | {"TC": 64})
                rows.append(extract_features(module, bm.param_env(size)))
                labels.append(_nearest_class(best_tc))
                tags.append(f"{name}/N={size}/uif={uif}/{flags or 'nofm'}")
    data = TrainingSet(
        features=np.vstack(rows),
        labels=np.asarray(labels, dtype=int),
        tags=tags,
    )
    clf = BlockSizeClassifier()
    clf.fit(data)
    return clf, data
