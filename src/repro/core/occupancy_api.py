"""CUDA-Toolkit-style occupancy API (paper Sec. V, related work).

"The NVIDIA CUDA Toolkit includes occupancy calculation functions in the
runtime API that return occupancy estimates for a given kernel.  In
addition, there are occupancy-based launch configuration functions that
can advise on grid and block sizes."

These are the equivalents, implemented over the paper's Eqs. 1-5 so the
two suggestion mechanisms (the Toolkit-style single answer and the
analyzer's T* range) can be compared inside one framework:

- :func:`max_active_blocks_per_multiprocessor` ~
  ``cudaOccupancyMaxActiveBlocksPerMultiprocessor``;
- :func:`max_potential_block_size` ~ ``cudaOccupancyMaxPotentialBlockSize``
  (including the dynamic-smem-per-block callback form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.specs import GPUSpec
from repro.codegen.compiler import CompiledKernel
from repro.core.occupancy import occupancy


def max_active_blocks_per_multiprocessor(
    gpu: GPUSpec,
    regs_per_thread: int,
    block_size: int,
    dynamic_smem_bytes: int = 0,
    static_smem_bytes: int = 0,
) -> int:
    """Resident blocks per SM for one launch configuration."""
    return occupancy(
        gpu, block_size, regs_per_thread,
        static_smem_bytes + dynamic_smem_bytes,
    ).active_blocks


@dataclass(frozen=True)
class LaunchSuggestion:
    """The Toolkit-style answer: one block size plus a minimal grid."""

    block_size: int
    min_grid_size: int
    occupancy: float


def max_potential_block_size(
    gpu: GPUSpec,
    regs_per_thread: int,
    static_smem_bytes: int = 0,
    dynamic_smem_of_block: Callable[[int], int] | None = None,
    block_size_limit: int = 0,
) -> LaunchSuggestion:
    """Block size maximizing occupancy (largest winner, like the Toolkit).

    ``dynamic_smem_of_block`` mirrors the API's per-block-size shared
    memory callback (e.g. tiled kernels whose smem grows with the block).
    """
    limit = block_size_limit or gpu.max_threads_per_block
    best = None
    for block in range(gpu.warp_size, limit + 1, gpu.warp_size):
        dyn = dynamic_smem_of_block(block) if dynamic_smem_of_block else 0
        r = occupancy(gpu, block, regs_per_thread,
                      static_smem_bytes + dyn)
        # ties break toward the larger block, as the Toolkit does
        if best is None or r.occupancy >= best[1]:
            best = (block, r.occupancy, r.active_blocks)
    block, occ, blocks = best
    return LaunchSuggestion(
        block_size=block,
        min_grid_size=blocks * gpu.multiprocessors,
        occupancy=occ,
    )


def suggest_launch_for_kernel(ck: CompiledKernel) -> LaunchSuggestion:
    """Toolkit-style launch advice for a compiled kernel."""
    return max_potential_block_size(
        ck.options.gpu, ck.regs_per_thread, ck.static_smem_bytes
    )
