"""The StaticAnalyzer facade (the paper's tool).

Mirrors the workflow of Section III: compile the kernel (``nvcc``
equivalent), read the resource report and disassembly, and produce every
static metric -- occupancy, instruction mixes, intensity, pipeline
utilization, divergence, Eq. 6 predicted cost, and the Table VII parameter
suggestions with the Sec. III-C rule applied.  **No kernel is executed.**
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec
from repro.codegen.compiler import (
    CompiledModule,
    CompileOptions,
    compile_module,
)
from repro.core.divergence import analyze_divergence
from repro.core.instruction_mix import MixReport, static_mix_module
from repro.core.pipeline import bottleneck_pipeline, pipeline_utilization
from repro.core.rules import INTENSITY_THRESHOLD, rule_based_threads
from repro.core.suggest import Suggestion, suggest_for_module
from repro.core.timing_model import Eq6Model


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the static analyzer can say about one benchmark."""

    benchmark: str
    gpu: GPUSpec
    regs_per_thread: int
    static_smem: int
    mix: MixReport
    intensity: float
    pipeline: dict
    bottleneck: str
    predicted_cost: float
    """Eq. 6 weighted mix ratio (relative cost, cycles-flavoured)."""

    suggestion: Suggestion
    rule_threads: tuple
    """T* after the intensity rule (the static+RB search range)."""

    divergence: tuple
    compile_log: str

    @property
    def compute_bound(self) -> bool:
        return self.intensity > INTENSITY_THRESHOLD

    def summary(self) -> str:
        lines = [
            f"Static analysis of {self.benchmark!r} on {self.gpu.short()}",
            f"  registers/thread : {self.regs_per_thread}"
            f"  (+{self.suggestion.reg_increase} headroom)",
            f"  static smem      : {self.static_smem} B"
            f"  (S* = {self.suggestion.smem_headroom} B headroom)",
            f"  intensity        : {self.intensity:.2f} "
            f"({'compute' if self.compute_bound else 'memory'}-leaning, "
            f"threshold {INTENSITY_THRESHOLD})",
            f"  bottleneck pipe  : {self.bottleneck}",
            f"  Eq.6 cost        : {self.predicted_cost:.1f}",
            f"  occ*             : {self.suggestion.best_occupancy:g}",
            f"  T*               : {list(self.suggestion.threads)}",
            f"  T* (rule-based)  : {list(self.rule_threads)}",
        ]
        for d in self.divergence:
            if d.divergent_branches:
                lines.append(
                    f"  divergence       : {d.kernel}: "
                    f"{d.divergent_branches} divergent branch(es), "
                    f"expected SIMD efficiency {d.expected_efficiency:.2f}"
                )
        return "\n".join(lines)


class StaticAnalyzer:
    """The paper's static analyzer tool for one target GPU."""

    def __init__(self, gpu: GPUSpec):
        self.gpu = gpu
        self.eq6 = Eq6Model.for_gpu(gpu)

    def analyze_module(
        self, module: CompiledModule, env: dict
    ) -> AnalysisReport:
        """Analyze an already-compiled benchmark at problem size ``env``."""
        mix = static_mix_module(module, env)
        suggestion = suggest_for_module(module)
        itns = mix.intensity
        return AnalysisReport(
            benchmark=module.name,
            gpu=self.gpu,
            regs_per_thread=module.regs_per_thread,
            static_smem=module.static_smem_bytes,
            mix=mix,
            intensity=itns,
            pipeline=pipeline_utilization(mix, self.gpu),
            bottleneck=bottleneck_pipeline(mix, self.gpu),
            predicted_cost=self.eq6.weighted_cost(mix),
            suggestion=suggestion,
            rule_threads=rule_based_threads(suggestion.threads, itns),
            divergence=tuple(analyze_divergence(ck) for ck in module),
            compile_log=module.log(),
        )

    def analyze(
        self,
        specs,
        env: dict,
        name: str = "kernel",
        unroll_factor: int = 1,
        fast_math: bool = False,
        l1_pref_kb: int = 16,
    ) -> AnalysisReport:
        """Compile kernel spec(s) for this GPU, then analyze statically."""
        if not isinstance(specs, (list, tuple)):
            specs = [specs]
        options = CompileOptions(
            gpu=self.gpu,
            unroll_factor=unroll_factor,
            fast_math=fast_math,
            l1_pref_kb=l1_pref_kb,
        )
        module = compile_module(name, list(specs), options)
        return self.analyze_module(module, env)
