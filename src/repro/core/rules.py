"""The rule-based heuristic (paper Section III-C).

"Through empirical observation we have concluded that a threshold of
intensity > 4.0 would benefit from upper ranges of thread values suggested
by our static analyzer, whereas intensity <= 4.0 would benefit from lower
ranges of suggested thread values."

Applied after the occupancy-based ``T*`` pruning, the rule halves the
suggested list again: memory-leaning kernels keep the lower thread values,
compute-intensive ones the upper values, taking the combined search-space
reduction from ~87.5% to ~93.8% (paper Fig. 6).
"""

from __future__ import annotations

INTENSITY_THRESHOLD = 4.0
"""The paper's empirically derived computational-intensity threshold."""


def rule_based_threads(t_star, intensity: float) -> tuple:
    """Select the half of ``T*`` the intensity rule predicts will win.

    Keeps ``max(1, len(T*) // 2)`` values: the upper ones when
    ``intensity > 4.0`` (compute-bound kernels want big blocks), the lower
    ones otherwise (memory-bound kernels want work spread over more,
    smaller blocks).
    """
    ts = sorted(t_star)
    if not ts:
        raise ValueError("T* must not be empty")
    k = max(1, len(ts) // 2)
    if intensity > INTENSITY_THRESHOLD:
        return tuple(ts[-k:])
    return tuple(ts[:k])
