"""Occupancy model: paper Section III-A, Eqs. 1-5.

The paper minimizes the number of active thread blocks per multiprocessor
over the hardware constraints psi in {warps, registers, shared memory}:

    B*_mp = min { G_psi(u) }                                  (Eq. 1)
    occ_mp = W*_mp / W^cc_mp,  W*_mp = B*_mp * W_B            (Eq. 2)

with the three limiter terms ``G_psiW`` (Eq. 3), ``G_psiR`` (Eq. 4) and
``G_psiS`` (Eq. 5).  The printed equations contain typographic garbling
(see DESIGN.md); this module implements the limiting-resource calculation
they describe -- NVIDIA's occupancy calculator -- exposing each term under
the paper's name, including the paper's special cases: a user register
count above ``R^cc_T`` or shared memory above ``S^cc_B`` is illegal and
yields zero blocks; an absent value leaves the resource unconstrained
(``B^cc_mp``).

The implementation intentionally parallels (and is tested to agree with)
the hardware-side block scheduler in :mod:`repro.sim.occupancy_hw`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _ceil_to(value: int, granularity: int) -> int:
    return _ceil_div(value, granularity) * granularity


def blocks_limited_by_warps(gpu: GPUSpec, threads_u: int) -> int:
    """``G_psiW(T_u)`` (Eq. 3): blocks allowed by the SM's warp capacity.

    ``min(B^cc_mp, floor(W_sm / W_B))`` with ``W_B = ceil(T_u / T^cc_W)``.
    """
    if threads_u <= 0:
        raise ValueError("thread count must be positive")
    if threads_u > gpu.max_threads_per_block:
        return 0
    warps_b = _ceil_div(threads_u, gpu.warp_size)
    return min(gpu.max_blocks_per_mp, gpu.max_warps_per_mp // warps_b)


def blocks_limited_by_registers(
    gpu: GPUSpec, regs_u: int, threads_u: int
) -> int:
    """``G_psiR(R_u)`` (Eq. 4): blocks allowed by the register file.

    Case 1: ``R_u > R^cc_T`` -- illegal, 0 blocks.
    Case 2: ``R_u > 0`` -- registers are allocated with the architecture's
    granularity ``R^cc_B``; Fermi allocates per block (warps rounded to the
    warp-allocation granularity), Kepler and later per warp.
    Case 3: ``R_u == 0`` -- unconstrained: ``B^cc_mp``.
    """
    if regs_u > gpu.max_regs_per_thread:
        return 0
    if regs_u <= 0:
        return gpu.max_blocks_per_mp
    warps_b = _ceil_div(threads_u, gpu.warp_size)
    if gpu.compute_capability < 3.0:
        regs_block = _ceil_to(
            regs_u * gpu.warp_size * _ceil_to(warps_b, gpu.warp_alloc_granularity),
            gpu.reg_alloc_unit,
        )
        return gpu.regfile_per_block // regs_block
    regs_warp = _ceil_to(regs_u * gpu.warp_size, gpu.reg_alloc_unit)
    warps_fit = gpu.regfile_per_mp // regs_warp
    return warps_fit // warps_b


def blocks_limited_by_smem(gpu: GPUSpec, smem_u: int) -> int:
    """``G_psiS(S_u)`` (Eq. 5): blocks allowed by shared memory.

    Case 1: ``S_u > S^cc_B`` -- illegal, 0 blocks.
    Case 2: ``S_u > 0`` -- ``floor(S^cc_mp / S_B)`` with the allocation
    granularity applied.
    Case 3: ``S_u == 0`` -- unconstrained: ``B^cc_mp``.
    """
    if smem_u > gpu.smem_per_block_bytes:
        return 0
    if smem_u <= 0:
        return gpu.max_blocks_per_mp
    smem_block = _ceil_to(smem_u, gpu.smem_alloc_unit)
    return gpu.smem_per_mp_bytes // smem_block


@dataclass(frozen=True)
class OccupancyResult:
    """Full output of the occupancy calculation for one configuration."""

    gpu_name: str
    threads_u: int
    regs_u: int
    smem_u: int
    active_blocks: int
    """``B*_mp`` (Eq. 1)."""

    active_warps: int
    """``W*_mp = B*_mp * W_B``."""

    occupancy: float
    """``occ_mp`` (Eq. 2)."""

    limits: dict
    """Each ``G_psi`` term, keyed ``"warps"`` / ``"registers"`` / ``"smem"``."""

    @property
    def limiter(self) -> str:
        """Which resource binds ``B*_mp`` (ties break warps < regs < smem)."""
        for name in ("warps", "registers", "smem"):
            if self.limits[name] == self.active_blocks:
                return name
        return "warps"

    def __str__(self) -> str:
        return (
            f"occ={self.occupancy:.4f} blocks={self.active_blocks} "
            f"warps={self.active_warps} (limited by {self.limiter}; "
            f"T={self.threads_u}, R={self.regs_u}, S={self.smem_u})"
        )


def occupancy(
    gpu: GPUSpec,
    threads_u: int,
    regs_u: int = 0,
    smem_u: int = 0,
) -> OccupancyResult:
    """Evaluate Eqs. 1-2 for one (T_u, R_u, S_u) configuration."""
    g_w = blocks_limited_by_warps(gpu, threads_u)
    g_r = blocks_limited_by_registers(gpu, regs_u, threads_u)
    g_s = blocks_limited_by_smem(gpu, smem_u)
    b_star = max(0, min(g_w, g_r, g_s))
    warps_b = _ceil_div(threads_u, gpu.warp_size)
    w_star = b_star * warps_b
    return OccupancyResult(
        gpu_name=gpu.name,
        threads_u=threads_u,
        regs_u=regs_u,
        smem_u=smem_u,
        active_blocks=b_star,
        active_warps=w_star,
        occupancy=w_star / gpu.max_warps_per_mp,
        limits={"warps": g_w, "registers": g_r, "smem": g_s},
    )


def occupancy_curve(
    gpu: GPUSpec,
    regs_u: int = 0,
    smem_u: int = 0,
    thread_range=range(32, 1025, 32),
) -> list[OccupancyResult]:
    """Occupancy across thread counts -- the calculator chart of Fig. 7."""
    return [occupancy(gpu, t, regs_u, smem_u) for t in thread_range]
