"""Static branch-divergence analysis (paper Fig. 1 and Sec. II-A).

From the CFG alone, identify conditional branches whose predicate depends
(transitively) on the thread index: only these can split a warp.  For each,
estimate the serialization loss: when lanes of a warp take both arms, the
warp issues both arms' instructions, so the expected SIMD efficiency over a
region with a thread-dependent branch of taken-probability ``p`` is

    eff = (then_len * p + else_len * (1 - p)) /
          (then_len * P_any_then + else_len * P_any_else)

with ``P_any = 1 - (1-p)^32`` (resp. ``1 - p^32``) the probability that a
warp executes an arm at all.  Without a probability estimate the analyzer
uses p = 0.5, its standard static assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.compiler import CompiledKernel
from repro.ptx.cfg import CFG, build_cfg


@dataclass(frozen=True)
class BranchInfo:
    block: str
    then_len: int
    else_len: int
    expected_efficiency: float


@dataclass(frozen=True)
class DivergenceReport:
    """Static divergence summary for one kernel."""

    kernel: str
    conditional_branches: int
    divergent_branches: int
    branches: tuple
    expected_efficiency: float
    """Estimated SIMD efficiency over divergent regions (1.0 = none)."""


def _arm_lengths(cfg: CFG, block: str) -> tuple[int, int]:
    """Instruction counts of the two arms up to the reconvergence point."""
    reconv = cfg.reconvergence_point(block)
    succs = cfg.successors(block)
    lens = []
    for s in succs[:2]:
        seen = set()
        stack = [s]
        n = 0
        while stack:
            b = stack.pop()
            if b in seen or b == reconv or b == block:
                continue
            seen.add(b)
            n += len(cfg.blocks[b])
            stack.extend(cfg.successors(b))
        lens.append(n)
    while len(lens) < 2:
        lens.append(0)
    return lens[0], lens[1]


def expected_warp_efficiency(then_len: int, else_len: int,
                             p: float = 0.5, warp: int = 32) -> float:
    """Expected active-lane fraction across a divergent branch region."""
    if then_len + else_len == 0:
        return 1.0
    p = min(max(p, 0.0), 1.0)
    p_any_then = 1.0 - (1.0 - p) ** warp
    p_any_else = 1.0 - p ** warp
    useful = then_len * p + else_len * (1.0 - p)
    issued = then_len * p_any_then + else_len * p_any_else
    if issued == 0:
        return 1.0
    return useful / issued


def analyze_divergence(ck: CompiledKernel, p: float = 0.5) -> DivergenceReport:
    """Static divergence report for a compiled kernel.

    Loop latches and loop guards are excluded even when thread-dependent:
    trip-count differences across lanes cost at most one stray iteration,
    not arm serialization; the Fig. 1 effect comes from genuine if-branches.
    """
    cfg = build_cfg(ck.ir)
    cond = cfg.conditional_branch_blocks()
    loop_headers = {lp.header for lp in cfg.natural_loops()}
    latches = {lp.latch for lp in cfg.natural_loops()}
    divergent = [
        b for b in cfg.divergent_branch_blocks()
        if b not in latches
        and not (set(cfg.successors(b)) & loop_headers)
    ]

    infos = []
    for block in divergent:
        tl, el = _arm_lengths(cfg, block)
        infos.append(
            BranchInfo(
                block=block,
                then_len=tl,
                else_len=el,
                expected_efficiency=expected_warp_efficiency(tl, el, p),
            )
        )
    # overall: weight branch efficiencies by their region sizes
    total = sum(b.then_len + b.else_len for b in infos)
    if total == 0:
        eff = 1.0
    else:
        eff = sum(
            b.expected_efficiency * (b.then_len + b.else_len) for b in infos
        ) / total
    return DivergenceReport(
        kernel=ck.name,
        conditional_branches=len(cond),
        divergent_branches=len(infos),
        branches=tuple(infos),
        expected_efficiency=eff,
    )
