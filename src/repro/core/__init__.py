"""The paper's contribution: static analysis and predictive models.

This package implements Section III of the paper:

- :mod:`repro.core.occupancy` -- the occupancy model of Eqs. 1-5, with the
  per-resource limiter terms ``G_psi`` under the paper's notation, plus
  occupancy curves over thread counts (the Fig. 7 calculator view);
- :mod:`repro.core.instruction_mix` -- static instruction-mix metrics over
  the disassembled stream, the FLOPS/MEM/CTRL/REG classes, and the
  computational *intensity* that drives the rule-based heuristic;
- :mod:`repro.core.pipeline` -- pipeline-utilization estimates (Sec. III-B2);
- :mod:`repro.core.timing_model` -- the Eq. 6 predictive model
  ``f(N) = cf*Ofl + cm*Omem + cb*Octrl + cr*Oreg`` with CPI coefficients;
- :mod:`repro.core.divergence` -- CFG-based static divergence analysis;
- :mod:`repro.core.suggest` -- the Table VII parameter suggestions
  (T*, [Ru : R*], S*, occ*);
- :mod:`repro.core.rules` -- the intensity-threshold rule (Sec. III-C);
- :mod:`repro.core.analyzer` -- the :class:`StaticAnalyzer` facade that the
  autotuner integration consumes.

Everything here is *static*: no kernel is ever executed.  The only inputs
are the compiled artifact (instruction stream, registers, shared memory)
and the problem size.
"""

from repro.core.occupancy import (
    OccupancyResult,
    occupancy,
    blocks_limited_by_warps,
    blocks_limited_by_registers,
    blocks_limited_by_smem,
    occupancy_curve,
)
from repro.core.instruction_mix import (
    MixReport,
    static_mix,
    raw_static_mix,
    intensity,
)
from repro.core.pipeline import pipeline_utilization
from repro.core.timing_model import Eq6Model, predict_time, fit_scale
from repro.core.divergence import DivergenceReport, analyze_divergence
from repro.core.suggest import Suggestion, suggest_parameters
from repro.core.rules import INTENSITY_THRESHOLD, rule_based_threads
from repro.core.analyzer import StaticAnalyzer, AnalysisReport
from repro.core.occupancy_api import (
    LaunchSuggestion,
    max_active_blocks_per_multiprocessor,
    max_potential_block_size,
    suggest_launch_for_kernel,
)
from repro.core.dynamic import DynamicReport, profile_benchmark
from repro.core.classifier import (
    BlockSizeClassifier,
    extract_features,
    train_on_sweeps,
)

__all__ = [
    "OccupancyResult",
    "occupancy",
    "blocks_limited_by_warps",
    "blocks_limited_by_registers",
    "blocks_limited_by_smem",
    "occupancy_curve",
    "MixReport",
    "static_mix",
    "raw_static_mix",
    "intensity",
    "pipeline_utilization",
    "Eq6Model",
    "predict_time",
    "fit_scale",
    "DivergenceReport",
    "analyze_divergence",
    "Suggestion",
    "suggest_parameters",
    "INTENSITY_THRESHOLD",
    "rule_based_threads",
    "StaticAnalyzer",
    "AnalysisReport",
    "LaunchSuggestion",
    "max_active_blocks_per_multiprocessor",
    "max_potential_block_size",
    "suggest_launch_for_kernel",
    "DynamicReport",
    "profile_benchmark",
    "BlockSizeClassifier",
    "extract_features",
    "train_on_sweeps",
]
