"""Parameter suggestions (paper Table VII).

From purely static inputs -- the compiled kernel's registers per thread
``R_u``, its static shared memory ``S_u``, and the architecture -- compute:

- ``T*``: the thread counts (multiples of 32 up to ``T^cc_B``) that achieve
  the maximum attainable occupancy ``occ*`` under the kernel's resource
  usage (Eqs. 1-5);
- ``[R_u : R*]``: the current register usage and its *increase potential*,
  the number of additional registers per thread that would not lower
  ``occ*``;
- ``S*``: the dynamic shared memory per block that could still be added at
  the best configuration without lowering ``occ*``;
- ``occ*`` itself.

These are the values the static search module feeds into Orio to prune the
thread-count axis of the search space (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec
from repro.codegen.compiler import CompiledKernel, CompiledModule
from repro.core.occupancy import occupancy


@dataclass(frozen=True)
class Suggestion:
    """A Table VII row."""

    gpu_name: str
    kernel: str
    regs_used: int
    """``R_u``: registers per thread reported by the compiler."""

    reg_increase: int
    """``R*``: how many more registers per thread keep ``occ*``."""

    threads: tuple
    """``T*``: thread counts achieving ``occ*``."""

    smem_headroom: int
    """``S*``: bytes of dynamic shared memory addable at best config."""

    best_occupancy: float
    """``occ*``."""

    def __str__(self) -> str:
        ts = ", ".join(str(t) for t in self.threads)
        return (
            f"{self.kernel}@{self.gpu_name}: T*=[{ts}] "
            f"[Ru:R*]=[{self.regs_used}:{self.reg_increase}] "
            f"S*={self.smem_headroom} occ*={self.best_occupancy:g}"
        )


def _thread_candidates(gpu: GPUSpec) -> list[int]:
    return list(range(32, gpu.max_threads_per_block + 1, 32))


def suggest_parameters(
    gpu: GPUSpec,
    regs_per_thread: int,
    smem_per_block: int = 0,
    kernel_name: str = "",
) -> Suggestion:
    """Compute the Table VII suggestion for one kernel on one GPU."""
    cands = _thread_candidates(gpu)
    occs = {
        t: occupancy(gpu, t, regs_per_thread, smem_per_block) for t in cands
    }
    occ_star = max(r.occupancy for r in occs.values())
    t_star = tuple(t for t in cands if occs[t].occupancy == occ_star)

    # register increase potential: raise R until occ* would drop
    r_star = 0
    for r in range(regs_per_thread + 1, gpu.max_regs_per_thread + 1):
        best = max(
            occupancy(gpu, t, r, smem_per_block).occupancy for t in t_star
        )
        if best < occ_star:
            break
        r_star = r - regs_per_thread

    # shared-memory headroom at the configuration with the most blocks
    max_blocks = max(occs[t].active_blocks for t in t_star)
    if max_blocks > 0:
        per_block = gpu.smem_per_mp_bytes // max_blocks
        s_star = max(0, min(per_block, gpu.smem_per_block_bytes)
                     - smem_per_block)
    else:
        s_star = 0

    return Suggestion(
        gpu_name=gpu.name,
        kernel=kernel_name,
        regs_used=regs_per_thread,
        reg_increase=r_star,
        threads=t_star,
        smem_headroom=s_star,
        best_occupancy=occ_star,
    )


def suggest_for_kernel(ck: CompiledKernel) -> Suggestion:
    """Table VII row for a compiled kernel."""
    return suggest_parameters(
        ck.options.gpu, ck.regs_per_thread, ck.static_smem_bytes, ck.name
    )


def suggest_for_module(module: CompiledModule) -> Suggestion:
    """Table VII row for a multi-kernel benchmark.

    Launch parameters are shared across the benchmark's kernels, so the
    binding register/shared-memory usage is the maximum across kernels.
    """
    return suggest_parameters(
        module.options.gpu,
        module.regs_per_thread,
        module.static_smem_bytes,
        module.name,
    )
