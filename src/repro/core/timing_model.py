"""The Eq. 6 predictive execution-time model.

    f(N) = cf * O_fl + cm * O_mem + cb * O_ctrl + cr * O_reg      (Eq. 6)

The coefficients are the reciprocal of the number of instructions of each
class that can execute in a cycle (CPI), read from the architecture's
Table II column.  ``f(N)`` predicts *relative* execution cost from the
static mix alone, without running the program; the paper evaluates it by
normalizing both predicted and measured times and reporting the mean
absolute error over the sorted profile (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.specs import GPUSpec
from repro.arch.throughput import PipeClass, throughput_for
from repro.core.instruction_mix import MixReport
from repro.util.stats import mean_absolute_error, normalize


@dataclass(frozen=True)
class Eq6Model:
    """Eq. 6 with per-class CPI coefficients for one architecture."""

    gpu: GPUSpec
    cf: float
    cm: float
    cb: float
    cr: float

    @staticmethod
    def for_gpu(gpu: GPUSpec) -> "Eq6Model":
        tp = throughput_for(gpu)
        return Eq6Model(
            gpu=gpu,
            cf=tp.pipe_cpi(PipeClass.FLOPS),
            cm=tp.pipe_cpi(PipeClass.MEM),
            cb=tp.pipe_cpi(PipeClass.CTRL),
            cr=tp.pipe_cpi(PipeClass.REG),
        )

    def weighted_cost(self, mix: MixReport) -> float:
        """``f(N)``: the CPI-weighted instruction mix ratio (in cycles)."""
        pipes = mix.by_pipe()
        return (
            self.cf * pipes[PipeClass.FLOPS]
            + self.cm * pipes[PipeClass.MEM]
            + self.cb * pipes[PipeClass.CTRL]
            + self.cr * pipes[PipeClass.REG]
        )


def predict_time(mix: MixReport, gpu: GPUSpec) -> float:
    """Predicted relative execution cost of a kernel from its static mix."""
    return Eq6Model.for_gpu(gpu).weighted_cost(mix)


def fit_scale(predicted, observed) -> float:
    """Least-squares scale mapping predicted cost to observed seconds.

    Eq. 6 predicts cost up to a machine constant; a single multiplicative
    factor per (kernel, architecture) grounds it in seconds.  Returned so
    experiments can report absolute as well as normalized errors.
    """
    p = np.asarray(predicted, dtype=float)
    o = np.asarray(observed, dtype=float)
    denom = float(p @ p)
    if denom == 0:
        return 0.0
    return float(p @ o) / denom


def profile_mae(predicted, observed) -> float:
    """The Fig. 5 metric: MAE between min-max-normalized, sorted profiles.

    Both series are normalized to [0, 1] after sorting by the observed
    ordering; the MAE then measures how faithfully the static model
    reproduces the *shape* of the execution-time profile.
    """
    p = np.asarray(predicted, dtype=float)
    o = np.asarray(observed, dtype=float)
    if p.shape != o.shape or p.size == 0:
        raise ValueError("predicted/observed must be equal-length, non-empty")
    order = np.argsort(o)
    return mean_absolute_error(normalize(p[order]), normalize(o[order]))
