"""Pipeline utilization (paper Section III-B2).

Each SM's execution pipelines (FP units, load/store units, SFU, control)
are kept busy in proportion to the issue cycles the instruction stream
demands of them.  Utilization of a pipeline is its share of the total
issue-cycle demand: a high value flags the unit that will bottleneck and
be "kept busy often during the execution of the kernel".
"""

from __future__ import annotations

from repro.arch.specs import GPUSpec
from repro.arch.throughput import InstrCategory, throughput_for
from repro.core.instruction_mix import MixReport


def pipeline_utilization(
    mix: MixReport, gpu: GPUSpec
) -> dict[str, float]:
    """Relative issue-cycle demand per pipeline, normalized to sum to 1.

    Categories are grouped onto the hardware units that execute them:
    ``fp`` (floating point), ``int`` (integer/ALU), ``sfu`` (special
    function), ``ldst`` (memory), ``ctrl`` (branch/predicate), ``move``.
    """
    tp = throughput_for(gpu)
    unit_of = {
        InstrCategory.FP32: "fp",
        InstrCategory.FP64: "fp",
        InstrCategory.COMP_MINMAX: "int",
        InstrCategory.SHIFT: "int",
        InstrCategory.CONV32: "int",
        InstrCategory.CONV64: "int",
        InstrCategory.INT_ADD32: "int",
        InstrCategory.LOG_SIN_COS: "sfu",
        InstrCategory.LDST: "ldst",
        InstrCategory.PRED_CTRL: "ctrl",
        InstrCategory.MOVE: "move",
        InstrCategory.REGS: "move",
    }
    cycles: dict[str, float] = {
        u: 0.0 for u in ("fp", "int", "sfu", "ldst", "ctrl", "move")
    }
    for cat, n in mix.by_category.items():
        cycles[unit_of[cat]] += n * tp.cpi(cat)
    total = sum(cycles.values())
    if total <= 0:
        return cycles
    return {u: c / total for u, c in cycles.items()}


def bottleneck_pipeline(mix: MixReport, gpu: GPUSpec) -> str:
    """The pipeline with the highest utilization share."""
    util = pipeline_utilization(mix, gpu)
    return max(util, key=util.get)
