"""Static instruction-mix metrics (paper Section III-B).

Two views are provided:

- :func:`raw_static_mix`: the literal disassembly counts -- each
  instruction once, the view one gets from ``nvdisasm`` alone.
- :func:`static_mix`: the analyzer's *estimate* of dynamic behaviour,
  scaling static counts with what can be read off the binary statically:
  sequential-loop trip counts from their bound expressions, the
  proportionality of the grid-stride loop to the problem size, and a
  50/50 assumption for data-independent branch arms (the analyzer cannot
  know boundary fractions).  The deliberate crudenesses are exactly the
  sources of the static-vs-dynamic estimation error the paper quantifies
  in Table VI:

  * branch arms are split 50/50, while e.g. ex14FJ's boundary branch is
    strongly skewed toward the interior at large N;
  * the analyzer assumes one parallel-loop iteration per launched thread
    (it does not know the launch configuration), so per-thread preamble
    work -- parameter loads in particular, which are memory instructions --
    is underestimated whenever the tuner launches more threads than there
    are iterations.

*Intensity* (the paper's Table VI column, the input to the Sec. III-C
rule) is the ratio of FLOPS-class operations to memory operations in the
estimated mix.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.arch.throughput import PipeClass
from repro.codegen.compiler import CompiledKernel, CompiledModule
from repro.codegen.regions import DynamicCounts, evaluate_region_tree
from repro.codegen.ast_nodes import evaluate_expr


@dataclass(frozen=True)
class MixReport:
    """Instruction mix of one kernel (or aggregated benchmark)."""

    by_category: dict
    reg_ops: float

    def by_pipe(self) -> dict:
        """Aggregate to the paper's classes: O_fl, O_mem, O_ctrl, O_reg."""
        agg = {p: 0.0 for p in PipeClass}
        for cat, n in self.by_category.items():
            agg[cat.pipe] += n
        agg[PipeClass.REG] += self.reg_ops
        return agg

    @property
    def o_fl(self) -> float:
        return self.by_pipe()[PipeClass.FLOPS]

    @property
    def o_mem(self) -> float:
        return self.by_pipe()[PipeClass.MEM]

    @property
    def o_ctrl(self) -> float:
        return self.by_pipe()[PipeClass.CTRL]

    @property
    def o_reg(self) -> float:
        return self.by_pipe()[PipeClass.REG]

    @property
    def total(self) -> float:
        return float(sum(self.by_category.values()))

    @property
    def intensity(self) -> float:
        """FLOPS-class per memory operation (paper Table VI ``Itns``)."""
        if self.o_mem == 0:
            return float("inf")
        return self.o_fl / self.o_mem

    def fractions(self) -> dict:
        tot = max(self.total, 1.0)
        return {cat: n / tot for cat, n in self.by_category.items()}

    def merged(self, other: "MixReport") -> "MixReport":
        c = Counter(self.by_category)
        c.update(other.by_category)
        return MixReport(dict(c), self.reg_ops + other.reg_ops)


def raw_static_mix(ck: CompiledKernel) -> MixReport:
    """Literal disassembly counts: each static instruction once."""
    return MixReport(
        by_category=dict(ck.ir.static_category_counts()),
        reg_ops=float(ck.ir.static_register_operand_count()),
    )


def static_mix(ck: CompiledKernel, env: dict) -> MixReport:
    """The analyzer's static estimate of the dynamic mix at size ``env``.

    Evaluates the region tree with the *static* assumptions documented in
    the module docstring: default 50/50 branch fractions and one thread per
    parallel-loop iteration.
    """
    if ck.parallel_extent is not None:
        threads = max(1, int(evaluate_expr(ck.parallel_extent, env)))
    else:
        threads = 1
    dc = evaluate_region_tree(ck.root_region, env, total_threads=threads)
    return MixReport(by_category=dict(dc.by_category), reg_ops=dc.reg_ops)


def static_mix_module(module: CompiledModule, env: dict) -> MixReport:
    """Aggregate static mix across a benchmark's kernels."""
    out: MixReport | None = None
    for ck in module:
        m = static_mix(ck, env)
        out = m if out is None else out.merged(m)
    return out


def intensity(ck_or_module, env: dict) -> float:
    """Computational intensity of a kernel or whole benchmark."""
    if isinstance(ck_or_module, CompiledModule):
        return static_mix_module(ck_or_module, env).intensity
    return static_mix(ck_or_module, env).intensity


def dynamic_mix(counts: DynamicCounts) -> MixReport:
    """Wrap ground-truth dynamic counts in the same report type (used by
    the Table VI comparison)."""
    return MixReport(by_category=dict(counts.by_category), reg_ops=counts.reg_ops)
