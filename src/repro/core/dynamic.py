"""Dynamic-analysis metrics (the right-hand side of the paper's Fig. 2).

The paper's framework diagram pairs the static analyses (IM/OC/CF) with
dynamic ones: **IC** (instruction counts), **BF** (branch frequency) and
**MD** (memory distance), citing the authors' companion work [7].  This
module computes all three from an emulator run, giving the "dynamic-based
performance models" branch of Fig. 2 a concrete implementation that the
static estimates can be validated against.

- instruction counts: per-category executed instructions (thread-level and
  warp-issue-level) -- directly from :class:`EmulationResult`;
- branch frequency: executed conditional branches, how many diverged, and
  the resulting SIMD efficiency;
- memory (reuse) distance: for each global load address stream, the number
  of *distinct* addresses touched between consecutive uses of the same
  32-byte line -- small distances mean cache-friendly streams.  Collected
  by a lightweight tracing hook on the device memory.

The profiler runs the emulator's *scalar* path by default: reuse distance
is defined over the load stream, and the canonical stream is the per-warp
serial order the scalar path issues.  Pass ``mode="vector"`` to profile
on the fast path instead -- counts and divergence stats are identical
there by construction, but the line stream follows the stacked
(instruction-major) issue order.  Whichever path ran is reported from the
launch's :class:`~repro.sim.emulator.LaunchProfile` on the report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.codegen.compiler import CompiledModule
from repro.sim.emulator import EmulationResult, emulate_kernel
from repro.sim.memory import DeviceMemory


@dataclass
class MemoryDistanceHistogram:
    """Reuse-distance histogram over 32-byte lines."""

    bins: tuple = (1, 4, 16, 64, 256, 1024, 4096)
    counts: Counter = field(default_factory=Counter)
    cold: int = 0

    def record(self, distance: int | None) -> None:
        if distance is None:
            self.cold += 1
            return
        for b in self.bins:
            if distance <= b:
                self.counts[b] += 1
                return
        self.counts[float("inf")] += 1

    @property
    def total(self) -> int:
        return self.cold + sum(self.counts.values())

    def locality_score(self) -> float:
        """Fraction of reuses within 64 distinct lines (L1-sized window)."""
        if self.total == 0:
            return 0.0
        near = sum(v for b, v in self.counts.items()
                   if b != float("inf") and b <= 64)
        return near / self.total


class _TracingMemory(DeviceMemory):
    """DeviceMemory that records the global-load line stream."""

    LINE = 32

    def __init__(self) -> None:
        super().__init__()
        self.histogram = MemoryDistanceHistogram()
        self._last_use: dict[int, int] = {}
        self._stack: list[int] = []  # recent distinct lines, most recent last
        self._clock = 0

    def gather(self, addrs, mask, dtype):
        if mask.any():
            # one trace record per warp, in row order -- a stacked
            # (n_warps, 32) access traces like n consecutive warp loads
            for row_a, row_m in zip(np.atleast_2d(addrs),
                                    np.atleast_2d(mask)):
                if not row_m.any():
                    continue
                lines = np.unique(row_a[row_m] // self.LINE)
                for line in lines.tolist():
                    self._touch(int(line))
        return super().gather(addrs, mask, dtype)

    def _touch(self, line: int) -> None:
        try:
            idx = self._stack.index(line)
        except ValueError:
            self.histogram.record(None)
        else:
            distance = len(self._stack) - idx - 1
            self.histogram.record(distance)
            del self._stack[idx]
        self._stack.append(line)
        if len(self._stack) > 8192:
            del self._stack[: len(self._stack) // 2]


@dataclass(frozen=True)
class DynamicReport:
    """IC + BF + MD bundle for one emulated benchmark run."""

    benchmark: str
    instruction_counts: dict
    warp_issues: dict
    total_instructions: int
    branch_count: int
    divergent_branches: int
    simd_efficiency: float
    memory_distance: MemoryDistanceHistogram
    emulation_mode: str = "scalar"
    """Emulator path that produced the profile (``LaunchProfile.mode``)."""
    emulation_width: float = 1.0
    """Mean warps retired per dispatch step on that path."""

    @property
    def branch_divergence_rate(self) -> float:
        if self.branch_count == 0:
            return 0.0
        return self.divergent_branches / self.branch_count

    def summary(self) -> str:
        lines = [
            f"Dynamic analysis of {self.benchmark!r}",
            f"  instructions executed : {self.total_instructions}",
            f"  branches / divergent  : {self.branch_count} / "
            f"{self.divergent_branches} "
            f"({self.branch_divergence_rate:.1%})",
            f"  SIMD efficiency       : {self.simd_efficiency:.3f}",
            f"  memory locality score : "
            f"{self.memory_distance.locality_score():.3f} "
            f"({self.memory_distance.cold} cold lines)",
            f"  emulated on           : {self.emulation_mode} path "
            f"(stack width {self.emulation_width:.1f})",
        ]
        return "\n".join(lines)


def profile_benchmark(
    module: CompiledModule,
    inputs: dict,
    tc: int,
    bc: int,
    mode: str = "scalar",
) -> DynamicReport:
    """Run a benchmark under the tracing emulator and build the report.

    ``mode`` defaults to the scalar path so the reuse-distance stream is
    the canonical per-warp serial order (see the module docstring).
    """
    memory = _TracingMemory()
    seen: set[str] = set()
    for ck in module:
        for p in ck.ir.params:
            if p.is_pointer and p.name not in seen:
                memory.alloc(p.name, np.asarray(inputs[p.name]).copy())
                seen.add(p.name)
    total = EmulationResult()
    for ck in module:
        res, _ = emulate_kernel(ck, inputs, tc, bc, memory, mode=mode)
        total.merge(res)

    profile = total.profile
    return DynamicReport(
        benchmark=module.name,
        instruction_counts={
            c.value: n for c, n in total.thread_counts.items()
        },
        warp_issues={c.value: n for c, n in total.warp_issues.items()},
        total_instructions=total.total_thread_instructions,
        branch_count=total.branch_count,
        divergent_branches=total.divergent_branches,
        simd_efficiency=total.simd_efficiency,
        memory_distance=memory.histogram,
        emulation_mode=profile.mode if profile else "scalar",
        emulation_width=profile.mean_stack_width if profile else 1.0,
    )
