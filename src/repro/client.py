"""``repro.client``: the SDK for a running autotuning server.

A thin, dependency-free (stdlib ``http.client``) wrapper speaking the
versioned protocol of :mod:`repro.api.protocol`.  Every method sends and
receives the same frozen dataclasses the in-process API uses::

    from repro.api import connect

    client = connect("http://127.0.0.1:8737")
    status = client.submit_tune("atax", "kepler", size=32,
                                search="random", budget=20, seed=7)
    result = client.wait(status.session_id)
    print(result.best_config, result.best_value)

External (client-measured) sessions drive ask/tell themselves::

    status = client.submit_tune(..., mode="external")
    while True:
        batch = client.ask(status.session_id)
        if batch.done:
            break
        values = [measure(c) for c in batch.configs]
        client.tell(batch, values)
    result = client.result(status.session_id)

Failures raise :class:`ServiceError` carrying the server's structured
:class:`~repro.api.protocol.ErrorEnvelope`.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse

from repro.api.protocol import (
    PROTOCOL_VERSION,
    AskBatch,
    ErrorEnvelope,
    ProtocolError,
    ServerInfo,
    SessionResult,
    SessionStatus,
    SpaceSpec,
    StoreStats,
    TellResult,
    TuneRequest,
    check_version,
)

__all__ = ["ReproClient", "ServiceError", "connect"]

_PROTOCOL_HEADER = "X-Repro-Protocol"


class ServiceError(RuntimeError):
    """The server answered with a structured error envelope."""

    def __init__(self, status: int, envelope: ErrorEnvelope):
        super().__init__(f"[{status}] {envelope.code}: {envelope.message}")
        self.status = status
        self.envelope = envelope

    @property
    def code(self) -> str:
        return self.envelope.code


class ReproClient:
    """A client bound to one server URL.

    One HTTP connection per request keeps the client trivially
    thread-safe (concurrent sessions from threads are the norm in the
    acceptance test); the server's keep-alive support exists for
    longer-lived callers.
    """

    def __init__(self, url: str, timeout: float = 300.0):
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ValueError(
                f"expected an http://host:port URL, got {url!r}"
            )
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, body=None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {_PROTOCOL_HEADER: PROTOCOL_VERSION}
            if body is not None:
                payload = json.dumps(body, allow_nan=False).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(response.status, ErrorEnvelope(
                code="bad-response",
                message=f"server sent non-JSON ({raw[:80]!r})",
            )) from None
        if response.status != 200:
            try:
                envelope = ErrorEnvelope.from_json(doc)
            except ProtocolError:
                envelope = ErrorEnvelope(
                    code="bad-response", message=str(doc)[:200]
                )
            raise ServiceError(response.status, envelope)
        return doc

    # -- handshake -----------------------------------------------------------

    def hello(self) -> ServerInfo:
        """Handshake: fetch the server's info and verify we can speak
        its protocol (raises :class:`ProtocolError` if not)."""
        info = ServerInfo.from_json(self._request("GET", "/v1/hello"))
        check_version(info.protocol)
        return info

    # -- sessions ------------------------------------------------------------

    def submit(self, request: TuneRequest) -> SessionStatus:
        return SessionStatus.from_json(
            self._request("POST", "/v1/sessions", body=request.to_json())
        )

    def submit_tune(self, kernel: str, gpu: str, size: int,
                    search: str = "exhaustive", budget: int | None = None,
                    use_rule: bool = False, mode: str = "managed",
                    space=None, tenant: str = "default",
                    **search_args) -> SessionStatus:
        """Build and submit a :class:`TuneRequest` in one call."""
        from repro.autotune.space import ParameterSpace

        if isinstance(space, ParameterSpace):
            space = SpaceSpec.from_space(space)
        return self.submit(TuneRequest(
            kernel=kernel, gpu=gpu, size=size, search=search,
            budget=budget, use_rule=use_rule, mode=mode, space=space,
            search_args=dict(search_args), tenant=tenant,
        ))

    def sessions(self) -> list[SessionStatus]:
        doc = self._request("GET", "/v1/sessions")
        return [SessionStatus.from_json(s) for s in doc.get("sessions", [])]

    def status(self, session_id: str) -> SessionStatus:
        return SessionStatus.from_json(
            self._request("GET", f"/v1/sessions/{session_id}")
        )

    def result(self, session_id: str) -> SessionResult:
        return SessionResult.from_json(
            self._request("GET", f"/v1/sessions/{session_id}/result")
        )

    def cancel(self, session_id: str) -> SessionStatus:
        return SessionStatus.from_json(
            self._request("POST", f"/v1/sessions/{session_id}/cancel")
        )

    def wait(self, session_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> SessionResult:
        """Poll a managed session until it finishes; return its result.

        A failed or cancelled session raises :class:`ServiceError` with
        the session's envelope.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(session_id)
            if status.state == "done":
                return self.result(session_id)
            if status.state in ("failed", "cancelled"):
                raise ServiceError(409, status.error or ErrorEnvelope(
                    code=status.state,
                    message=f"session {session_id} {status.state}",
                ))
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"session {session_id} still {status.state} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_s)

    # -- external (client-measured) sessions ---------------------------------

    def ask(self, session_id: str) -> AskBatch:
        return AskBatch.from_json(
            self._request("POST", f"/v1/sessions/{session_id}/ask")
        )

    def tell(self, batch: AskBatch, values) -> SessionStatus:
        told = TellResult(
            session_id=batch.session_id, round=batch.round,
            values=tuple(float(v) for v in values),
        )
        return SessionStatus.from_json(self._request(
            "POST", f"/v1/sessions/{batch.session_id}/tell",
            body=told.to_json(),
        ))

    def run_external(self, session_id: str, measure) -> SessionResult:
        """Drive an external session to completion with a local
        ``measure(config) -> seconds`` callable."""
        while True:
            batch = self.ask(session_id)
            if batch.done:
                break
            self.tell(batch, [measure(dict(c)) for c in batch.configs])
        return self.result(session_id)

    # -- store ---------------------------------------------------------------

    def store_stats(self) -> StoreStats:
        return StoreStats.from_json(self._request("GET", "/v1/store"))

    def flush_store(self) -> StoreStats:
        """Ask the server to checkpoint and LRU-trim the shared store."""
        return StoreStats.from_json(
            self._request("POST", "/v1/store/flush")
        )

    # -- convenience ---------------------------------------------------------

    def tune(self, kernel: str, gpu: str, size: int,
             search: str = "exhaustive", budget: int | None = None,
             use_rule: bool = False, space=None, timeout: float = 300.0,
             **search_args) -> SessionResult:
        """Submit a managed session and block until its result."""
        status = self.submit_tune(
            kernel, gpu, size, search=search, budget=budget,
            use_rule=use_rule, space=space, **search_args,
        )
        return self.wait(status.session_id, timeout=timeout)


def connect(url: str, timeout: float = 300.0,
            handshake: bool = True) -> ReproClient:
    """A :class:`ReproClient` for ``url``; verifies the protocol
    handshake unless ``handshake=False``."""
    client = ReproClient(url, timeout=timeout)
    if handshake:
        client.hello()
    return client
