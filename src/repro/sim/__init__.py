"""The GPU substrate: functional emulation, exact counting, timing.

Three cooperating models replace the paper's physical GPUs:

- :mod:`repro.sim.emulator` -- a warp-level SIMT *functional* emulator with
  a reconvergence stack.  Executes compiled kernels on NumPy-backed device
  memory, validates codegen against the NumPy references, and produces
  ground-truth dynamic instruction counts (used at small sizes and by the
  Fig. 1 divergence experiment).
- :mod:`repro.sim.counting` -- closed-form *exact* dynamic counts from the
  compiler's region tree (grid-stride trip counts, vectorized branch-
  condition evaluation over iteration domains).  Agrees with the emulator
  (tested) but costs microseconds at any problem size; this is the
  "dynamic truth" for Table VI and the input to the timing model.
- :mod:`repro.sim.timing` -- the analytic performance model that plays the
  role of running on hardware: occupancy-driven latency hiding, Table II
  issue throughput, DRAM bandwidth with cache/coalescing effects, atomic
  serialization, wave quantization, and seeded measurement noise.
"""

from repro.sim.memory import DeviceMemory, DeviceAllocation, MemoryError_
from repro.sim.emulator import (
    EMU_MODES,
    EmulationResult,
    LaunchProfile,
    emulate_kernel,
    emulation_mode,
    run_benchmark_emulated,
)
from repro.sim.vector import has_global_atomics, run_stacked
from repro.sim.counting import (
    exact_counts,
    exact_branch_fraction,
    validate_against_emulation,
    warp_branch_fraction,
)
from repro.sim.occupancy_hw import hw_resident_blocks, hw_occupancy
from repro.sim.timing import (
    TimingModel,
    KernelTiming,
    LaunchConfig,
    ModelParams,
    DEFAULT_PARAMS,
    simulate_benchmark_time,
    measure_benchmark,
)

__all__ = [
    "DeviceMemory",
    "DeviceAllocation",
    "MemoryError_",
    "EMU_MODES",
    "EmulationResult",
    "LaunchProfile",
    "emulate_kernel",
    "emulation_mode",
    "run_benchmark_emulated",
    "has_global_atomics",
    "run_stacked",
    "exact_counts",
    "exact_branch_fraction",
    "validate_against_emulation",
    "warp_branch_fraction",
    "hw_resident_blocks",
    "hw_occupancy",
    "TimingModel",
    "KernelTiming",
    "LaunchConfig",
    "ModelParams",
    "DEFAULT_PARAMS",
    "simulate_benchmark_time",
    "measure_benchmark",
]
