"""Device memory for the functional emulator.

A flat 64-bit address space in which each kernel argument array receives an
aligned allocation.  Loads/stores are vectorized gathers/scatters with
bounds and alignment checking -- an out-of-bounds lane is a codegen bug and
raises immediately with a diagnostic, rather than silently corrupting
another buffer.

Access vectors may be one warp (shape ``(32,)``, the scalar emulator path)
or a whole stack of warps (shape ``(n_warps, 32)``, the vectorized
grid-level path in :mod:`repro.sim.vector`).  Batching does not change the
conflict semantics the scalar path defines: lanes are resolved in
row-major (block, warp, lane) order, which is exactly the order the
per-warp path issues them in, so same-address stores pick the same winner
and atomic reductions accumulate in the same order bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ptx.isa import DType

_NP_DTYPE = {
    DType.F32: np.float32,
    DType.F64: np.float64,
    DType.S32: np.int32,
    DType.U32: np.uint32,
    DType.S64: np.int64,
}


class MemoryError_(RuntimeError):
    """Raised on out-of-bounds or misaligned device accesses."""


@dataclass
class DeviceAllocation:
    """One array living in the emulated global address space."""

    name: str
    base: int
    data: np.ndarray  # 1-D

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    @property
    def elem_size(self) -> int:
        return int(self.data.itemsize)


class DeviceMemory:
    """The emulated device: allocations plus vectorized access."""

    BASE = 0x1000_0000
    ALIGN = 256

    def __init__(self) -> None:
        self._allocs: list[DeviceAllocation] = []
        self._next = self.BASE
        self.last_target: str | None = None
        """Name of the allocation the most recent access resolved to.
        The vectorized emulator path uses this to learn, at zero extra
        lookup cost, which arrays a kernel loads/stores -- the input to
        its deferred-atomic safety decision."""

    def alloc(self, name: str, array: np.ndarray) -> DeviceAllocation:
        """Register ``array`` (1-D) as a device buffer; returns allocation."""
        arr = np.ascontiguousarray(array)
        if arr.ndim != 1:
            raise ValueError(f"device arrays must be 1-D, got {arr.ndim}-D")
        alloc = DeviceAllocation(name=name, base=self._next, data=arr)
        self._allocs.append(alloc)
        size = max(arr.nbytes, 1)
        self._next += ((size + self.ALIGN - 1) // self.ALIGN) * self.ALIGN
        return alloc

    def allocation(self, name: str) -> DeviceAllocation:
        for a in self._allocs:
            if a.name == name:
                return a
        raise KeyError(f"no device allocation named {name!r}")

    def allocation_at(self, addr: int) -> DeviceAllocation | None:
        """The allocation containing ``addr``, or None."""
        for a in self._allocs:
            if a.base <= addr < a.end:
                return a
        return None

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copy of every allocation's contents (for speculative runs)."""
        return {a.name: a.data.copy() for a in self._allocs}

    def restore(self, snap: dict[str, np.ndarray]) -> None:
        """Restore contents captured by :meth:`snapshot`."""
        for a in self._allocs:
            np.copyto(a.data, snap[a.name])

    # -- vectorized access -------------------------------------------------

    def _locate(self, addrs: np.ndarray, mask: np.ndarray,
                elem_bytes: int) -> tuple[DeviceAllocation, np.ndarray]:
        """Find the allocation containing every active address.

        All active lanes of one instruction must target one allocation
        (kernel arguments never alias in our benchmarks); mixed targets
        indicate a codegen bug.
        """
        active = np.flatnonzero(mask)
        if active.size == 0:
            raise MemoryError_("access with empty mask")
        first = int(addrs[active[0]])
        alloc = None
        for a in self._allocs:
            if a.base <= first < a.end:
                alloc = a
                break
        if alloc is None:
            raise MemoryError_(
                f"address {first:#x} is outside every allocation"
            )
        act_addrs = addrs[active]
        if (act_addrs < alloc.base).any() or (
            act_addrs + elem_bytes > alloc.end
        ).any():
            bad = act_addrs[
                (act_addrs < alloc.base) | (act_addrs + elem_bytes > alloc.end)
            ][0]
            raise MemoryError_(
                f"out-of-bounds access at {int(bad):#x} relative to "
                f"{alloc.name!r} [{alloc.base:#x}, {alloc.end:#x})"
            )
        offsets = act_addrs - alloc.base
        if (offsets % elem_bytes).any():
            raise MemoryError_(
                f"misaligned {elem_bytes}-byte access into {alloc.name!r}"
            )
        self.last_target = alloc.name
        return alloc, active

    def gather(self, addrs: np.ndarray, mask: np.ndarray,
               dtype: DType) -> np.ndarray:
        """Load one element per active lane; inactive lanes read 0.

        ``addrs``/``mask`` may be ``(32,)`` (one warp) or ``(n_warps, 32)``
        (a warp stack); the result has the same shape.
        """
        np_dt = _NP_DTYPE[dtype]
        out = np.zeros(addrs.shape, dtype=np_dt)
        if not mask.any():
            return out
        flat_addrs = addrs.ravel()
        alloc, active = self._locate(flat_addrs, mask.ravel(), dtype.nbytes)
        idx = (flat_addrs[active] - alloc.base) // dtype.nbytes
        view = alloc.data.view(np_dt) if alloc.data.dtype != np_dt else alloc.data
        out.reshape(-1)[active] = view[idx]
        return out

    def scatter(self, addrs: np.ndarray, mask: np.ndarray,
                values: np.ndarray, dtype: DType) -> None:
        """Store one element per active lane.

        Lanes targeting the same address are resolved in row-major lane
        order (the hardware guarantees *some* lane wins; tests avoid
        relying on which).
        """
        if not mask.any():
            return
        np_dt = _NP_DTYPE[dtype]
        flat_addrs = addrs.ravel()
        alloc, active = self._locate(flat_addrs, mask.ravel(), dtype.nbytes)
        idx = (flat_addrs[active] - alloc.base) // dtype.nbytes
        view = alloc.data.view(np_dt) if alloc.data.dtype != np_dt else alloc.data
        view[idx] = values.ravel()[active].astype(np_dt)

    def scatter_add(self, addrs: np.ndarray, mask: np.ndarray,
                    values: np.ndarray, dtype: DType) -> None:
        """Atomic reduction add: duplicate addresses accumulate correctly.

        ``np.add.at`` applies the adds in flattened (row-major) lane
        order, matching the scalar path's per-warp accumulation order.
        """
        if not mask.any():
            return
        np_dt = _NP_DTYPE[dtype]
        flat_addrs = addrs.ravel()
        alloc, active = self._locate(flat_addrs, mask.ravel(), dtype.nbytes)
        idx = (flat_addrs[active] - alloc.base) // dtype.nbytes
        view = alloc.data.view(np_dt) if alloc.data.dtype != np_dt else alloc.data
        np.add.at(view, idx, values.ravel()[active].astype(np_dt))
