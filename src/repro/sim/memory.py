"""Device memory for the functional emulator.

A flat 64-bit address space in which each kernel argument array receives an
aligned allocation.  Loads/stores are vectorized gathers/scatters over
32-lane address vectors, with bounds and alignment checking -- an
out-of-bounds lane is a codegen bug and raises immediately with a
diagnostic, rather than silently corrupting another buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ptx.isa import DType

_NP_DTYPE = {
    DType.F32: np.float32,
    DType.F64: np.float64,
    DType.S32: np.int32,
    DType.U32: np.uint32,
    DType.S64: np.int64,
}


class MemoryError_(RuntimeError):
    """Raised on out-of-bounds or misaligned device accesses."""


@dataclass
class DeviceAllocation:
    """One array living in the emulated global address space."""

    name: str
    base: int
    data: np.ndarray  # 1-D

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    @property
    def elem_size(self) -> int:
        return int(self.data.itemsize)


class DeviceMemory:
    """The emulated device: allocations plus vectorized access."""

    BASE = 0x1000_0000
    ALIGN = 256

    def __init__(self) -> None:
        self._allocs: list[DeviceAllocation] = []
        self._next = self.BASE

    def alloc(self, name: str, array: np.ndarray) -> DeviceAllocation:
        """Register ``array`` (1-D) as a device buffer; returns allocation."""
        arr = np.ascontiguousarray(array)
        if arr.ndim != 1:
            raise ValueError(f"device arrays must be 1-D, got {arr.ndim}-D")
        alloc = DeviceAllocation(name=name, base=self._next, data=arr)
        self._allocs.append(alloc)
        size = max(arr.nbytes, 1)
        self._next += ((size + self.ALIGN - 1) // self.ALIGN) * self.ALIGN
        return alloc

    def allocation(self, name: str) -> DeviceAllocation:
        for a in self._allocs:
            if a.name == name:
                return a
        raise KeyError(f"no device allocation named {name!r}")

    # -- vectorized access -------------------------------------------------

    def _locate(self, addrs: np.ndarray, mask: np.ndarray,
                elem_bytes: int) -> tuple[DeviceAllocation, np.ndarray]:
        """Find the allocation containing every active address.

        All active lanes of one instruction must target one allocation
        (kernel arguments never alias in our benchmarks); mixed targets
        indicate a codegen bug.
        """
        active = np.flatnonzero(mask)
        if active.size == 0:
            raise MemoryError_("access with empty mask")
        first = int(addrs[active[0]])
        alloc = None
        for a in self._allocs:
            if a.base <= first < a.end:
                alloc = a
                break
        if alloc is None:
            raise MemoryError_(
                f"address {first:#x} is outside every allocation"
            )
        act_addrs = addrs[active]
        if (act_addrs < alloc.base).any() or (
            act_addrs + elem_bytes > alloc.end
        ).any():
            bad = act_addrs[
                (act_addrs < alloc.base) | (act_addrs + elem_bytes > alloc.end)
            ][0]
            raise MemoryError_(
                f"out-of-bounds access at {int(bad):#x} relative to "
                f"{alloc.name!r} [{alloc.base:#x}, {alloc.end:#x})"
            )
        offsets = act_addrs - alloc.base
        if (offsets % elem_bytes).any():
            raise MemoryError_(
                f"misaligned {elem_bytes}-byte access into {alloc.name!r}"
            )
        return alloc, active

    def gather(self, addrs: np.ndarray, mask: np.ndarray,
               dtype: DType) -> np.ndarray:
        """Load one element per active lane; inactive lanes read 0."""
        np_dt = _NP_DTYPE[dtype]
        out = np.zeros(addrs.shape, dtype=np_dt)
        if not mask.any():
            return out
        alloc, active = self._locate(addrs, mask, dtype.nbytes)
        idx = (addrs[active] - alloc.base) // dtype.nbytes
        view = alloc.data.view(np_dt) if alloc.data.dtype != np_dt else alloc.data
        out[active] = view[idx]
        return out

    def scatter(self, addrs: np.ndarray, mask: np.ndarray,
                values: np.ndarray, dtype: DType) -> None:
        """Store one element per active lane.

        Lanes targeting the same address are resolved in lane order (the
        hardware guarantees *some* lane wins; tests avoid relying on which).
        """
        if not mask.any():
            return
        np_dt = _NP_DTYPE[dtype]
        alloc, active = self._locate(addrs, mask, dtype.nbytes)
        idx = (addrs[active] - alloc.base) // dtype.nbytes
        view = alloc.data.view(np_dt) if alloc.data.dtype != np_dt else alloc.data
        view[idx] = values[active].astype(np_dt)

    def scatter_add(self, addrs: np.ndarray, mask: np.ndarray,
                    values: np.ndarray, dtype: DType) -> None:
        """Atomic reduction add: duplicate addresses accumulate correctly."""
        if not mask.any():
            return
        np_dt = _NP_DTYPE[dtype]
        alloc, active = self._locate(addrs, mask, dtype.nbytes)
        idx = (addrs[active] - alloc.base) // dtype.nbytes
        view = alloc.data.view(np_dt) if alloc.data.dtype != np_dt else alloc.data
        np.add.at(view, idx, values[active].astype(np_dt))
