"""Analytic GPU timing model -- the "hardware" the autotuner measures on.

For one kernel launch the model combines the first-order mechanisms the
paper reasons about qualitatively:

1. **Work distribution / spread.**  Grid-stride kernels only put work in
   the first ``ceil(M / TC)`` blocks when the parallel extent ``M`` is
   smaller than the grid.  For the row-parallel kernels (atax, BiCG:
   M = N <= 512) a large ``TC`` concentrates all work on one or two SMs --
   the mechanism behind their preference for the *lower* thread ranges.
2. **Issue throughput with block-switching overhead.**  The busiest SM
   issues its warps' instructions at the Table II category IPCs; divergent
   branches pay for both arms (warp-level counts); many small resident
   blocks add scheduler churn ("unnecessary switching of blocks may degrade
   performance" -- paper Sec. III-B1), which is what tilts the
   compute-dense kernels (matVec2D, ex14FJ) toward *larger* blocks.
3. **Pipelined latency floor.**  Dependent per-thread work (accumulator
   chains, SFU chains, outstanding-load limits) bounds execution below,
   independent of spread; it flattens the low-TC end for the small-M
   kernels.
4. **DRAM bandwidth with a cache model.**  Transactions follow each
   access's coalescing pattern; strided accesses with sequential line reuse
   (the row-walk in atax/BiCG) keep their lines only while the resident
   working set fits in L1 -- more warps, more thrash.  The Orio ``PL``
   parameter sets the L1 split on Fermi/Kepler.  Bandwidth utilization
   itself needs queue depth: effective bandwidth ramps with resident warps.
5. **Atomic serialization.**  Same-address atomics serialize chip-wide;
   spread-out atomics are absorbed by the L2 banks.
6. **Wave quantization and fixed launch/block overheads.**

The model is deterministic; :func:`measure_benchmark` adds seeded lognormal
noise and applies the paper's measurement protocol (Sec. IV-A: ten
repetitions, take the fifth trial).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.specs import GPUSpec
from repro.arch.throughput import InstrCategory, PipeClass, throughput_for
from repro.codegen.ast_nodes import evaluate_expr
from repro.codegen.compiler import CompiledKernel, CompiledModule
from repro.codegen.regions import MemAccess
from repro.ptx.isa import MemSpace
from repro.sim.counting import exact_counts
from repro.sim.occupancy_hw import hw_resident_blocks
from repro.util.rng import rng_for


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch configuration (the runtime slice of Table III)."""

    tc: int
    """Threads per block (Orio ``TC``)."""

    bc: int
    """Blocks in the grid (Orio ``BC``)."""

    def __post_init__(self):
        if self.tc <= 0 or self.bc <= 0:
            raise ValueError("tc and bc must be positive")

    @property
    def total_threads(self) -> int:
        return self.tc * self.bc


@dataclass(frozen=True)
class ModelParams:
    """Calibration constants of the timing model."""

    # pipelined latency floor: per-instruction dependent-chain costs
    chain_fp: float = 9.0
    chain_alu: float = 2.5
    chain_sfu: float = 40.0
    chain_ctrl: float = 2.0
    mem_mlp: float = 16.0
    """Outstanding loads per thread (memory-level parallelism) dividing the
    DRAM latency on the per-thread chain."""

    rmw_latency: float = 30.0
    """Serial latency of a same-address load inside a loop (naive
    read-modify-write updates: hits L1 but serializes)."""

    block_switch: float = 0.55
    """Relative issue slowdown at maximum resident-block churn."""

    w_need_base: float = 6.0
    w_need_sfu: float = 280.0
    """Warps needed to keep issue busy: base + sfu * (SFU fraction of the
    instruction stream).  Special-function chains (integer div/mod, exp)
    have long latencies, so SFU-dense kernels need high occupancy -- the
    paper's "compute-intensive kernels perform well with larger block
    sizes" observation."""

    bw_ramp_warps: float = 24.0
    bw_floor: float = 0.55
    """Effective DRAM bandwidth = peak * (floor + (1-floor) * min(1, W/ramp))."""

    atomic_conflict_cycles: float = 2.0
    """Chip-wide cycles per same-address atomic operation."""

    atomic_coalesced_cycles: float = 1.0
    """Extra issue cycles per warp for conflict-free atomics."""

    uniform_l2_bytes_factor: float = 0.04
    """Fraction of uniform-access bytes that actually reach DRAM."""

    launch_overhead_s: float = 4.0e-6
    block_start_cycles: float = 220.0
    noise_sigma: float = 0.03
    short_run_sigma: float = 0.30
    """Extra relative noise for runs dominated by launch overhead: real
    measurements of microsecond kernels are jitter-dominated, so sub-10us
    variants rank mostly by luck (as on real hardware)."""

    l1_kb_fixed: dict = field(default_factory=lambda: {52: 48, 60: 64})
    """Maxwell/Pascal have fixed L1/tex capacity; Fermi/Kepler honour PL."""


DEFAULT_PARAMS = ModelParams()


@dataclass(frozen=True)
class KernelTiming:
    """Timing breakdown for one kernel launch."""

    seconds: float
    cycles: float
    issue_cycles: float
    latency_cycles: float
    mem_cycles: float
    dram_bytes: float
    occupancy: float
    active_warps: float
    working_blocks: int
    waves: int
    unlaunchable: bool = False


_UNLAUNCHABLE = KernelTiming(
    seconds=float("inf"), cycles=float("inf"), issue_cycles=0.0,
    latency_cycles=0.0, mem_cycles=0.0, dram_bytes=0.0, occupancy=0.0,
    active_warps=0.0, working_blocks=0, waves=0, unlaunchable=True,
)


class TimingModel:
    """Timing evaluation of compiled kernels on one GPU."""

    def __init__(self, gpu: GPUSpec, params: ModelParams = DEFAULT_PARAMS):
        self.gpu = gpu
        self.params = params
        self.throughput = throughput_for(gpu)

    # -- memory traffic under the cache model ------------------------------

    def _l1_bytes(self, l1_pref_kb: int) -> float:
        fixed = self.params.l1_kb_fixed.get(self.gpu.sm_version)
        return (fixed if fixed is not None else l1_pref_kb) * 1024.0

    def _access_dram_bytes(
        self, acc: MemAccess, warp_execs: float, active_warps: float,
        l1_pref_kb: int,
    ) -> float:
        """DRAM bytes one static access contributes over the launch."""
        if acc.space is not MemSpace.GLOBAL:
            return 0.0
        elem = acc.dtype.nbytes
        if acc.pattern == "uniform":
            return warp_execs * 32.0 * self.params.uniform_l2_bytes_factor
        if acc.pattern == "coalesced":
            if acc.seq_stride == 0 and not acc.is_store and not acc.is_atomic:
                # same address every iteration (hoistable RMW load): L1-hot
                return warp_execs * 32.0 * self.params.uniform_l2_bytes_factor
            segs = max(1.0, 32.0 * elem / 32.0)  # 32-byte DRAM segments
            return warp_execs * segs * 32.0
        # strided: each lane in its own segment...
        worst_segs = 32.0
        if acc.seq_stride == 1:
            # ...but consecutive iterations reuse the line while the
            # resident working set fits in L1
            line = 128.0
            ideal_segs = 32.0 * elem / 32.0
            working = active_warps * 32.0 * line
            fit = min(1.0, self._l1_bytes(l1_pref_kb) / max(working, 1.0))
            segs = worst_segs - fit * (worst_segs - ideal_segs)
        else:
            segs = worst_segs
        return warp_execs * segs * 32.0

    def _access_chain_latency(self, acc: MemAccess) -> float:
        """Per-execution dependent-chain latency of one memory access."""
        if acc.space is not MemSpace.GLOBAL:
            return 4.0  # shared memory
        if acc.pattern == "uniform":
            return self.params.rmw_latency * 0.5  # constant-cache style hit
        if acc.seq_stride == 0 and not acc.is_store:
            return self.params.rmw_latency  # same-address reload: serial
        return self.gpu.dram_latency_cycles / self.params.mem_mlp

    # -- the model ---------------------------------------------------------

    def kernel_time(
        self,
        ck: CompiledKernel,
        launch: LaunchConfig,
        env: dict,
    ) -> KernelTiming:
        gpu = self.gpu
        p = self.params
        tc, bc = launch.tc, launch.bc

        resident = hw_resident_blocks(
            gpu, tc, ck.regs_per_thread, ck.static_smem_bytes
        )
        if resident == 0:
            return _UNLAUNCHABLE

        # parallel extent M and work spread
        if ck.parallel_extent is not None:
            m = max(0, int(evaluate_expr(ck.parallel_extent, env)))
        else:
            m = launch.total_threads
        working_blocks = max(1, min(bc, -(-m // tc))) if m else 1
        warps_per_block = gpu.warps_per_block(tc)
        sms_used = min(gpu.multiprocessors, working_blocks)
        blocks_per_sm = -(-working_blocks // sms_used)
        active_blocks = min(resident, blocks_per_sm)
        waves = -(-blocks_per_sm // resident)
        active_warps = active_blocks * warps_per_block
        occupancy = min(
            1.0,
            active_warps * gpu.warp_size / gpu.max_threads_per_mp,
        )
        work_frac = blocks_per_sm / working_blocks

        # dynamic counts: thread-level (work) and warp-level (issue slots);
        # the zero-thread evaluation isolates the loop body from the
        # per-thread preamble, which runs on *every* block (idle blocks
        # execute their preamble on otherwise-idle SMs, so it must not be
        # charged to the busiest working SM)
        tcounts = exact_counts(ck, env, tc, bc, warp_level=False)
        wcounts = exact_counts(ck, env, tc, bc, warp_level=True)
        wloop = exact_counts(ck, env, 1, 0, warp_level=True)

        all_blocks_per_sm = -(-bc // min(gpu.multiprocessors, bc))
        root_frac = all_blocks_per_sm / bc

        # ---- issue cycles on the busiest SM, with block-switch churn and
        #      occupancy-dependent latency hiding
        issue = 0.0
        total_ops = max(1.0, sum(wcounts.by_category.values()))
        sfu_frac = wcounts.by_category.get(
            InstrCategory.LOG_SIN_COS, 0.0
        ) / total_ops
        for cat, n in wcounts.by_category.items():
            n_loop = wloop.by_category.get(cat, 0.0)
            n_root = max(0.0, n - n_loop)
            issue += (
                n_loop * work_frac + n_root * root_frac
            ) / self.throughput.ipc(cat)
        # "small block sizes will result in many active blocks running on
        # the SM in a time-shared manner, where unnecessary switching of
        # blocks may degrade performance" (paper Sec. III-B1): scheduler
        # churn decays as blocks get larger
        max_wpb = gpu.max_threads_per_block // gpu.warp_size
        churn = 1.0 + p.block_switch * (1.0 - warps_per_block / max_wpb)
        w_need = p.w_need_base + p.w_need_sfu * sfu_frac
        hiding = min(1.0, active_warps / w_need)
        issue *= churn / hiding

        # ---- memory traffic, atomics
        dram_bytes = 0.0
        atomic_chip = 0.0
        for acc, execs in tcounts.mem_traffic:
            warp_execs = execs / 32.0
            dram_bytes += self._access_dram_bytes(
                acc, warp_execs, active_warps, ck.options.l1_pref_kb
            )
            if acc.is_atomic:
                if acc.pattern == "uniform":
                    atomic_chip += execs * p.atomic_conflict_cycles
                else:
                    issue += warp_execs * work_frac * p.atomic_coalesced_cycles

        # ---- pipelined latency floor (per-thread dependent work)
        active_threads = max(1, min(launch.total_threads, max(m, 1)))
        lat_per_thread = 0.0
        for cat, n in tcounts.by_category.items():
            per = n / active_threads
            if cat.pipe is PipeClass.MEM:
                continue  # charged per-access below
            if cat in (InstrCategory.FP32, InstrCategory.FP64):
                lat_per_thread += per * p.chain_fp
            elif cat is InstrCategory.LOG_SIN_COS:
                lat_per_thread += per * p.chain_sfu
            elif cat.pipe is PipeClass.CTRL:
                lat_per_thread += per * p.chain_ctrl
            else:
                lat_per_thread += per * p.chain_alu
        for acc, execs in tcounts.mem_traffic:
            lat_per_thread += (
                execs / active_threads
            ) * self._access_chain_latency(acc)
        latency_cycles = lat_per_thread * waves

        # ---- DRAM bandwidth bound (chip-wide, ramping with queue depth)
        bw_bytes_per_cycle = gpu.peak_bandwidth_gbs * 1e9 * gpu.cycle_time_s
        eff = p.bw_floor + (1.0 - p.bw_floor) * min(
            1.0, active_warps / p.bw_ramp_warps
        )
        mem_cycles = dram_bytes / bw_bytes_per_cycle / eff + atomic_chip

        # ---- combine
        cycles = max(issue, latency_cycles, mem_cycles)
        cycles += p.block_start_cycles * blocks_per_sm
        seconds = p.launch_overhead_s + cycles * gpu.cycle_time_s
        return KernelTiming(
            seconds=seconds,
            cycles=cycles,
            issue_cycles=issue,
            latency_cycles=latency_cycles,
            mem_cycles=mem_cycles,
            dram_bytes=dram_bytes,
            occupancy=occupancy,
            active_warps=float(active_warps),
            working_blocks=working_blocks,
            waves=waves,
        )

    def benchmark_time(
        self, module: CompiledModule, launch: LaunchConfig, env: dict
    ) -> float:
        """Deterministic total seconds for all kernels of a benchmark."""
        return sum(
            self.kernel_time(ck, launch, env).seconds for ck in module
        )


def simulate_benchmark_time(
    module: CompiledModule,
    launch: LaunchConfig,
    env: dict,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """Convenience: deterministic benchmark time on the module's GPU."""
    return TimingModel(module.options.gpu, params).benchmark_time(
        module, launch, env
    )


def measure_benchmark(
    module: CompiledModule,
    launch: LaunchConfig,
    env: dict,
    repetitions: int = 10,
    trial_index: int = 4,
    params: ModelParams = DEFAULT_PARAMS,
) -> float:
    """The paper's measurement protocol (Sec. IV-A).

    Runs ``repetitions`` noisy trials and reports the ``trial_index``-th
    (zero-based; the paper selects "the fifth overall trial").  Noise is
    lognormal with seeded, configuration-specific RNG so sweeps are
    reproducible.
    """
    base = simulate_benchmark_time(module, launch, env, params)
    if math.isinf(base):
        return base
    rng = rng_for(
        "measure", module.name, module.options.gpu.name,
        module.options.unroll_factor, module.options.fast_math,
        module.options.l1_pref_kb, launch.tc, launch.bc,
        sorted(env.items()),
    )
    overhead = params.launch_overhead_s * len(module.kernels)
    sigma = params.noise_sigma + params.short_run_sigma * min(
        1.0, overhead / base
    )
    trials = base * rng.lognormal(mean=0.0, sigma=sigma, size=repetitions)
    return float(trials[trial_index])
