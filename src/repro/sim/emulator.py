"""Warp-level SIMT functional emulator: dispatch core and scalar path.

Executes compiled kernels exactly as a streaming multiprocessor would at
warp granularity: 32 lanes in lockstep, per-lane guard predicates, and a
reconvergence stack that serializes divergent branch arms and rejoins at
the immediate post-dominator of the branch block (the paper's Fig. 1
behaviour).

The emulator serves three purposes:

1. *correctness*: compiled kernels are validated against the NumPy
   reference implementations of each benchmark;
2. *ground truth*: per-category dynamic instruction counts (thread-level
   and warp-issue-level) back-validate the closed-form counting model in
   :mod:`repro.sim.counting`;
3. *divergence measurement*: warp issues with partially-filled masks
   quantify the serialization loss the static divergence analysis predicts.

Two execution paths produce identical results (memory state and every
instruction counter, bit for bit):

- the **scalar path** in this module runs one warp at a time through the
  reconvergence stack -- the reference semantics;
- the **vectorized path** in :mod:`repro.sim.vector` stacks all resident
  warps of a launch into one ``(n_warps, 32)`` register file and executes
  each instruction once as a NumPy op over the whole stack, peeling
  divergent warps onto reconvergence-stack arm entries and re-merging
  them at the join.

:func:`emulate_kernel` routes through the vectorized path by default;
``REPRO_EMU=scalar`` (or ``mode="scalar"``) is the escape hatch.  The
path actually taken, and how wide its dispatch was, is recorded in
:class:`LaunchProfile` on ``EmulationResult.profile``.

It is a functional simulator, not a timing simulator -- cycle estimates
come from :mod:`repro.sim.timing`.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.codegen.compiler import CompiledKernel, CompiledModule
from repro.ptx.cfg import CFG, EXIT, build_cfg
from repro.ptx.instruction import Imm, Instruction, ParamRef, Reg, SReg
from repro.ptx.isa import CmpOp, DType, MemSpace, Opcode, SRegKind
from repro.sim.memory import DeviceMemory

WARP = 32

_NP_DTYPE = {
    DType.F32: np.float32,
    DType.F64: np.float64,
    DType.S32: np.int32,
    DType.U32: np.uint32,
    DType.S64: np.int64,
    DType.PRED: np.bool_,
}


class EmulationError(RuntimeError):
    """Raised when a kernel misbehaves under emulation."""


EMU_MODES = ("vector", "scalar")
"""Selectable execution paths (``REPRO_EMU`` / the ``mode`` argument)."""


def emulation_mode(override: str | None = None) -> str:
    """Resolve the emulator execution path.

    ``override`` wins when given; otherwise ``$REPRO_EMU``; otherwise the
    vectorized fast path.
    """
    mode = override or os.environ.get("REPRO_EMU") or "vector"
    if mode not in EMU_MODES:
        raise ValueError(
            f"unknown emulator mode {mode!r}; choose one of {EMU_MODES}"
        )
    return mode


@dataclass(frozen=True)
class LaunchProfile:
    """Execution-path diagnostics for one emulated launch.

    Not part of the architectural result (two runs of the same launch on
    different paths compare equal on :class:`EmulationResult`); this is
    the meta-record of *how* the emulator retired the launch.
    """

    mode: str
    """Path taken: ``grid`` (whole launch stacked) or ``scalar``
    (per-warp reference path); ``mixed`` after merging results of
    launches that took different paths."""

    wall_seconds: float
    """Host wall-clock time spent executing the launch."""

    issue_slots: int
    """Warp-level instruction issues retired (== ``total_issues``)."""

    dispatch_steps: int
    """Interpreter dispatch steps that retired them.  The scalar path
    takes one step per issue; the stacked path retires one issue per
    resident warp per step."""

    @property
    def mean_stack_width(self) -> float:
        """Mean warps retired per dispatch step (1.0 = scalar speed)."""
        if self.dispatch_steps == 0:
            return 1.0
        return self.issue_slots / self.dispatch_steps

    def merged(self, other: "LaunchProfile") -> "LaunchProfile":
        return LaunchProfile(
            mode=self.mode if self.mode == other.mode else "mixed",
            wall_seconds=self.wall_seconds + other.wall_seconds,
            issue_slots=self.issue_slots + other.issue_slots,
            dispatch_steps=self.dispatch_steps + other.dispatch_steps,
        )


@dataclass
class EmulationResult:
    """Dynamic behaviour of one kernel launch."""

    thread_counts: Counter = field(default_factory=Counter)
    """Executed instructions per category, summed over active lanes."""

    warp_issues: Counter = field(default_factory=Counter)
    """Warp-level instruction issues per category (each issue once)."""

    reg_ops: int = 0
    """Register-operand traffic summed over active lanes."""

    divergent_branches: int = 0
    """Conditional branches where lanes of one warp went both ways."""

    branch_count: int = 0
    """Conditional branches executed (warp level)."""

    partial_issues: int = 0
    """Warp issues with fewer than 32 active lanes."""

    total_issues: int = 0

    profile: LaunchProfile | None = field(
        default=None, compare=False, repr=False
    )
    """How the launch was executed (path, width, wall time); diagnostic
    only -- excluded from equality so scalar and vectorized results of
    the same launch compare equal."""

    @property
    def total_thread_instructions(self) -> int:
        return sum(self.thread_counts.values())

    @property
    def simd_efficiency(self) -> float:
        """Mean active lanes per issue / 32 (1.0 = no divergence loss)."""
        if self.total_issues == 0:
            return 1.0
        return self.total_thread_instructions / (self.total_issues * WARP)

    def merge(self, other: "EmulationResult") -> None:
        self.thread_counts.update(other.thread_counts)
        self.warp_issues.update(other.warp_issues)
        self.reg_ops += other.reg_ops
        self.divergent_branches += other.divergent_branches
        self.branch_count += other.branch_count
        self.partial_issues += other.partial_issues
        self.total_issues += other.total_issues
        if self.profile is not None and other.profile is not None:
            self.profile = self.profile.merged(other.profile)
        else:
            self.profile = self.profile or other.profile


@dataclass(frozen=True)
class SmemRace:
    """One happens-before violation on shared memory.

    Two accesses to the same byte, at least one a store and not both
    atomic, by different threads of the same block, in the same barrier
    interval (``phase`` = number of ``bar.sync`` the accessing thread
    has retired): nothing orders them, so the program's result depends
    on warp scheduling.
    """

    kernel: str
    block: int
    byte: int
    phase: int
    kind_a: str
    tid_a: int
    kind_b: str
    tid_b: int

    def __str__(self):
        ta = "<multiple>" if self.tid_a < 0 else str(self.tid_a)
        tb = "<multiple>" if self.tid_b < 0 else str(self.tid_b)
        return (
            f"{self.kernel}: shared-memory race on byte {self.byte} of "
            f"block {self.block} in barrier interval {self.phase}: "
            f"{self.kind_a} by tid {ta} vs {self.kind_b} by tid {tb}"
        )


#: tracker class -> conflicting tracker classes (LD/LD and RED/RED pairs
#: commute; everything else on the same byte in the same phase races)
_CONFLICTS = {"w": ("w", "r", "a"), "r": ("w", "a"), "a": ("w", "r")}
_CLASS_OF = {"st": "w", "ld": "r", "red": "a"}
_KIND_OF = {"w": "st", "r": "ld", "a": "red"}


class SmemSanitizer:
    """Happens-before race detector for shared memory.

    The emulator's barrier protocol already guarantees that all warps of
    a block retire barrier *k* before any executes past it, so the
    happens-before order within a block is exactly the barrier-interval
    order: accesses in different intervals are ordered, accesses in the
    same interval by different threads are not.  The sanitizer shadows
    every shared-memory byte with its last write/read/atomic access
    ``(phase, tid)`` (``tid = -2`` once several threads touched it in
    the same phase) and reports a :class:`SmemRace` whenever an
    unordered conflicting pair shows up.  This is the dynamic mirror of
    the static ``smem-race`` checker in :mod:`repro.analyze.checkers`
    and the oracle the fuzz cross-validation compares it against.

    One instance can observe a whole multi-kernel benchmark: kernel
    launches are global barriers, so :meth:`begin_launch` resets the
    shadow state while :attr:`races` accumulates across launches.
    """

    def __init__(self):
        self.races: list[SmemRace] = []
        self._mark = 0
        self._kernel = ""
        self._smem_bytes = 0
        self._track: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def begin_launch(self, kernel_name: str, bc: int, smem_bytes: int,
                     fresh: bool = True) -> None:
        """Reset shadow state for a new launch.

        ``fresh=False`` re-begins the *same* launch (the vectorized
        path's scalar fallback re-executes from a memory snapshot):
        races recorded by the abandoned speculative run are dropped.
        """
        if fresh:
            self._mark = len(self.races)
        else:
            del self.races[self._mark:]
        self._kernel = kernel_name
        self._smem_bytes = smem_bytes
        self._track = {
            cls: (
                np.full(bc * smem_bytes, -1, dtype=np.int64),
                np.full(bc * smem_bytes, -1, dtype=np.int64),
            )
            for cls in ("w", "r", "a")
        }

    def record(self, kind: str, blocks: np.ndarray, bytes_idx: np.ndarray,
               tids: np.ndarray, phases: np.ndarray) -> None:
        """Observe one instruction's byte accesses.

        ``blocks``/``bytes_idx``/``tids``/``phases`` are parallel flat
        arrays, one entry per (lane, byte-of-access); ``kind`` is
        ``st``/``ld``/``red``.
        """
        if bytes_idx.size == 0 or self._smem_bytes == 0:
            return
        cls = _CLASS_OF[kind]
        keys = blocks.astype(np.int64) * self._smem_bytes + bytes_idx
        order = np.argsort(keys, kind="stable")
        keys_s = keys[order]
        tids_s = tids[order]
        phases_s = phases[order]
        uniq, start = np.unique(keys_s, return_index=True)
        rep_tid = tids_s[start].copy()
        phases_u = phases_s[start]
        # collapse same-byte groups: one tid, or -2 for several
        first_of = np.repeat(start, np.diff(np.append(start, keys_s.size)))
        multi = np.logical_or.reduceat(tids_s != tids_s[first_of], start)
        rep_tid[multi] = -2
        if kind == "st" and multi.any():
            # two lanes of one store instruction hit the same byte
            i = int(np.argmax(multi))
            self._report(uniq[i], int(phases_u[i]), "st", -2, "st", -2)
        for other in _CONFLICTS[cls]:
            oph, otd = self._track[other]
            p = oph[uniq]
            t = otd[uniq]
            clash = (p == phases_u) & ((t == -2) | (t != rep_tid))
            if clash.any():
                i = int(np.argmax(clash))
                self._report(uniq[i], int(phases_u[i]), kind,
                             int(rep_tid[i]), _KIND_OF[other], int(t[i]))
        ph, td = self._track[cls]
        cur_ph = ph[uniq]
        cur_td = td[uniq]
        td[uniq] = np.where(
            (cur_ph == phases_u) & (cur_td != rep_tid), -2, rep_tid
        )
        ph[uniq] = phases_u

    def _report(self, key: int, phase: int, kind_a: str, tid_a: int,
                kind_b: str, tid_b: int) -> None:
        self.races.append(SmemRace(
            kernel=self._kernel,
            block=int(key) // self._smem_bytes,
            byte=int(key) % self._smem_bytes,
            phase=phase,
            kind_a=kind_a,
            tid_a=tid_a,
            kind_b=kind_b,
            tid_b=tid_b,
        ))


def _trunc_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C-style truncating integer division, safe under zero divisors."""
    bz = b == 0
    bb = np.where(bz, 1, b)
    q = np.floor_divide(a, bb)
    rem = a - q * bb
    # floor -> trunc correction for mixed signs
    q = q + ((rem != 0) & ((a < 0) != (b < 0)))
    return np.where(bz, 0, q).astype(a.dtype, copy=False)


class _Warp:
    """Execution state of one warp."""

    def __init__(self, emu: "_KernelRun", warp_id: int, block_id: int):
        self.emu = emu
        self.lane = np.arange(WARP, dtype=np.int32)
        self.tid = warp_id * WARP + self.lane  # thread index within block
        self.block_id = block_id
        self.regs: dict[str, np.ndarray] = {}
        self.exited = np.zeros(WARP, dtype=bool)
        self.bars = 0  # barriers retired (the sanitizer's phase clock)
        # lanes beyond blockDim are never launched
        self.exited[self.tid >= emu.tc] = True

    # -- register access ---------------------------------------------------

    def read(self, op, want: DType | None = None) -> np.ndarray:
        if isinstance(op, Reg):
            if op.name not in self.regs:
                raise EmulationError(f"read of undefined register {op.name}")
            return self.regs[op.name]
        if isinstance(op, Imm):
            dt = _NP_DTYPE[op.dtype]
            return np.full(WARP, op.value, dtype=dt)
        if isinstance(op, SReg):
            return self._sreg(op.kind)
        raise EmulationError(f"cannot read operand {op!r}")

    def _sreg(self, kind: SRegKind) -> np.ndarray:
        emu = self.emu
        if kind is SRegKind.TID_X:
            return self.tid.astype(np.int32)
        if kind is SRegKind.NTID_X:
            return np.full(WARP, emu.tc, dtype=np.int32)
        if kind is SRegKind.CTAID_X:
            return np.full(WARP, self.block_id, dtype=np.int32)
        if kind is SRegKind.NCTAID_X:
            return np.full(WARP, emu.bc, dtype=np.int32)
        if kind is SRegKind.LANEID:
            return self.lane.copy()
        raise EmulationError(f"special register {kind} not modelled")

    def write(self, reg: Reg, value: np.ndarray, mask: np.ndarray) -> None:
        dt = _NP_DTYPE[reg.dtype]
        if reg.name not in self.regs:
            self.regs[reg.name] = np.zeros(WARP, dtype=dt)
        self.regs[reg.name][mask] = value.astype(dt, copy=False)[mask]


class _KernelRun:
    """One kernel launch being emulated."""

    def __init__(self, ck: CompiledKernel, params: dict, tc: int, bc: int,
                 memory: DeviceMemory,
                 sanitizer: SmemSanitizer | None = None):
        self.ck = ck
        self.tc = tc
        self.bc = bc
        self.memory = memory
        self.sanitizer = sanitizer
        self.result = EmulationResult()

        self.cfg: CFG = build_cfg(ck.ir)
        self.ipdom = self.cfg.immediate_post_dominators()
        self.entry = self.cfg.entry_block
        self._block_order = list(self.cfg.blocks)
        self._next_of = {}
        for i, name in enumerate(self._block_order):
            self._next_of[name] = (
                self._block_order[i + 1] if i + 1 < len(self._block_order)
                else None
            )

        # resolve parameters
        self.param_values: dict[str, np.ndarray] = {}
        for p in ck.ir.params:
            if p.name not in params:
                raise EmulationError(f"missing kernel argument {p.name!r}")
            v = params[p.name]
            if p.is_pointer:
                alloc = memory.allocation(p.name)
                self.param_values[p.name] = np.full(
                    WARP, alloc.base, dtype=np.int64
                )
            else:
                dt = _NP_DTYPE[p.dtype]
                self.param_values[p.name] = np.full(WARP, v, dtype=dt)

        self.smem_bytes = ck.ir.static_smem_bytes

    # -- whole-launch driver -------------------------------------------

    def run(self, max_issues_per_warp: int = 5_000_000) -> EmulationResult:
        warps_per_block = -(-self.tc // WARP)
        has_bar = any(
            isinstance(it, Instruction) and it.opcode is Opcode.BAR
            for it in self.ck.ir.body
        )
        for block_id in range(self.bc):
            smem = (
                np.zeros(self.smem_bytes, dtype=np.uint8)
                if self.smem_bytes else None
            )
            runners = [
                self._warp_runner(_Warp(self, w, block_id), smem,
                                  max_issues_per_warp)
                for w in range(warps_per_block)
            ]
            if not has_bar:
                for r in runners:
                    for _ in r:
                        raise EmulationError(
                            "barrier yielded by kernel without bar.sync"
                        )
            else:
                live = list(runners)
                while live:
                    nxt = []
                    for r in live:
                        try:
                            next(r)
                            nxt.append(r)  # hit a barrier; resume next round
                        except StopIteration:
                            pass
                    if nxt and len(nxt) != len(live):
                        # warps must all reach the same barrier
                        raise EmulationError(
                            "divergent bar.sync: some warps finished while "
                            "others wait at a barrier"
                        )
                    live = nxt
        return self.result

    # -- per-warp SIMT execution -----------------------------------------

    def _warp_runner(self, warp: _Warp, smem, max_issues: int):
        """Generator: executes one warp, yielding at each bar.sync."""
        full = ~warp.exited
        if not full.any():
            return
        issues = 0
        # stack of (block, mask, reconv)
        stack: list[tuple[str, np.ndarray, str | None]] = [
            (self.entry, full.copy(), None)
        ]
        while stack:
            block, mask, reconv = stack.pop()
            while True:
                mask = mask & ~warp.exited
                if not mask.any():
                    break
                blk = self.cfg.blocks[block]
                branch_taken = None
                for ins in blk.instructions:
                    issues += 1
                    if issues > max_issues:
                        raise EmulationError(
                            f"warp exceeded {max_issues} issues in "
                            f"{self.ck.name} (runaway loop?)"
                        )
                    base = mask & ~warp.exited
                    em = base
                    if ins.pred is not None:
                        pv = warp.read(ins.pred).astype(bool)
                        em = em & (~pv if ins.pred_negated else pv)
                    # counting uses the region mask (`base`): a predicated-
                    # off instruction still occupies its issue slot for the
                    # lane, matching the region model's accounting
                    self._count(ins, base)
                    if ins.opcode is Opcode.BRA:
                        branch_taken = em.copy()
                        continue
                    if ins.opcode is Opcode.BAR:
                        yield "bar"
                        warp.bars += 1
                        continue
                    if ins.opcode in (Opcode.EXIT, Opcode.RET):
                        warp.exited |= em
                        continue
                    if not em.any():
                        continue
                    self._execute(warp, ins, em, smem)

                # decide successor(s)
                mask = mask & ~warp.exited
                if not mask.any():
                    break
                term = blk.terminator
                if term is None or term.opcode in (Opcode.EXIT, Opcode.RET):
                    nxt = self._next_of[block] if term is None else None
                    if term is None and nxt is not None:
                        block = nxt
                        if block == reconv:
                            break
                        continue
                    break
                # branch terminator (targets may be label aliases of a
                # collapsed block -- resolve through the CFG)
                target = self.cfg.resolve_label(term.branch_target)
                fall = self._next_of[block]
                if term.pred is None:
                    block = target
                    if block == reconv:
                        break
                    continue
                taken = branch_taken & mask
                ntaken = mask & ~taken
                self.result.branch_count += 1
                if not ntaken.any():
                    block = target
                elif not taken.any():
                    if fall is None:
                        break
                    block = fall
                else:
                    # true divergence: serialize via reconvergence stack
                    self.result.divergent_branches += 1
                    ipd = self.ipdom.get(block, EXIT)
                    if ipd != EXIT and ipd != reconv:
                        stack.append((ipd, mask.copy(), reconv))
                    # an arm that starts AT the reconvergence point has no
                    # work of its own: its lanes wait there for the other
                    # arm (pushing it would execute the join block early,
                    # with a partial mask -- doubling its instructions and
                    # any bar.sync for the divergent warp)
                    if fall is not None and fall != ipd:
                        stack.append((fall, ntaken, ipd))
                    if target != ipd:
                        stack.append((target, taken, ipd))
                    break
                if block == reconv or block == EXIT:
                    break

    # -- instruction semantics -------------------------------------------

    def _count(self, ins: Instruction, em: np.ndarray) -> None:
        cat = ins.category
        res = self.result
        res.warp_issues[cat] += 1
        res.total_issues += 1
        n = int(em.sum())
        res.thread_counts[cat] += n
        res.reg_ops += ins.register_operand_count() * n
        if n and n < WARP:
            res.partial_issues += 1

    def _execute(self, warp: _Warp, ins: Instruction, em: np.ndarray,
                 smem) -> None:
        op = ins.opcode

        if op is Opcode.LD:
            src = ins.srcs[0]
            if isinstance(src, ParamRef):
                warp.write(ins.dst, self.param_values[src.name], em)
                return
            addrs = warp.read(src.base).astype(np.int64) + src.offset
            if ins.space is MemSpace.SHARED:
                val = self._smem_gather(smem, addrs, em, ins.dtype, warp)
            else:
                val = self.memory.gather(addrs, em, ins.dtype)
            warp.write(ins.dst, val, em)
            return

        if op in (Opcode.ST, Opcode.RED):
            mem, vop = ins.srcs
            addrs = warp.read(mem.base).astype(np.int64) + mem.offset
            vals = warp.read(vop)
            if ins.space is MemSpace.SHARED:
                self._smem_scatter(smem, addrs, em, vals, ins.dtype,
                                   add=op is Opcode.RED, warp=warp)
            elif op is Opcode.RED:
                self.memory.scatter_add(addrs, em, vals, ins.dtype)
            else:
                self.memory.scatter(addrs, em, vals, ins.dtype)
            return

        if op is Opcode.MOV:
            warp.write(ins.dst, warp.read(ins.srcs[0]), em)
            return

        if op is Opcode.SETP:
            a = warp.read(ins.srcs[0])
            b = warp.read(ins.srcs[1])
            res = {
                CmpOp.LT: a < b, CmpOp.LE: a <= b, CmpOp.GT: a > b,
                CmpOp.GE: a >= b, CmpOp.EQ: a == b, CmpOp.NE: a != b,
            }[ins.cmp]
            warp.write(ins.dst, res, em)
            return

        if op is Opcode.SELP:
            a, b, p = (warp.read(s) for s in ins.srcs)
            warp.write(ins.dst, np.where(p.astype(bool), a, b), em)
            return

        if op is Opcode.CVT:
            v = warp.read(ins.srcs[0])
            warp.write(ins.dst, v.astype(_NP_DTYPE[ins.dtype]), em)
            return

        if op is Opcode.MULWIDE:
            a = warp.read(ins.srcs[0]).astype(np.int64)
            b = warp.read(ins.srcs[1]).astype(np.int64)
            warp.write(ins.dst, a * b, em)
            return

        # arithmetic / logic with uniform handling
        srcs = [warp.read(s) for s in ins.srcs]
        dt = _NP_DTYPE[ins.dtype] if ins.dtype else None
        with np.errstate(all="ignore"):
            val = self._arith(op, ins, srcs, dt)
        warp.write(ins.dst, val, em)

    @staticmethod
    def _arith(op: Opcode, ins: Instruction, srcs: list, dt) -> np.ndarray:
        a = srcs[0] if srcs else None
        b = srcs[1] if len(srcs) > 1 else None
        c = srcs[2] if len(srcs) > 2 else None
        if op is Opcode.ADD:
            return a + b
        if op is Opcode.SUB:
            return a - b
        if op is Opcode.MUL:
            return a * b
        if op in (Opcode.MAD, Opcode.FMA):
            return a * b + c
        if op is Opcode.DIV:
            if ins.dtype.is_float:
                return a / b
            return _trunc_div(a, b)
        if op is Opcode.NEG:
            return -a
        if op is Opcode.ABS:
            return np.abs(a)
        if op is Opcode.MIN:
            return np.minimum(a, b)
        if op is Opcode.MAX:
            return np.maximum(a, b)
        if op is Opcode.AND:
            return a & b
        if op is Opcode.OR:
            return a | b
        if op is Opcode.XOR:
            return a ^ b
        if op is Opcode.NOT:
            return ~a if a.dtype != np.bool_ else ~a
        if op is Opcode.SHL:
            return a << b.astype(a.dtype)
        if op is Opcode.SHR:
            return a >> b.astype(a.dtype)
        if op is Opcode.RCP:
            return (1.0 / a).astype(dt)
        if op is Opcode.SQRT:
            return np.sqrt(a).astype(dt)
        if op is Opcode.RSQRT:
            return (1.0 / np.sqrt(a)).astype(dt)
        if op is Opcode.EX2:
            return np.exp2(a).astype(dt)
        if op is Opcode.LG2:
            return np.log2(a).astype(dt)
        if op is Opcode.SIN:
            return np.sin(a).astype(dt)
        if op is Opcode.COS:
            return np.cos(a).astype(dt)
        raise EmulationError(f"unimplemented opcode {op}")

    # -- shared memory -----------------------------------------------------

    def _sanitize_warp(self, kind: str, warp: _Warp, addrs, em,
                       nbytes: int) -> None:
        base = addrs[em]
        bytes_idx = (base[:, None] + np.arange(nbytes)).ravel()
        tids = np.repeat(warp.tid[em], nbytes).astype(np.int64)
        blocks = np.full(bytes_idx.size, warp.block_id, dtype=np.int64)
        phases = np.full(bytes_idx.size, warp.bars, dtype=np.int64)
        self.sanitizer.record(kind, blocks, bytes_idx, tids, phases)

    def _smem_gather(self, smem, addrs, em, dtype: DType,
                     warp: _Warp) -> np.ndarray:
        np_dt = _NP_DTYPE[dtype]
        out = np.zeros(WARP, dtype=np_dt)
        if smem is None:
            raise EmulationError("shared access without shared memory")
        view = smem.view(np_dt)
        idx = (addrs[em] // dtype.nbytes).astype(np.int64)
        if (idx < 0).any() or (idx >= view.size).any():
            raise EmulationError("shared memory access out of bounds")
        if self.sanitizer is not None:
            self._sanitize_warp("ld", warp, addrs, em, dtype.nbytes)
        out[em] = view[idx]
        return out

    def _smem_scatter(self, smem, addrs, em, vals, dtype: DType, add: bool,
                      warp: _Warp) -> None:
        np_dt = _NP_DTYPE[dtype]
        if smem is None:
            raise EmulationError("shared access without shared memory")
        view = smem.view(np_dt)
        idx = (addrs[em] // dtype.nbytes).astype(np.int64)
        if (idx < 0).any() or (idx >= view.size).any():
            raise EmulationError("shared memory store out of bounds")
        if self.sanitizer is not None:
            self._sanitize_warp("red" if add else "st", warp, addrs, em,
                                dtype.nbytes)
        if add:
            np.add.at(view, idx, vals[em].astype(np_dt))
        else:
            view[idx] = vals[em].astype(np_dt)


def emulate_kernel(
    ck: CompiledKernel,
    inputs: dict,
    tc: int,
    bc: int,
    memory: DeviceMemory | None = None,
    mode: str | None = None,
    sanitizer: SmemSanitizer | None = None,
) -> tuple[EmulationResult, DeviceMemory]:
    """Run one compiled kernel on ``inputs``.

    Array inputs are copied into (or reused from) ``memory``; outputs are
    read back from the allocations after the run.  Returns the dynamic
    behaviour record and the device memory (for chaining multi-kernel
    benchmarks).

    ``mode`` selects the execution path (:data:`EMU_MODES`); by default
    the vectorized grid-level path, with ``REPRO_EMU=scalar`` as the
    environment escape hatch.  Both paths produce identical results; the
    one actually used is recorded on ``result.profile``.

    Passing a :class:`SmemSanitizer` turns on happens-before race
    checking for shared memory; findings accumulate on
    ``sanitizer.races`` (both execution paths feed it identically).
    """
    if tc <= 0 or bc <= 0:
        raise ValueError("tc and bc must be positive")
    if memory is None:
        memory = DeviceMemory()
        for p in ck.ir.params:
            if p.is_pointer:
                memory.alloc(p.name, np.asarray(inputs[p.name]).copy())
    if sanitizer is not None:
        sanitizer.begin_launch(ck.ir.name, bc, ck.ir.static_smem_bytes)
    with obs.span("launch", key=ck.ir.name,
                  args={"tc": tc, "bc": bc}) as sp:
        t0 = time.perf_counter()
        if emulation_mode(mode) == "vector":
            from repro.sim.vector import run_stacked

            result, path, steps = run_stacked(ck, inputs, tc, bc, memory,
                                              sanitizer=sanitizer)
        else:
            result = _KernelRun(ck, inputs, tc, bc, memory,
                                sanitizer=sanitizer).run()
            path, steps = "scalar", result.total_issues
        result.profile = profile = LaunchProfile(
            mode=path,
            wall_seconds=time.perf_counter() - t0,
            issue_slots=result.total_issues,
            dispatch_steps=steps,
        )
        sp.annotate(mode=path, issue_slots=profile.issue_slots,
                    stack_width=round(profile.mean_stack_width, 2))
    _record_profile(ck.ir.name, profile)
    return result, memory


def _record_profile(kernel: str, profile: LaunchProfile) -> None:
    """Feed a launch's :class:`LaunchProfile` into the metrics registry
    (previously the wall-time/path data was dropped once the result was
    consumed).  Per ``(kernel, mode)``: launch/issue/wall totals, a
    stack-width histogram, and a derived issues-per-second gauge -- the
    emulator-throughput numbers suite runs report."""
    m = obs.metrics
    if m is None:
        return
    lbl = {"kernel": kernel, "mode": profile.mode}
    m.add("emu.launches", 1, **lbl)
    m.add("emu.issue_slots", profile.issue_slots, **lbl)
    m.add("emu.wall_seconds", profile.wall_seconds, **lbl)
    m.observe("emu.stack_width", profile.mean_stack_width, **lbl)
    wall = m.value("emu.wall_seconds", **lbl)
    if wall > 0:
        m.set_gauge(
            "emu.issues_per_second",
            m.value("emu.issue_slots", **lbl) / wall,
            **lbl,
        )


def run_benchmark_emulated(
    module: CompiledModule,
    inputs: dict,
    tc: int,
    bc: int,
    mode: str | None = None,
    sanitizer: SmemSanitizer | None = None,
) -> tuple[dict, EmulationResult]:
    """Emulate all kernels of a benchmark in order on shared device memory.

    Returns (outputs dict with every array parameter's final contents,
    merged EmulationResult).
    """
    memory = DeviceMemory()
    seen: set[str] = set()
    for ck in module:
        for p in ck.ir.params:
            if p.is_pointer and p.name not in seen:
                memory.alloc(p.name, np.asarray(inputs[p.name]).copy())
                seen.add(p.name)
    total = EmulationResult()
    with obs.span("emulate", key=module.name,
                  args={"kernels": len(module), "tc": tc, "bc": bc}):
        for ck in module:
            res, _ = emulate_kernel(ck, inputs, tc, bc, memory, mode=mode,
                                    sanitizer=sanitizer)
            total.merge(res)
    outputs = {name: memory.allocation(name).data for name in seen}
    return outputs, total
