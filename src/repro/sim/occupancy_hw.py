"""Hardware-side resident-block computation.

This is what the *hardware* (the block scheduler) does when deciding how
many blocks of a kernel fit on one SM; the paper's occupancy model
(:mod:`repro.core.occupancy`, Eqs. 1-5) describes the same computation in
analysis terms.  Tests assert the two agree on every configuration; they
are kept separate because the simulator must not depend on the analysis
layer it is used to validate.
"""

from __future__ import annotations

from repro.arch.specs import GPUSpec


def _ceil_to(value: int, granularity: int) -> int:
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return -(-value // granularity) * granularity


def hw_resident_blocks(
    gpu: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int = 0,
    smem_per_block: int = 0,
) -> int:
    """Blocks of this kernel that can be resident on one SM (0 = cannot
    launch: block too large or over a per-block resource limit)."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > gpu.max_threads_per_block:
        return 0
    if regs_per_thread > gpu.max_regs_per_thread:
        return 0
    if smem_per_block > gpu.smem_per_block_bytes:
        return 0

    warps = gpu.warps_per_block(threads_per_block)

    limits = [gpu.max_blocks_per_mp, gpu.max_warps_per_mp // warps]

    if regs_per_thread > 0:
        if gpu.compute_capability < 3.0:
            # Fermi: registers are allocated per block, rounded to the
            # allocation unit, out of the block-visible register file.
            regs_block = _ceil_to(
                regs_per_thread
                * gpu.warp_size
                * _ceil_to(warps, gpu.warp_alloc_granularity),
                gpu.reg_alloc_unit,
            )
            limits.append(gpu.regfile_per_block // regs_block)
        else:
            # Kepler+: registers are allocated per warp.
            regs_warp = _ceil_to(
                regs_per_thread * gpu.warp_size, gpu.reg_alloc_unit
            )
            warps_fit = gpu.regfile_per_mp // regs_warp
            limits.append(warps_fit // warps)

    if smem_per_block > 0:
        smem_block = _ceil_to(smem_per_block, gpu.smem_alloc_unit)
        limits.append(gpu.smem_per_mp_bytes // smem_block)

    return max(0, min(limits))


def hw_occupancy(
    gpu: GPUSpec,
    threads_per_block: int,
    regs_per_thread: int = 0,
    smem_per_block: int = 0,
) -> float:
    """Theoretical occupancy: resident warps over the SM's warp capacity."""
    blocks = hw_resident_blocks(
        gpu, threads_per_block, regs_per_thread, smem_per_block
    )
    warps = gpu.warps_per_block(threads_per_block)
    return blocks * warps / gpu.max_warps_per_mp
