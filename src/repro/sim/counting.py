"""Closed-form exact dynamic instruction counts.

Evaluates a compiled kernel's region tree with *exact* multiplicities:

- grid-stride parallel loops execute each iteration exactly once across the
  grid;
- sequential loop trip counts come from their bound expressions;
- branch fractions are computed by evaluating the branch condition,
  vectorized with NumPy, over the full iteration domain of the enclosing
  loops (e.g. the ex14FJ boundary predicate over all N^3 points).

The results agree with the warp emulator (asserted in tests) but cost
microseconds at any problem size, which is what lets the timing model stand
in for 5,120-variant empirical sweeps.

Data-dependent control flow (CSR row extents, skewed histogram keys,
compaction guards) is supported *input-aware*: bind the concrete input
arrays in ``env`` alongside the scalar parameters and branch conditions /
loop bounds that load from them evaluate exactly (vectorized gathers).
Without the arrays, branch fractions fall back to the static 0.5
assumption and data-dependent trip counts to
:data:`repro.codegen.regions.DATA_DEP_TRIPS_DEFAULT` -- the same
degradation story the paper's static analyzer lives with.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.ast_nodes import evaluate_expr, evaluate_expr_numpy
from repro.codegen.compiler import CompiledKernel
from repro.codegen.regions import DynamicCounts, Region, evaluate_region_tree

#: evaluate branch domains in chunks of this many points to bound memory
_CHUNK = 1 << 20


def _domain_axes(loop_stack: list, env: dict) -> list[np.ndarray]:
    axes = []
    for region in loop_stack:
        lo = int(evaluate_expr(region.lower, env))
        hi = int(evaluate_expr(region.upper, env))
        axes.append(np.arange(lo, hi, region.step, dtype=np.int64))
    return axes


def exact_branch_fraction(region: Region, env: dict, loop_stack: list) -> float:
    """Exact execution fraction of one branch arm over its loop domain.

    For a THEN region this is the probability that the condition holds;
    for an ELSE region, its complement.  Conditions whose data is absent
    from ``env`` (data-dependent branches without the input arrays bound)
    fall back to the static 0.5 assumption.
    """
    from repro.codegen.regions import RegionKind

    try:
        f = _cond_fraction(region, env, loop_stack)
    except (KeyError, TypeError):
        f = 0.5
    if region.kind is RegionKind.ELSE:
        return 1.0 - f
    return f


def _cond_fraction(region: Region, env: dict, loop_stack: list) -> float:
    """Exact probability that ``region.cond`` holds over its loop domain."""
    if region.cond is None:
        raise ValueError(f"region {region.id} has no branch condition")
    axes = _domain_axes(loop_stack, env)
    if not axes:
        # condition over parameters only: 0 or 1
        return 1.0 if bool(evaluate_expr(region.cond, env)) else 0.0
    total = int(np.prod([a.size for a in axes]))
    if total == 0:
        return 0.0

    names = [r.loop_var for r in loop_stack]
    taken = 0
    # iterate over the outer axes' cartesian product in chunks of the
    # innermost axis (inner domains are the large ones in our kernels)
    if len(axes) == 1:
        arr = axes[0]
        for start in range(0, arr.size, _CHUNK):
            chunk = arr[start:start + _CHUNK]
            bind = dict(env)
            bind[names[0]] = chunk
            taken += int(np.count_nonzero(
                evaluate_expr_numpy(region.cond, bind)
            ))
    else:
        import itertools

        outer = itertools.product(*[a.tolist() for a in axes[:-1]])
        inner = axes[-1]
        for combo in outer:
            bind = dict(env)
            for nm, v in zip(names[:-1], combo):
                bind[nm] = np.int64(v)
            bind[names[-1]] = inner
            res = evaluate_expr_numpy(region.cond, bind)
            taken += int(np.count_nonzero(res))
    return taken / total


def warp_branch_fraction(region: Region, env: dict, loop_stack: list) -> float:
    """Fraction of *warps* that execute a branch arm.

    A warp issues an arm's instructions if any of its 32 lanes takes it, so
    the warp-level multiplicity is ``min(1, 32 f)`` of the arm's own
    thread-level fraction in the well-mixed case -- the serialization
    overhead divergence costs (paper Fig. 1).
    """
    f = exact_branch_fraction(region, env, loop_stack)
    return min(1.0, 32.0 * f)


_count_cache: dict = {}
"""Memo: (id-keyed kernel, env, warp_level) -> (eval@T=0, eval@T=1).

Counts are affine in the launched thread count T (only the ROOT region
scales with T; the parallel loop executes a fixed M iterations), so two
evaluations determine every launch configuration.  This is what makes
5,120-variant sweeps cheap: the expensive part (vectorized branch-domain
evaluation for e.g. ex14FJ's N^3 boundary predicate) runs once per
(kernel, size) instead of once per variant.
"""


def _env_key(env: dict) -> tuple:
    parts = []
    for k in sorted(env):
        v = env[k]
        if isinstance(v, np.ndarray):
            parts.append((k, v.dtype.str, v.shape, hash(v.tobytes())))
        else:
            parts.append((k, float(v)))
    return tuple(parts)


def _combine(at0: DynamicCounts, at1: DynamicCounts,
             threads: int) -> DynamicCounts:
    """Affine reconstruction: counts(T) = at0 + T * (at1 - at0)."""
    cats = set(at0.by_category) | set(at1.by_category)
    by_cat = {}
    for c in cats:
        a = at0.by_category.get(c, 0.0)
        b = at1.by_category.get(c, 0.0)
        by_cat[c] = a + threads * (b - a)
    traffic = tuple(
        (acc0, n0 + threads * (n1 - n0))
        for (acc0, n0), (_acc1, n1) in zip(at0.mem_traffic, at1.mem_traffic)
    )
    return DynamicCounts(
        by_category=by_cat,
        reg_ops=at0.reg_ops + threads * (at1.reg_ops - at0.reg_ops),
        mem_transactions=at0.mem_transactions
        + threads * (at1.mem_transactions - at0.mem_transactions),
        dram_bytes=at0.dram_bytes
        + threads * (at1.dram_bytes - at0.dram_bytes),
        total_threads=threads,
        mem_traffic=traffic,
    )


def validate_against_emulation(counts, emulated) -> dict:
    """Per-category relative deviation of closed-form counts from an
    emulator ground truth.

    ``counts`` is a :class:`DynamicCounts` (or a summed mapping of
    category -> count) from :func:`exact_counts`; ``emulated`` an
    :class:`~repro.sim.emulator.EmulationResult` from the same launch.
    With the vectorized fast path this comparison is cheap enough to run
    routinely (the ``suite`` experiment reports its maximum per member),
    turning the counting model's back-validation from a test-only
    assertion into a standing output.

    Returns ``{category: |emulated - exact| / max(exact, 1)}`` over the
    union of categories either side counted.
    """
    by_cat = getattr(counts, "by_category", counts)
    out = {}
    for cat in set(by_cat) | set(emulated.thread_counts):
        exact = float(by_cat.get(cat, 0.0))
        emu = float(emulated.thread_counts.get(cat, 0))
        out[cat] = abs(emu - exact) / max(exact, 1.0)
    return out


def exact_counts(
    ck: CompiledKernel,
    env: dict,
    tc: int,
    bc: int,
    warp_level: bool = False,
) -> DynamicCounts:
    """Exact dynamic counts for launching ``ck`` with (tc, bc) on ``env``.

    With ``warp_level=True`` branch arms use warp-issue multiplicities
    (divergence makes warps pay for both arms); category totals then
    represent thread-slots issued, i.e. ``counts / 32`` is the warp-issue
    count.
    """
    frac = warp_branch_fraction if warp_level else exact_branch_fraction
    key = (id(ck), _env_key(env), warp_level)
    cached = _count_cache.get(key)
    if cached is None or cached[0]() is not ck:
        import weakref

        at0 = evaluate_region_tree(
            ck.root_region, env, total_threads=0, branch_fraction=frac
        )
        at1 = evaluate_region_tree(
            ck.root_region, env, total_threads=1, branch_fraction=frac
        )
        cached = (weakref.ref(ck), at0, at1)
        if len(_count_cache) > 4096:
            _count_cache.clear()
        _count_cache[key] = cached
    return _combine(cached[1], cached[2], tc * bc)
