"""Vectorized grid-level fast path of the SIMT emulator.

The scalar path in :mod:`repro.sim.emulator` interprets one warp at a
time: every dynamic instruction costs one trip through the Python
dispatch loop, so a launch with W resident warps pays W trips per
instruction.  This module lifts the *same* reconvergence-stack algorithm
to a stacked register file of shape ``(n_warps, 32)``: while warps sit in
the same basic block, each instruction executes **once** as a NumPy op
over the whole stack, and the dispatch cost is amortized over all
resident warps (the move Prickle/Taichi-style compilers make -- execute
grids as stacked array operations, not per-lane interpretation).

Divergence is where warps stop being stackable -- and where the
equivalence argument matters, because divergence counters are a
paper-facing output.  The stacked executor handles it by *peeling at the
mask level*: at a conditional branch each warp row classifies itself as
uniformly-taken, uniformly-not-taken, or divergent.  If every row agrees
on one successor, the whole stack follows it.  Otherwise the affected
rows are peeled onto the branch's arm entries -- ``(target, taken_rows)``
and ``(fall, not_taken_rows)`` pushed on the shared reconvergence stack
with the branch block's immediate post-dominator as the rejoin point --
and re-merged at the join, exactly as the scalar path serializes arms
for one warp.  Rows with an empty mask simply do not enter a block (and
are not charged warp issues for it), so every per-warp counter comes out
identical to the scalar path:

- *thread counts* sum the same per-row active-lane masks;
- *warp issues* increment once per row that entered the block, which is
  precisely the set of warps the scalar path walks through it;
- *divergence stats* count rows whose taken/not-taken partition is
  mixed, the scalar path's per-warp test.

Memory effects are identical too: batched gathers/scatters flatten in
row-major (block, warp, lane) order, the order the scalar path issues
them in, so same-address conflicts resolve identically.  The one true
reordering the stack introduces -- interleaving *different dynamic
executions* of a global atomic across warps, whose float accumulation
order is observable in the last bits -- is handled by **deferred atomic
replay**: the stacked path buffers each ``red``'s operands and applies
them after the group in exactly the scalar path's order (block, barrier
segment, warp, program order).  Deferral is speculative but validated:
the run records which allocations the kernel loads/stores and which it
``red``s into, and if the two sets overlap (the kernel could have
observed a deferred add) the launch restores a pre-run memory snapshot
and re-executes on the scalar path.  Shared-memory atomics
(``red.shared``) skip speculation entirely and run the scalar path:
shared memory is read back by design, so their replay could never
validate.  No corpus kernel needs either fallback; they exist so the
fast path can never be wrong, only slower.

``bar.sync`` needs no scheduling here: rows reach a barrier in lockstep,
and the scalar path's "some warps finished while others wait" error is
reproduced by requiring equal per-row barrier counts within each block
at the end of the launch.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.codegen.compiler import CompiledKernel
from repro.ptx.cfg import EXIT
from repro.ptx.instruction import Imm, Instruction, ParamRef, Reg, SReg
from repro.ptx.isa import CmpOp, MemSpace, Opcode, SRegKind
from repro.sim.emulator import (
    _NP_DTYPE,
    WARP,
    EmulationError,
    EmulationResult,
    _KernelRun,
)
from repro.sim.memory import DeviceMemory


class _ReplaySpeculationFailed(Exception):
    """Internal: a deferred atomic's target was also loaded/stored."""


_FAULT_HOOK = None


def set_fault_hook(fn) -> None:
    """Install a test-only fault on the stacked arithmetic tail.

    ``fn(opcode, instruction, value) -> value`` intercepts the result of
    every generic arithmetic instruction on the vectorized path *only*
    (the scalar path and the structural opcodes -- loads, stores, SETP,
    CVT, MULWIDE -- are untouched), so a mutation-testing harness can
    inject a silent wrong-value defect and assert the differential
    fuzzer detects the scalar/vector disagreement.  Hooks must perturb
    values, never raise: an exception here would trigger the
    snapshot-restore scalar fallback and mask the mutation.  Pass
    ``None`` to uninstall.
    """
    global _FAULT_HOOK
    _FAULT_HOOK = fn


def has_global_atomics(ck: CompiledKernel) -> bool:
    """Whether the kernel issues global atomic reductions (the
    instruction whose cross-warp execution order is observable)."""
    return any(
        isinstance(it, Instruction)
        and it.opcode is Opcode.RED
        and it.space is MemSpace.GLOBAL
        for it in ck.ir.body
    )


def has_shared_atomics(ck: CompiledKernel) -> bool:
    """Whether the kernel issues shared-memory atomic reductions.

    Their accumulation order is as observable as the global case, but
    shared memory is read back by design, so deferred replay can never
    validate -- such kernels run the scalar path outright.
    """
    return any(
        isinstance(it, Instruction)
        and it.opcode is Opcode.RED
        and it.space is MemSpace.SHARED
        for it in ck.ir.body
    )


def run_stacked(
    ck: CompiledKernel,
    params: dict,
    tc: int,
    bc: int,
    memory: DeviceMemory,
    sanitizer=None,
) -> tuple[EmulationResult, str, int]:
    """Execute one launch on the stacked fast path.

    Returns ``(result, path, dispatch_steps)`` where ``path`` is the
    path that actually retired the launch (``grid``, or ``scalar`` after
    a failed atomic-replay speculation) and ``dispatch_steps`` the
    number of interpreter steps that retired ``result.total_issues``
    issue slots.
    """
    if has_shared_atomics(ck):
        # multiple dynamic executions of red.shared interleave across
        # warps instruction-major on the stack; the scalar order cannot
        # be reproduced by replay because shared memory is read back
        result = _KernelRun(ck, params, tc, bc, memory,
                            sanitizer=sanitizer).run()
        return result, "scalar", result.total_issues
    snap = memory.snapshot() if has_global_atomics(ck) else None
    run = _StackedRun(ck, params, tc, bc, memory, sanitizer=sanitizer)
    try:
        return run.run(), "grid", run.steps
    except _ReplaySpeculationFailed:
        pass
    except Exception:
        # an error raised while atomics were deferred may be an artifact
        # of the speculation (a stale read feeding an address); rerun on
        # the reference path, which reports the true behaviour
        if snap is None:
            raise
    memory.restore(snap)
    obs.instant("emu.retract", args={"kernel": ck.ir.name})
    obs.add("emu.retractions", kernel=ck.ir.name)
    if sanitizer is not None:
        # drop accesses observed by the abandoned speculative run
        sanitizer.begin_launch(ck.ir.name, bc, ck.ir.static_smem_bytes,
                               fresh=False)
    result = _KernelRun(ck, params, tc, bc, memory,
                        sanitizer=sanitizer).run()
    return result, "scalar", result.total_issues


class _StackedState:
    """Register file and lane state for a stack of warps."""

    def __init__(self, run: "_StackedRun", block_ids: np.ndarray,
                 warp_ids: np.ndarray):
        n = block_ids.size
        self.shape = (n, WARP)
        self.lane = np.arange(WARP, dtype=np.int32)
        self.block_ids = block_ids
        self.tid = warp_ids[:, None] * WARP + self.lane[None, :]
        self.run = run
        self.regs: dict[str, np.ndarray] = {}
        self.exited = np.zeros(self.shape, dtype=bool)
        self.exited[self.tid >= run.tc] = True
        self._sregs: dict[SRegKind, np.ndarray] = {}
        self._imms: dict[tuple, np.ndarray] = {}

    def read(self, op) -> np.ndarray:
        if isinstance(op, Reg):
            if op.name not in self.regs:
                raise EmulationError(f"read of undefined register {op.name}")
            return self.regs[op.name]
        if isinstance(op, Imm):
            key = (op.value, op.dtype)
            arr = self._imms.get(key)
            if arr is None:
                arr = np.full(self.shape, op.value,
                              dtype=_NP_DTYPE[op.dtype])
                self._imms[key] = arr
            return arr
        if isinstance(op, SReg):
            arr = self._sregs.get(op.kind)
            if arr is None:
                arr = self._sreg(op.kind)
                self._sregs[op.kind] = arr
            return arr
        raise EmulationError(f"cannot read operand {op!r}")

    def _sreg(self, kind: SRegKind) -> np.ndarray:
        run = self.run
        if kind is SRegKind.TID_X:
            return self.tid.astype(np.int32)
        if kind is SRegKind.NTID_X:
            return np.full(self.shape, run.tc, dtype=np.int32)
        if kind is SRegKind.CTAID_X:
            return np.broadcast_to(
                self.block_ids[:, None].astype(np.int32), self.shape
            )
        if kind is SRegKind.NCTAID_X:
            return np.full(self.shape, run.bc, dtype=np.int32)
        if kind is SRegKind.LANEID:
            return np.broadcast_to(self.lane[None, :], self.shape)
        raise EmulationError(f"special register {kind} not modelled")

    def write(self, reg: Reg, value: np.ndarray, mask: np.ndarray) -> None:
        dt = _NP_DTYPE[reg.dtype]
        dst = self.regs.get(reg.name)
        if dst is None:
            dst = self.regs[reg.name] = np.zeros(self.shape, dtype=dt)
        value = np.broadcast_to(value, self.shape).astype(dt, copy=False)
        np.copyto(dst, value, where=mask, casting="no")


class _StackedRun(_KernelRun):
    """One kernel launch executed as a single stacked warp group.

    Reuses :class:`_KernelRun`'s setup (CFG, post-dominators, parameter
    resolution) and arithmetic semantics; only the driver loop differs.
    """

    def __init__(self, ck, params, tc, bc, memory, sanitizer=None):
        super().__init__(ck, params, tc, bc, memory, sanitizer=sanitizer)
        self.steps = 0
        self._meta: dict[str, tuple] = {}
        self._ldst_allocs: set[str] = set()
        self._red_allocs: set[str] = set()
        self._state = None
        self._bars = None

    def _block_meta(self, name: str) -> tuple:
        """Cached per-block counting aggregates.

        ``exit``/``ret``/``bra`` all terminate a basic block, so the
        active-lane (region) mask is constant across a block's
        instructions and the per-issue counting the scalar path does can
        be applied as one per-block aggregate: issues per category,
        instruction count, and summed register-operand traffic.
        """
        meta = self._meta.get(name)
        if meta is None:
            instrs = self.cfg.blocks[name].instructions
            cats: dict = {}
            regops_sum = 0
            for ins in instrs:
                cats[ins.category] = cats.get(ins.category, 0) + 1
                regops_sum += ins.register_operand_count()
            meta = (instrs, tuple(cats.items()), regops_sum, len(instrs))
            self._meta[name] = meta
        return meta

    # -- whole-launch driver -------------------------------------------

    def run(self, max_issues_per_warp: int = 5_000_000) -> EmulationResult:
        wpb = -(-self.tc // WARP)
        rows = [(b, w) for b in range(self.bc) for w in range(wpb)]
        self._run_group(rows, max_issues_per_warp)
        return self.result

    # -- stacked SIMT execution ----------------------------------------

    def _run_group(self, rows, max_issues: int) -> None:
        block_ids = np.array([b for b, _ in rows], dtype=np.int64)
        warp_ids = np.array([w for _, w in rows], dtype=np.int64)
        state = _StackedState(self, block_ids, warp_ids)
        n = len(rows)

        # one shared-memory plane per block
        smem = (
            np.zeros((self.bc, self.smem_bytes), dtype=np.uint8)
            if self.smem_bytes else None
        )
        slot2d = np.broadcast_to(block_ids[:, None], state.shape)

        issues = np.zeros(n, dtype=np.int64)
        bars = np.zeros(n, dtype=np.int64)
        self._state, self._bars = state, bars  # for sanitizer recording
        red_events: list = []
        red_seq = 0
        full = ~state.exited
        if not full.any():
            return
        # stack of (block, mask, reconv) -- identical discipline to the
        # scalar path, with (n, 32) masks carrying per-row lane sets
        stack: list[tuple[str, np.ndarray, str | None]] = [
            (self.entry, full.copy(), None)
        ]
        res = self.result
        while stack:
            block, mask, reconv = stack.pop()
            while True:
                mask = mask & ~state.exited
                enter = mask.any(axis=1)
                k = int(enter.sum())
                if not k:
                    break
                instrs, cat_counts, regops_sum, n_instr = \
                    self._block_meta(block)
                issues[enter] += n_instr
                self.steps += n_instr
                if issues[enter].max() > max_issues:
                    raise EmulationError(
                        f"warp exceeded {max_issues} issues in "
                        f"{self.ck.name} (runaway loop?)"
                    )
                # per-block aggregate of the scalar path's per-issue
                # counting: the region mask is constant within a block
                # (exits always terminate one), so every instruction
                # counts the same k warps / `total` lanes
                lanes = mask.sum(axis=1)
                total = int(lanes.sum())
                npartial = int(((lanes > 0) & (lanes < WARP)).sum())
                for cat, cnt in cat_counts:
                    res.warp_issues[cat] += k * cnt
                    res.thread_counts[cat] += total * cnt
                res.total_issues += k * n_instr
                res.reg_ops += regops_sum * total
                res.partial_issues += npartial * n_instr
                any_lanes = total > 0
                branch_taken = None
                for ins in instrs:
                    em = mask
                    has = any_lanes
                    if ins.pred is not None:
                        pv = state.read(ins.pred).astype(bool)
                        em = em & (~pv if ins.pred_negated else pv)
                        has = bool(em.any())
                    op = ins.opcode
                    if op is Opcode.BRA:
                        branch_taken = em if ins.pred is not None else em.copy()
                        continue
                    if op is Opcode.BAR:
                        bars[enter] += 1
                        continue
                    if op in (Opcode.EXIT, Opcode.RET):
                        if has:
                            state.exited |= em
                        continue
                    if not has:
                        continue
                    if op is Opcode.RED and ins.space is MemSpace.GLOBAL:
                        # deferred replay: buffer operands per active
                        # row; applied in scalar order after the group
                        mem, vop = ins.srcs
                        addrs = (
                            state.read(mem.base).astype(np.int64)
                            + mem.offset
                        )
                        vals = state.read(vop)
                        emf = em.ravel()
                        target = self.memory.allocation_at(
                            int(addrs.ravel()[int(np.argmax(emf))])
                        )
                        self._red_allocs.add(
                            target.name if target else "?"
                        )
                        for r in np.flatnonzero(em.any(axis=1)):
                            red_events.append((
                                (int(block_ids[r]), int(bars[r]), int(r),
                                 red_seq),
                                addrs[r].copy(), em[r].copy(),
                                vals[r].copy(), ins.dtype,
                            ))
                            red_seq += 1
                        continue
                    self._execute_stacked(state, ins, em, smem, slot2d)

                # decide successor(s), per row
                mask = mask & ~state.exited
                alive = mask.any(axis=1)
                if not alive.any():
                    break
                term = self.cfg.blocks[block].terminator
                if term is None or term.opcode in (Opcode.EXIT, Opcode.RET):
                    nxt = self._next_of[block] if term is None else None
                    if term is None and nxt is not None:
                        block = nxt
                        if block == reconv:
                            break
                        continue
                    break
                target = self.cfg.resolve_label(term.branch_target)
                fall = self._next_of[block]
                if term.pred is None:
                    block = target
                    if block == reconv:
                        break
                    continue
                taken = branch_taken & mask
                ntaken = mask & ~taken
                res.branch_count += int(alive.sum())
                if not ntaken.any():
                    block = target
                elif not taken.any():
                    if fall is None:
                        break
                    block = fall
                else:
                    # at least one row goes each way (possibly split
                    # within a row): peel onto arm entries, rejoin at
                    # the branch block's immediate post-dominator
                    divergent = taken.any(axis=1) & ntaken.any(axis=1)
                    res.divergent_branches += int(divergent.sum())
                    ipd = self.ipdom.get(block, EXIT)
                    if ipd != EXIT and ipd != reconv:
                        stack.append((ipd, mask.copy(), reconv))
                    # an arm that starts AT the rejoin has no work of
                    # its own: its rows wait there for the other arm
                    if fall is not None and fall != ipd:
                        stack.append((fall, ntaken, ipd))
                    if target != ipd:
                        stack.append((target, taken, ipd))
                    break
                if block == reconv or block == EXIT:
                    break

        # validate the speculation, then replay deferred atomics in the
        # scalar path's order: block by block, barrier segment by
        # segment, warp by warp, program order
        if red_events:
            if self._red_allocs & self._ldst_allocs:
                raise _ReplaySpeculationFailed(
                    f"{sorted(self._red_allocs & self._ldst_allocs)}"
                )
            red_events.sort(key=lambda ev: ev[0])
            for _key, addrs, em_row, vals, dtype in red_events:
                self.memory.scatter_add(addrs, em_row, vals, dtype)

        # scalar-path barrier protocol: all warps of a block must reach
        # every barrier together -- equal per-row counts, per block
        if bars.any():
            for b in range(self.bc):
                counts = bars[block_ids == b]
                if counts.size and counts.min() != counts.max():
                    raise EmulationError(
                        "divergent bar.sync: some warps finished while "
                        "others wait at a barrier"
                    )

    # -- instruction semantics -----------------------------------------

    def _execute_stacked(self, state: _StackedState, ins: Instruction,
                         em: np.ndarray, smem, slot2d) -> None:
        op = ins.opcode

        if op is Opcode.LD:
            src = ins.srcs[0]
            if isinstance(src, ParamRef):
                value = np.broadcast_to(
                    self.param_values[src.name], state.shape
                )
                state.write(ins.dst, value, em)
                return
            addrs = state.read(src.base).astype(np.int64) + src.offset
            if ins.space is MemSpace.SHARED:
                val = self._smem_gather_stacked(smem, slot2d, addrs, em,
                                                ins.dtype)
            else:
                val = self.memory.gather(addrs, em, ins.dtype)
                self._ldst_allocs.add(self.memory.last_target)
            state.write(ins.dst, val, em)
            return

        if op in (Opcode.ST, Opcode.RED):
            mem, vop = ins.srcs
            addrs = state.read(mem.base).astype(np.int64) + mem.offset
            vals = state.read(vop)
            if ins.space is MemSpace.SHARED:
                self._smem_scatter_stacked(smem, slot2d, addrs, em, vals,
                                           ins.dtype,
                                           add=op is Opcode.RED)
            else:  # global RED is deferred by the driver loop
                self.memory.scatter(addrs, em, vals, ins.dtype)
                self._ldst_allocs.add(self.memory.last_target)
            return

        if op is Opcode.MOV:
            state.write(ins.dst, state.read(ins.srcs[0]), em)
            return

        if op is Opcode.SETP:
            a = state.read(ins.srcs[0])
            b = state.read(ins.srcs[1])
            res = {
                CmpOp.LT: a < b, CmpOp.LE: a <= b, CmpOp.GT: a > b,
                CmpOp.GE: a >= b, CmpOp.EQ: a == b, CmpOp.NE: a != b,
            }[ins.cmp]
            state.write(ins.dst, res, em)
            return

        if op is Opcode.SELP:
            a, b, p = (state.read(s) for s in ins.srcs)
            state.write(ins.dst, np.where(p.astype(bool), a, b), em)
            return

        if op is Opcode.CVT:
            v = state.read(ins.srcs[0])
            state.write(ins.dst, v.astype(_NP_DTYPE[ins.dtype]), em)
            return

        if op is Opcode.MULWIDE:
            a = state.read(ins.srcs[0]).astype(np.int64)
            b = state.read(ins.srcs[1]).astype(np.int64)
            state.write(ins.dst, a * b, em)
            return

        srcs = [state.read(s) for s in ins.srcs]
        dt = _NP_DTYPE[ins.dtype] if ins.dtype else None
        with np.errstate(all="ignore"):
            val = self._arith(op, ins, srcs, dt)
        if _FAULT_HOOK is not None:
            val = _FAULT_HOOK(op, ins, val)
        state.write(ins.dst, val, em)

    # -- shared memory -------------------------------------------------

    def _sanitize_stacked(self, kind, slot2d, addrs, em,
                          nbytes: int) -> None:
        rows, _lanes = np.nonzero(em)  # row-major, matches addrs[em]
        base = addrs[em]
        bytes_idx = (base[:, None] + np.arange(nbytes)).ravel()
        tids = np.repeat(self._state.tid[em], nbytes).astype(np.int64)
        blocks = np.repeat(slot2d[em], nbytes).astype(np.int64)
        phases = np.repeat(self._bars[rows], nbytes).astype(np.int64)
        self.sanitizer.record(kind, blocks, bytes_idx, tids, phases)

    def _smem_gather_stacked(self, smem, slot2d, addrs, em,
                             dtype) -> np.ndarray:
        np_dt = _NP_DTYPE[dtype]
        out = np.zeros(addrs.shape, dtype=np_dt)
        if smem is None:
            raise EmulationError("shared access without shared memory")
        view = smem.view(np_dt)
        idx = (addrs[em] // dtype.nbytes).astype(np.int64)
        if (idx < 0).any() or (idx >= view.shape[1]).any():
            raise EmulationError("shared memory access out of bounds")
        if self.sanitizer is not None:
            self._sanitize_stacked("ld", slot2d, addrs, em, dtype.nbytes)
        out[em] = view[slot2d[em], idx]
        return out

    def _smem_scatter_stacked(self, smem, slot2d, addrs, em, vals, dtype,
                              add: bool) -> None:
        np_dt = _NP_DTYPE[dtype]
        if smem is None:
            raise EmulationError("shared access without shared memory")
        view = smem.view(np_dt)
        idx = (addrs[em] // dtype.nbytes).astype(np.int64)
        if (idx < 0).any() or (idx >= view.shape[1]).any():
            raise EmulationError("shared memory store out of bounds")
        if self.sanitizer is not None:
            self._sanitize_stacked("red" if add else "st", slot2d, addrs,
                                   em, dtype.nbytes)
        slots = slot2d[em]
        if add:
            np.add.at(view, (slots, idx), vals[em].astype(np_dt))
        else:
            view[slots, idx] = vals[em].astype(np_dt)
