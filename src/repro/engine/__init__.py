"""Parallel sweep engine with a persistent result cache.

The paper's workload is exhaustive measurement of thousands of code
variants per kernel x GPU x input size.  This package turns that from a
serial, recompute-everything loop into a staged pipeline: enumerate ->
probe cache -> shard -> execute under supervision (checkpointing each
completed shard) -> reassemble in canonical order.  See
:mod:`repro.engine.engine` for the stage-by-stage description,
:mod:`repro.engine.resilience` for the failure model (retry/backoff,
poison-shard bisection, quarantine), and :mod:`repro.engine.chaos` for
the deterministic fault-injection harness that tests it.

Typical use::

    from repro.engine import CacheStore, SweepEngine

    engine = SweepEngine(jobs=4, cache=CacheStore("~/.cache/repro-sweeps"))
    measurements = engine.sweep(benchmark, gpu, space, sizes)

Everything higher in the stack (``Autotuner.sweep``, the exhaustive and
static search strategies, ``repro.experiments.runner --jobs/--cache``)
routes through :class:`SweepEngine`.
"""

from repro.engine.cache import (
    CACHE_SCHEMA_VERSION,
    CacheStore,
    context_key,
    default_cache_dir,
    measurement_key,
    point_key,
    stable_hash,
)
from repro.engine.engine import SweepEngine, SweepStats
from repro.engine.pool import PoolExecutor, evaluate_shard, resolve_jobs
from repro.engine.progress import NULL_PROGRESS, ProgressReporter, StderrProgress
from repro.engine.resilience import (
    DEFAULT_POLICY,
    AttemptRecord,
    ExecutorReport,
    RetryPolicy,
    ShardFailure,
)
from repro.engine.work import (
    WorkItem,
    build_pairs,
    build_work_list,
    compile_key,
    shard_work,
    split_shard,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "AttemptRecord",
    "CacheStore",
    "DEFAULT_POLICY",
    "ExecutorReport",
    "NULL_PROGRESS",
    "PoolExecutor",
    "ProgressReporter",
    "RetryPolicy",
    "ShardFailure",
    "StderrProgress",
    "SweepEngine",
    "SweepStats",
    "WorkItem",
    "build_pairs",
    "build_work_list",
    "compile_key",
    "context_key",
    "default_cache_dir",
    "evaluate_shard",
    "measurement_key",
    "point_key",
    "resolve_jobs",
    "shard_work",
    "split_shard",
    "stable_hash",
]
