"""Retry policy, backoff, and failure records for supervised execution.

The sweep engine's unit of fallible work is a *shard* (a list of
:class:`~repro.engine.work.WorkItem` measured together in one worker).
This module defines the policy knobs the supervisor in
:mod:`repro.engine.pool` runs under and the structured records it leaves
behind:

- :class:`RetryPolicy` -- bounded retries with exponential backoff and
  *deterministic* jitter (hash-derived, never ``random``), an optional
  per-shard wall-clock deadline, and the supervisor's poll interval.
- :class:`AttemptRecord` -- one failed attempt of one shard: which
  attempt, how the worker fared (``raised`` / ``timeout`` /
  ``worker-died``), the error text, and the time spent.
- :class:`ShardFailure` -- the quarantine record for a work item that
  exhausted its retry budget even after poison-shard bisection isolated
  it.  A sweep never aborts on one: the item's result slot stays
  ``None`` and the record tells you exactly what happened.
- :class:`ExecutorReport` -- per-run accounting (retries, recoveries,
  quarantines, the full fault event log, and whether the parallel path
  degraded to inline execution).

Everything here is deliberately deterministic: given the same faults,
the same retries happen after the same backoffs, so chaos tests can
assert exact accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cache import stable_hash


def _unit_roll(*parts) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from hashable parts."""
    return int(stable_hash(parts)[:12], 16) / float(16 ** 12)


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a failing shard.

    ``max_attempts`` bounds tries *per bisection generation*: a shard
    that exhausts it is split in two (isolating a poison item), and each
    half gets a fresh budget; a single item that exhausts it is
    quarantined as a :class:`ShardFailure`.  ``shard_timeout_s`` is the
    per-shard wall-clock deadline (``None`` disables deadlines -- the
    default, since a legitimate cold shard of a full sweep can run
    long).  Backoff before retry ``k`` (1-based) is
    ``min(backoff_max_s, backoff_base_s * backoff_multiplier**(k-1))``
    stretched by a deterministic jitter fraction in ``[0, jitter]``
    derived from the shard's item indices -- no two shards thundering in
    lockstep, yet byte-reproducible.
    """

    max_attempts: int = 3
    shard_timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    poll_interval_s: float = 0.02

    def backoff(self, attempt: int, key) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based) of
        the shard identified by ``key``."""
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
        )
        return base * (1.0 + self.jitter * _unit_roll("backoff", key, attempt))


DEFAULT_POLICY = RetryPolicy()


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt of one shard."""

    attempt: int
    """0-based attempt number within the shard's bisection generation."""
    fate: str
    """``"raised"`` (exception in ``evaluate_shard``), ``"timeout"``
    (deadline exceeded, worker killed), or ``"worker-died"`` (the worker
    process exited -- OOM-kill, ``os._exit`` -- without reporting)."""
    error: str | None
    elapsed_s: float


@dataclass(frozen=True)
class ShardFailure:
    """A quarantined work item: it failed its retry budget even after
    bisection isolated it from its original shard."""

    indices: tuple
    """Work-item indices quarantined (a single index after bisection)."""
    attempts: tuple
    """:class:`AttemptRecord` history of the final, isolated shard."""
    bisected_from: int
    """Size of the original shard the item was isolated out of."""


@dataclass
class ExecutorReport:
    """What one :meth:`PoolExecutor.run` did beyond returning results."""

    retries: int = 0
    """Shard re-submissions after a failure (incl. bisection halves)."""
    recovered: int = 0
    """Shards that ultimately succeeded after at least one failure (or
    after being split out of a failing parent shard)."""
    failures: list = field(default_factory=list)
    """:class:`ShardFailure` quarantine records."""
    events: list = field(default_factory=list)
    """Every observed fault: ``(work-item indices, AttemptRecord)``."""
    degraded: bool = False
    """Whether the parallel path failed entirely and the run fell back
    to inline execution."""
