"""Supervised process execution of measurement shards.

Each task is self-contained -- benchmark, GPU spec, model parameters,
protocol, and a shard of :class:`~repro.engine.work.WorkItem` -- so a
worker process rebuilds its own :class:`~repro.autotune.measure.Measurer`
and compiles each needed module exactly once (shards are grouped by
compile key upstream).  Workers return ``(item index, measurement)``
pairs; ordering is restored by the engine, never by arrival time.

Unlike a bare ``Pool.imap_unordered``, execution here is *supervised*
(see :mod:`repro.engine.resilience`): every shard runs in a dedicated
worker process with its own result pipe, so the supervisor attributes
failures exactly --

- a worker that dies mid-shard (OOM-kill, ``os._exit``) surfaces as EOF
  on its pipe and is respawned; the shard is retried with backoff;
- a shard that outlives the policy deadline has its worker killed and
  is retried likewise;
- an exception inside ``evaluate_shard`` travels back as a structured
  error and is retried;
- a shard that exhausts its retry budget is *bisected* -- split in two
  to isolate the poison item, each half with a fresh budget -- until a
  single offending item is quarantined as a
  :class:`~repro.engine.resilience.ShardFailure` instead of aborting
  the sweep;
- if the parallel path fails outright (workers cannot be spawned at
  all), the run degrades to inline execution with a warning.

Workers persist across ``run`` calls -- a search-heavy run (fig6)
issues one small batch per tuning step, and re-forking workers for each
would dominate the work.  ``close`` shuts them down cleanly (sentinel +
``join``); ``terminate`` is reserved for the fault paths.  With
``jobs=1`` (or a single shard) everything runs inline in the calling
process: no workers, no pickling, identical results -- but the same
retry/bisection supervision.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import deque
from multiprocessing.connection import wait as _wait_ready

from repro import obs
from repro.autotune.measure import Measurer
from repro.engine import chaos
from repro.engine.resilience import (
    DEFAULT_POLICY,
    AttemptRecord,
    ExecutorReport,
    RetryPolicy,
    ShardFailure,
)
from repro.engine.work import split_shard
from repro.obs.trace import child_id


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` means one worker per CPU; negatives are an error."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def shard_indices(shard) -> tuple:
    """The work-item indices of a shard (its identity in fault records
    and chaos rolls)."""
    return tuple(item.index for item in shard)


def evaluate_shard(task, attempt: int = 0) -> list:
    """Measure one shard; the entry point both workers and the inline
    path run.

    ``task[0]`` is a registry name whenever the benchmark is registered
    (its dataclass holds closures, which do not pickle), so workers
    resolve it locally; unregistered benchmarks arrive as objects.
    ``attempt`` is the supervisor's 0-based retry count, consulted only
    by the chaos harness.
    """
    benchmark, gpu, params, repetitions, trial_index, shard = task
    chaos.maybe_inject(shard_indices(shard), attempt)
    if isinstance(benchmark, str):
        from repro.kernels import get_benchmark

        benchmark = get_benchmark(benchmark)
    measurer = Measurer(
        benchmark, gpu, params=params,
        repetitions=repetitions, trial_index=trial_index,
    )
    if obs.tracer is not None:
        # one measurement span per work item, parented under the ambient
        # attempt span -- the item index keys the (deterministic) ID, so
        # a worker-side span equals the inline-path span exactly
        measurements = []
        for item in shard:
            with obs.span("measure", key=item.index,
                          args={"size": item.size}):
                measurements.extend(
                    measurer.measure_many([(item.config, item.size)])
                )
    else:
        measurements = measurer.measure_many(
            [(item.config, item.size) for item in shard]
        )
    return [
        (item.index, m) for item, m in zip(shard, measurements)
    ]


def _worker_main(conn) -> None:
    """Worker loop: receive ``(tid, attempt, task, trace_parent)``, send
    back ``(tid, "ok", pairs, spans)`` or ``(tid, "error", message,
    spans)``; a ``None`` message (or a closed pipe) is the
    clean-shutdown sentinel.

    ``trace_parent`` is the supervisor's attempt-span ID when tracing is
    enabled (else ``None``): the worker captures its measurement spans
    and chaos instants under it and ships the buffer with the reply --
    on *both* outcomes, so a chaos-raise's instant survives.  A killed
    worker never replies; its buffer dies with it, which is why
    determinism guarantees exclude instants.
    """
    chaos.mark_worker()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        tid, attempt, task, trace_parent = msg
        cap = (obs.begin_capture(trace_parent)
               if trace_parent is not None else None)
        try:
            pairs = evaluate_shard(task, attempt)
        except BaseException as e:  # report, don't die: the pipe is the contract
            kind, payload = "error", f"{type(e).__name__}: {e}"
        else:
            kind, payload = "ok", pairs
        buffer = (obs.end_capture(cap)
                  if trace_parent is not None else None)
        try:
            conn.send((tid, kind, payload, buffer))
        except (OSError, BrokenPipeError):
            break
    try:
        conn.close()
    except OSError:
        pass


class _WorkerHandle:
    """One supervised worker process and its result pipe."""

    __slots__ = ("proc", "conn", "tid", "started_at")

    def __init__(self):
        parent_conn, child_conn = multiprocessing.Pipe()
        self.proc = multiprocessing.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
        )
        self.proc.start()
        # Drop our copy of the child end: a dead worker must surface as
        # EOF on `conn`, which requires no live handle to its peer here.
        child_conn.close()
        self.conn = parent_conn
        self.tid = None
        self.started_at = 0.0


class _TaskState:
    """A shard task's supervision state across attempts."""

    __slots__ = (
        "tid", "task", "attempts", "eligible_at", "origin",
        "span_parent", "shard_span_id", "span_start_wall",
        "span_start_perf", "attempt_start_wall",
    )

    def __init__(self, tid, task, origin=None, span_parent=""):
        self.tid = tid
        self.task = task
        self.attempts = []  # AttemptRecord per failed attempt
        self.eligible_at = 0.0
        self.origin = origin if origin is not None else len(task[5])
        self.span_parent = span_parent
        # the shard span's deterministic identity: a pure function of
        # the parent span and the item indices, so jobs=1 and jobs=N
        # produce the same tree; bisection children parent under the
        # shard they split from
        self.shard_span_id = (
            child_id(span_parent, "shard", list(shard_indices(task[5])))
            if obs.tracer is not None else ""
        )
        self.span_start_wall = 0.0
        self.span_start_perf = 0.0
        self.attempt_start_wall = 0.0

    @property
    def shard(self):
        return self.task[5]

    def attempt_span_id(self) -> str | None:
        """The deterministic ID of the *next* attempt's span (``None``
        when tracing is off) -- sent to workers as their capture parent
        and used inline as the ambient parent."""
        if obs.tracer is None:
            return None
        return child_id(self.shard_span_id, "attempt", len(self.attempts))

    def mark_dispatch(self) -> None:
        """Stamp wall/perf clocks as an attempt starts executing."""
        if obs.tracer is None:
            return
        self.attempt_start_wall = time.time()
        if self.span_start_wall == 0.0:
            self.span_start_wall = self.attempt_start_wall
            self.span_start_perf = time.perf_counter()


class _ParallelPathFailed(Exception):
    """No worker could be spawned; carries the unfinished task states."""

    def __init__(self, remaining, cause):
        super().__init__(str(cause))
        self.remaining = remaining
        self.cause = cause


class PoolExecutor:
    """Runs shard tasks across persistent, supervised worker processes.

    ``policy`` is the :class:`~repro.engine.resilience.RetryPolicy`
    governing deadlines, retries, backoff, and bisection; the default
    retries 3 times with no deadline.  Workers are created on first
    parallel use and reused across calls; ``close`` releases them (the
    executor remains usable afterwards -- new workers spawn on demand).
    ``last_report`` holds the :class:`ExecutorReport` of the most recent
    ``run``.
    """

    def __init__(self, jobs: int | None = None,
                 policy: RetryPolicy | None = None):
        self.jobs = resolve_jobs(jobs)
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._workers: list = []
        self._next_tid = 0
        self.last_report: ExecutorReport | None = None

    # -- public entry point --------------------------------------------------

    def run(self, tasks, progress=None, on_shard_done=None) -> list:
        """Evaluate every task, returning all ``(index, measurement)``
        pairs.

        ``on_shard_done(task, pairs)`` fires as each shard completes --
        the engine's incremental-checkpoint hook -- followed by
        ``progress.advance``.  Faults are retried/quarantined per the
        policy; accounting lands in ``self.last_report``.
        """
        tasks = list(tasks)
        report = ExecutorReport()
        self.last_report = report
        out: list = []

        def emit(task, pairs):
            out.extend(pairs)
            if on_shard_done is not None:
                on_shard_done(task, pairs)
            if progress is not None:
                progress.advance(len(pairs))

        span_parent = obs.current_parent_id()
        states = [
            self._make_state(task, span_parent=span_parent)
            for task in tasks
        ]
        if self.jobs <= 1 or len(tasks) <= 1:
            self._run_states_inline(states, emit, report)
            return out
        try:
            self._run_parallel(states, emit, report)
        except _ParallelPathFailed as fail:
            warnings.warn(
                f"parallel sweep path unavailable ({fail.cause!r}); "
                "degrading to inline execution",
                RuntimeWarning, stacklevel=2,
            )
            report.degraded = True
            self._run_states_inline(fail.remaining, emit, report)
        return out

    # -- shared supervision logic --------------------------------------------

    def _make_state(self, task, origin=None, span_parent="") -> _TaskState:
        state = _TaskState(
            self._next_tid, task, origin=origin, span_parent=span_parent,
        )
        self._next_tid += 1
        return state

    def _record_attempt(self, state, fate, elapsed, error=None) -> None:
        """Record this attempt's span (deterministic ID; the fate and
        error ride in args only, since a chaos kill surfaces as
        ``raised`` inline but ``worker-died`` in parallel).  Must run
        *before* the failure record is appended so the attempt number
        matches :meth:`_TaskState.attempt_span_id`."""
        if obs.tracer is None:
            return
        n = len(state.attempts)
        args = {"fate": fate}
        if error is not None:
            args["error"] = error
        obs.record_span(
            child_id(state.shard_span_id, "attempt", n),
            state.shard_span_id, "attempt", n,
            state.attempt_start_wall, elapsed, args=args,
        )
        if fate != "ok":
            obs.instant(
                f"fault.{fate}",
                parent_id=child_id(state.shard_span_id, "attempt", n),
                args={"shard": list(shard_indices(state.shard))},
            )
            obs.add("pool.faults", fate=fate)

    def _record_shard(self, state, outcome) -> None:
        """Close the shard's span when supervision of it ends (success,
        bisection into halves, or quarantine)."""
        if obs.tracer is None:
            return
        obs.record_span(
            state.shard_span_id, state.span_parent, "shard",
            list(shard_indices(state.shard)),
            state.span_start_wall,
            time.perf_counter() - state.span_start_perf,
            args={"outcome": outcome, "items": len(state.shard)},
        )

    def _handle_success(self, state, pairs, emit, report) -> None:
        self._record_attempt(
            state, "ok", time.time() - state.attempt_start_wall,
        )
        self._record_shard(state, "ok")
        if state.attempts or state.origin > len(state.shard):
            report.recovered += 1
            obs.add("pool.recovered_shards")
        emit(state.task, pairs)

    def _handle_failure(self, state, fate, error, elapsed, report,
                        now) -> list:
        """Record one failed attempt; return the task states to requeue
        (the same state on retry, two halves on bisection, none on
        quarantine)."""
        self._record_attempt(state, fate, elapsed, error=error)
        rec = AttemptRecord(
            attempt=len(state.attempts), fate=fate, error=error,
            elapsed_s=elapsed,
        )
        state.attempts.append(rec)
        report.events.append((shard_indices(state.shard), rec))
        if len(state.attempts) < self.policy.max_attempts:
            report.retries += 1
            obs.add("pool.retries")
            state.eligible_at = now + self.policy.backoff(
                len(state.attempts), shard_indices(state.shard)
            )
            return [state]
        if len(state.shard) > 1:
            # poison-shard bisection: isolate the offending item
            self._record_shard(state, "bisected")
            obs.add("pool.bisections")
            children = []
            for half in split_shard(state.shard):
                child = self._make_state(
                    state.task[:5] + (half,), origin=state.origin,
                    span_parent=state.shard_span_id,
                )
                child.eligible_at = now + self.policy.backoff(
                    len(state.attempts), shard_indices(half)
                )
                children.append(child)
            report.retries += len(children)
            obs.add("pool.retries", len(children))
            return children
        self._record_shard(state, "quarantined")
        obs.add("pool.quarantined_items", len(state.shard))
        report.failures.append(ShardFailure(
            indices=shard_indices(state.shard),
            attempts=tuple(state.attempts),
            bisected_from=state.origin,
        ))
        return []

    # -- inline path ---------------------------------------------------------

    def _run_states_inline(self, states, emit, report) -> None:
        queue = deque(sorted(states, key=lambda s: s.tid))
        while queue:
            state = queue.popleft()
            now = time.monotonic()
            if state.eligible_at > now:
                time.sleep(state.eligible_at - now)
            state.mark_dispatch()
            t0 = time.monotonic()
            try:
                # the ambient attempt ID makes inline measure spans
                # parent exactly like worker-captured ones
                with obs.attach(state.attempt_span_id() or ""):
                    pairs = evaluate_shard(state.task, len(state.attempts))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as e:
                queue.extend(self._handle_failure(
                    state, "raised", f"{type(e).__name__}: {e}",
                    time.monotonic() - t0, report, time.monotonic(),
                ))
            else:
                self._handle_success(state, pairs, emit, report)

    # -- parallel path -------------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        return _WorkerHandle()

    def _discard_worker(self, worker, kill: bool = False) -> None:
        """Remove a worker; ``kill`` terminates it (the fault path),
        otherwise it is already dead and only needs reaping."""
        if worker in self._workers:
            self._workers.remove(worker)
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _run_parallel(self, states, emit, report) -> None:
        pending = list(states)   # waiting (or backing off)
        inflight: dict = {}      # tid -> _TaskState
        try:
            while pending or inflight:
                now = time.monotonic()
                # reap workers that died while idle
                for w in list(self._workers):
                    if w.tid is None and not w.proc.is_alive():
                        self._discard_worker(w)
                # top up the fleet while there is assignable work
                eligible = sorted(
                    (s for s in pending if s.eligible_at <= now),
                    key=lambda s: s.tid,
                )
                idle = [w for w in self._workers if w.tid is None]
                spawn = min(
                    max(0, len(eligible) - len(idle)),
                    self.jobs - len(self._workers),
                )
                for _ in range(spawn):
                    try:
                        self._workers.append(self._spawn_worker())
                        obs.add("pool.worker_spawns")
                    except OSError as e:
                        if not self._workers and not inflight:
                            raise _ParallelPathFailed(
                                pending, e
                            ) from e
                        break
                # assign eligible tasks to idle workers, tid order
                idle = [w for w in self._workers if w.tid is None]
                for worker, state in zip(idle, eligible):
                    try:
                        worker.conn.send((
                            state.tid, len(state.attempts), state.task,
                            state.attempt_span_id(),
                        ))
                    except (OSError, ValueError):
                        self._discard_worker(worker)
                        continue
                    worker.tid = state.tid
                    worker.started_at = now
                    state.mark_dispatch()
                    inflight[state.tid] = state
                    pending.remove(state)
                obs.set_gauge(
                    "pool.queue_depth", len(pending) + len(inflight)
                )

                busy = {
                    w.conn: w for w in self._workers if w.tid is not None
                }
                if not busy:
                    if pending:
                        wake = min(s.eligible_at for s in pending)
                        time.sleep(min(
                            max(wake - time.monotonic(), 0.001),
                            self.policy.poll_interval_s,
                        ))
                        continue
                    continue  # inflight empty too -> loop exits
                for conn in _wait_ready(
                    list(busy), timeout=self.policy.poll_interval_s
                ):
                    worker = busy[conn]
                    now = time.monotonic()
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        # worker death (OOM-kill / os._exit / crash);
                        # its capture buffer died with it
                        state = inflight.pop(worker.tid)
                        elapsed = now - worker.started_at
                        self._discard_worker(worker)
                        obs.add("pool.worker_deaths")
                        pending.extend(self._handle_failure(
                            state, "worker-died",
                            f"worker exited with code "
                            f"{worker.proc.exitcode}",
                            elapsed, report, now,
                        ))
                        continue
                    tid, kind, payload, buffer = msg
                    obs.absorb(buffer)
                    state = inflight.pop(tid)
                    worker.tid = None
                    if kind == "ok":
                        self._handle_success(state, payload, emit, report)
                    else:
                        pending.extend(self._handle_failure(
                            state, "raised", payload,
                            now - worker.started_at, report, now,
                        ))
                # per-shard deadlines: kill and retry hung workers
                if self.policy.shard_timeout_s is not None:
                    now = time.monotonic()
                    for worker in list(self._workers):
                        if worker.tid is None:
                            continue
                        elapsed = now - worker.started_at
                        if elapsed <= self.policy.shard_timeout_s:
                            continue
                        state = inflight.pop(worker.tid)
                        self._discard_worker(worker, kill=True)
                        pending.extend(self._handle_failure(
                            state, "timeout",
                            f"shard exceeded its "
                            f"{self.policy.shard_timeout_s}s deadline",
                            elapsed, report, now,
                        ))
        except _ParallelPathFailed:
            raise
        except BaseException:
            # leave no half-assigned workers behind (KeyboardInterrupt,
            # unexpected supervisor errors): fault-path teardown
            self._abort()
            raise

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: sentinel + ``join`` per worker; ``terminate``
        only for stragglers that ignore the sentinel."""
        workers, self._workers = self._workers, []
        for w in workers:
            try:
                if w.proc.is_alive():
                    w.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for w in workers:
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
            try:
                w.conn.close()
            except OSError:
                pass

    def _abort(self) -> None:
        """Fault-path teardown: terminate everything immediately."""
        workers, self._workers = self._workers, []
        for w in workers:
            try:
                if w.proc.is_alive():
                    w.proc.terminate()
            except Exception:
                pass
        for w in workers:
            try:
                w.proc.join(timeout=1.0)
                w.conn.close()
            except Exception:
                pass

    def __del__(self):
        # Interpreter teardown may have dismantled arbitrary module
        # state, so this must not call into close()'s pipe machinery:
        # check liveness and terminate stragglers, swallowing everything.
        workers = getattr(self, "_workers", None) or []
        self._workers = []
        for w in workers:
            proc = getattr(w, "proc", None)
            try:
                if proc is not None and proc.is_alive():
                    proc.terminate()
            except Exception:
                pass
