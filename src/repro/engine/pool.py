"""Process-pool execution of measurement shards.

Each task is self-contained -- benchmark, GPU spec, model parameters,
protocol, and a shard of :class:`~repro.engine.work.WorkItem` -- so a
worker process rebuilds its own :class:`~repro.autotune.measure.Measurer`
and compiles each needed module exactly once (shards are grouped by
compile key upstream).  Workers return ``(item index, measurement)``
pairs; ordering is restored by the engine, never by arrival time.

With ``jobs=1`` (or a single shard) everything runs inline in the
calling process: no pool, no pickling, identical results.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.autotune.measure import Measurer


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` means one worker per CPU; negatives are an error."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def evaluate_shard(task) -> list:
    """Measure one shard; the top-level entry point pool workers run.

    ``task[0]`` is a registry name whenever the benchmark is registered
    (its dataclass holds closures, which do not pickle), so workers
    resolve it locally; unregistered benchmarks arrive as objects.
    """
    benchmark, gpu, params, repetitions, trial_index, shard = task
    if isinstance(benchmark, str):
        from repro.kernels import get_benchmark

        benchmark = get_benchmark(benchmark)
    measurer = Measurer(
        benchmark, gpu, params=params,
        repetitions=repetitions, trial_index=trial_index,
    )
    measurements = measurer.measure_many(
        [(item.config, item.size) for item in shard]
    )
    return [
        (item.index, m) for item, m in zip(shard, measurements)
    ]


class PoolExecutor:
    """Runs shard tasks across a persistent ``multiprocessing`` pool.

    The pool is created on first parallel use and reused across calls --
    a search-heavy run (fig6) issues one small batch per tuning step, and
    re-forking workers for each would dominate the work.  ``close``
    releases the workers; the executor remains usable afterwards (a new
    pool is created on demand).
    """

    def __init__(self, jobs: int | None = None):
        self.jobs = resolve_jobs(jobs)
        self._pool = None

    def run(self, tasks, progress=None) -> list:
        """Evaluate every task, returning all ``(index, measurement)``
        pairs; ``progress.advance`` is called per completed shard."""
        tasks = list(tasks)
        out: list = []
        if self.jobs <= 1 or len(tasks) <= 1:
            for task in tasks:
                pairs = evaluate_shard(task)
                out.extend(pairs)
                if progress is not None:
                    progress.advance(len(pairs))
            return out
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.jobs)
        for pairs in self._pool.imap_unordered(evaluate_shard, tasks):
            out.extend(pairs)
            if progress is not None:
                progress.advance(len(pairs))
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self):
        self.close()
