"""Supervised process execution of measurement shards.

Each task is self-contained -- benchmark, GPU spec, model parameters,
protocol, and a shard of :class:`~repro.engine.work.WorkItem` -- so a
worker process rebuilds its own :class:`~repro.autotune.measure.Measurer`
and compiles each needed module exactly once (shards are grouped by
compile key upstream).  Workers return ``(item index, measurement)``
pairs; ordering is restored by the engine, never by arrival time.

Unlike a bare ``Pool.imap_unordered``, execution here is *supervised*
(see :mod:`repro.engine.resilience`): every shard runs in a dedicated
worker process with its own result pipe, so the supervisor attributes
failures exactly --

- a worker that dies mid-shard (OOM-kill, ``os._exit``) surfaces as EOF
  on its pipe and is respawned; the shard is retried with backoff;
- a shard that outlives the policy deadline has its worker killed and
  is retried likewise;
- an exception inside ``evaluate_shard`` travels back as a structured
  error and is retried;
- a shard that exhausts its retry budget is *bisected* -- split in two
  to isolate the poison item, each half with a fresh budget -- until a
  single offending item is quarantined as a
  :class:`~repro.engine.resilience.ShardFailure` instead of aborting
  the sweep;
- if the parallel path fails outright (workers cannot be spawned at
  all), the run degrades to inline execution with a warning.

Workers persist across ``run`` calls -- a search-heavy run (fig6)
issues one small batch per tuning step, and re-forking workers for each
would dominate the work.  ``close`` shuts them down cleanly (sentinel +
``join``); ``terminate`` is reserved for the fault paths.  With
``jobs=1`` (or a single shard) everything runs inline in the calling
process: no workers, no pickling, identical results -- but the same
retry/bisection supervision.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import deque
from multiprocessing.connection import wait as _wait_ready

from repro.autotune.measure import Measurer
from repro.engine import chaos
from repro.engine.resilience import (
    DEFAULT_POLICY,
    AttemptRecord,
    ExecutorReport,
    RetryPolicy,
    ShardFailure,
)
from repro.engine.work import split_shard


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` means one worker per CPU; negatives are an error."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def shard_indices(shard) -> tuple:
    """The work-item indices of a shard (its identity in fault records
    and chaos rolls)."""
    return tuple(item.index for item in shard)


def evaluate_shard(task, attempt: int = 0) -> list:
    """Measure one shard; the entry point both workers and the inline
    path run.

    ``task[0]`` is a registry name whenever the benchmark is registered
    (its dataclass holds closures, which do not pickle), so workers
    resolve it locally; unregistered benchmarks arrive as objects.
    ``attempt`` is the supervisor's 0-based retry count, consulted only
    by the chaos harness.
    """
    benchmark, gpu, params, repetitions, trial_index, shard = task
    chaos.maybe_inject(shard_indices(shard), attempt)
    if isinstance(benchmark, str):
        from repro.kernels import get_benchmark

        benchmark = get_benchmark(benchmark)
    measurer = Measurer(
        benchmark, gpu, params=params,
        repetitions=repetitions, trial_index=trial_index,
    )
    measurements = measurer.measure_many(
        [(item.config, item.size) for item in shard]
    )
    return [
        (item.index, m) for item, m in zip(shard, measurements)
    ]


def _worker_main(conn) -> None:
    """Worker loop: receive ``(tid, attempt, task)``, send back
    ``(tid, "ok", pairs)`` or ``(tid, "error", message)``; a ``None``
    message (or a closed pipe) is the clean-shutdown sentinel."""
    chaos.mark_worker()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:
            break
        tid, attempt, task = msg
        try:
            pairs = evaluate_shard(task, attempt)
        except BaseException as e:  # report, don't die: the pipe is the contract
            reply = (tid, "error", f"{type(e).__name__}: {e}")
        else:
            reply = (tid, "ok", pairs)
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            break
    try:
        conn.close()
    except OSError:
        pass


class _WorkerHandle:
    """One supervised worker process and its result pipe."""

    __slots__ = ("proc", "conn", "tid", "started_at")

    def __init__(self):
        parent_conn, child_conn = multiprocessing.Pipe()
        self.proc = multiprocessing.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
        )
        self.proc.start()
        # Drop our copy of the child end: a dead worker must surface as
        # EOF on `conn`, which requires no live handle to its peer here.
        child_conn.close()
        self.conn = parent_conn
        self.tid = None
        self.started_at = 0.0


class _TaskState:
    """A shard task's supervision state across attempts."""

    __slots__ = ("tid", "task", "attempts", "eligible_at", "origin")

    def __init__(self, tid, task, origin=None):
        self.tid = tid
        self.task = task
        self.attempts = []  # AttemptRecord per failed attempt
        self.eligible_at = 0.0
        self.origin = origin if origin is not None else len(task[5])

    @property
    def shard(self):
        return self.task[5]


class _ParallelPathFailed(Exception):
    """No worker could be spawned; carries the unfinished task states."""

    def __init__(self, remaining, cause):
        super().__init__(str(cause))
        self.remaining = remaining
        self.cause = cause


class PoolExecutor:
    """Runs shard tasks across persistent, supervised worker processes.

    ``policy`` is the :class:`~repro.engine.resilience.RetryPolicy`
    governing deadlines, retries, backoff, and bisection; the default
    retries 3 times with no deadline.  Workers are created on first
    parallel use and reused across calls; ``close`` releases them (the
    executor remains usable afterwards -- new workers spawn on demand).
    ``last_report`` holds the :class:`ExecutorReport` of the most recent
    ``run``.
    """

    def __init__(self, jobs: int | None = None,
                 policy: RetryPolicy | None = None):
        self.jobs = resolve_jobs(jobs)
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._workers: list = []
        self._next_tid = 0
        self.last_report: ExecutorReport | None = None

    # -- public entry point --------------------------------------------------

    def run(self, tasks, progress=None, on_shard_done=None) -> list:
        """Evaluate every task, returning all ``(index, measurement)``
        pairs.

        ``on_shard_done(task, pairs)`` fires as each shard completes --
        the engine's incremental-checkpoint hook -- followed by
        ``progress.advance``.  Faults are retried/quarantined per the
        policy; accounting lands in ``self.last_report``.
        """
        tasks = list(tasks)
        report = ExecutorReport()
        self.last_report = report
        out: list = []

        def emit(task, pairs):
            out.extend(pairs)
            if on_shard_done is not None:
                on_shard_done(task, pairs)
            if progress is not None:
                progress.advance(len(pairs))

        states = [self._make_state(task) for task in tasks]
        if self.jobs <= 1 or len(tasks) <= 1:
            self._run_states_inline(states, emit, report)
            return out
        try:
            self._run_parallel(states, emit, report)
        except _ParallelPathFailed as fail:
            warnings.warn(
                f"parallel sweep path unavailable ({fail.cause!r}); "
                "degrading to inline execution",
                RuntimeWarning, stacklevel=2,
            )
            report.degraded = True
            self._run_states_inline(fail.remaining, emit, report)
        return out

    # -- shared supervision logic --------------------------------------------

    def _make_state(self, task, origin=None) -> _TaskState:
        state = _TaskState(self._next_tid, task, origin=origin)
        self._next_tid += 1
        return state

    def _handle_success(self, state, pairs, emit, report) -> None:
        if state.attempts or state.origin > len(state.shard):
            report.recovered += 1
        emit(state.task, pairs)

    def _handle_failure(self, state, fate, error, elapsed, report,
                        now) -> list:
        """Record one failed attempt; return the task states to requeue
        (the same state on retry, two halves on bisection, none on
        quarantine)."""
        rec = AttemptRecord(
            attempt=len(state.attempts), fate=fate, error=error,
            elapsed_s=elapsed,
        )
        state.attempts.append(rec)
        report.events.append((shard_indices(state.shard), rec))
        if len(state.attempts) < self.policy.max_attempts:
            report.retries += 1
            state.eligible_at = now + self.policy.backoff(
                len(state.attempts), shard_indices(state.shard)
            )
            return [state]
        if len(state.shard) > 1:
            # poison-shard bisection: isolate the offending item
            children = []
            for half in split_shard(state.shard):
                child = self._make_state(
                    state.task[:5] + (half,), origin=state.origin
                )
                child.eligible_at = now + self.policy.backoff(
                    len(state.attempts), shard_indices(half)
                )
                children.append(child)
            report.retries += len(children)
            return children
        report.failures.append(ShardFailure(
            indices=shard_indices(state.shard),
            attempts=tuple(state.attempts),
            bisected_from=state.origin,
        ))
        return []

    # -- inline path ---------------------------------------------------------

    def _run_states_inline(self, states, emit, report) -> None:
        queue = deque(sorted(states, key=lambda s: s.tid))
        while queue:
            state = queue.popleft()
            now = time.monotonic()
            if state.eligible_at > now:
                time.sleep(state.eligible_at - now)
            t0 = time.monotonic()
            try:
                pairs = evaluate_shard(state.task, len(state.attempts))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as e:
                queue.extend(self._handle_failure(
                    state, "raised", f"{type(e).__name__}: {e}",
                    time.monotonic() - t0, report, time.monotonic(),
                ))
            else:
                self._handle_success(state, pairs, emit, report)

    # -- parallel path -------------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        return _WorkerHandle()

    def _discard_worker(self, worker, kill: bool = False) -> None:
        """Remove a worker; ``kill`` terminates it (the fault path),
        otherwise it is already dead and only needs reaping."""
        if worker in self._workers:
            self._workers.remove(worker)
        if kill and worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    def _run_parallel(self, states, emit, report) -> None:
        pending = list(states)   # waiting (or backing off)
        inflight: dict = {}      # tid -> _TaskState
        try:
            while pending or inflight:
                now = time.monotonic()
                # reap workers that died while idle
                for w in list(self._workers):
                    if w.tid is None and not w.proc.is_alive():
                        self._discard_worker(w)
                # top up the fleet while there is assignable work
                eligible = sorted(
                    (s for s in pending if s.eligible_at <= now),
                    key=lambda s: s.tid,
                )
                idle = [w for w in self._workers if w.tid is None]
                spawn = min(
                    max(0, len(eligible) - len(idle)),
                    self.jobs - len(self._workers),
                )
                for _ in range(spawn):
                    try:
                        self._workers.append(self._spawn_worker())
                    except OSError as e:
                        if not self._workers and not inflight:
                            raise _ParallelPathFailed(
                                pending, e
                            ) from e
                        break
                # assign eligible tasks to idle workers, tid order
                idle = [w for w in self._workers if w.tid is None]
                for worker, state in zip(idle, eligible):
                    try:
                        worker.conn.send(
                            (state.tid, len(state.attempts), state.task)
                        )
                    except (OSError, ValueError):
                        self._discard_worker(worker)
                        continue
                    worker.tid = state.tid
                    worker.started_at = now
                    inflight[state.tid] = state
                    pending.remove(state)

                busy = {
                    w.conn: w for w in self._workers if w.tid is not None
                }
                if not busy:
                    if pending:
                        wake = min(s.eligible_at for s in pending)
                        time.sleep(min(
                            max(wake - time.monotonic(), 0.001),
                            self.policy.poll_interval_s,
                        ))
                        continue
                    continue  # inflight empty too -> loop exits
                for conn in _wait_ready(
                    list(busy), timeout=self.policy.poll_interval_s
                ):
                    worker = busy[conn]
                    now = time.monotonic()
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        # worker death (OOM-kill / os._exit / crash)
                        state = inflight.pop(worker.tid)
                        elapsed = now - worker.started_at
                        self._discard_worker(worker)
                        pending.extend(self._handle_failure(
                            state, "worker-died",
                            f"worker exited with code "
                            f"{worker.proc.exitcode}",
                            elapsed, report, now,
                        ))
                        continue
                    tid, kind, payload = msg
                    state = inflight.pop(tid)
                    worker.tid = None
                    if kind == "ok":
                        self._handle_success(state, payload, emit, report)
                    else:
                        pending.extend(self._handle_failure(
                            state, "raised", payload,
                            now - worker.started_at, report, now,
                        ))
                # per-shard deadlines: kill and retry hung workers
                if self.policy.shard_timeout_s is not None:
                    now = time.monotonic()
                    for worker in list(self._workers):
                        if worker.tid is None:
                            continue
                        elapsed = now - worker.started_at
                        if elapsed <= self.policy.shard_timeout_s:
                            continue
                        state = inflight.pop(worker.tid)
                        self._discard_worker(worker, kill=True)
                        pending.extend(self._handle_failure(
                            state, "timeout",
                            f"shard exceeded its "
                            f"{self.policy.shard_timeout_s}s deadline",
                            elapsed, report, now,
                        ))
        except _ParallelPathFailed:
            raise
        except BaseException:
            # leave no half-assigned workers behind (KeyboardInterrupt,
            # unexpected supervisor errors): fault-path teardown
            self._abort()
            raise

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: sentinel + ``join`` per worker; ``terminate``
        only for stragglers that ignore the sentinel."""
        workers, self._workers = self._workers, []
        for w in workers:
            try:
                if w.proc.is_alive():
                    w.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for w in workers:
            w.proc.join(timeout=5.0)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
            try:
                w.conn.close()
            except OSError:
                pass

    def _abort(self) -> None:
        """Fault-path teardown: terminate everything immediately."""
        workers, self._workers = self._workers, []
        for w in workers:
            try:
                if w.proc.is_alive():
                    w.proc.terminate()
            except Exception:
                pass
        for w in workers:
            try:
                w.proc.join(timeout=1.0)
                w.conn.close()
            except Exception:
                pass

    def __del__(self):
        # Interpreter teardown may have dismantled arbitrary module
        # state, so this must not call into close()'s pipe machinery:
        # check liveness and terminate stragglers, swallowing everything.
        workers = getattr(self, "_workers", None) or []
        self._workers = []
        for w in workers:
            proc = getattr(w, "proc", None)
            try:
                if proc is not None and proc.is_alive():
                    proc.terminate()
            except Exception:
                pass
