"""Persistent measurement cache backing the sweep engine.

Every measured variant is stored under a *stable content key*: a SHA-256
digest of everything that determines the measurement -- the kernel (name
and spec structure), the full GPU spec, the tuning configuration, the
input size, the timing model's :class:`~repro.sim.timing.ModelParams`,
and the measurement protocol (repetitions / trial index).  Changing any
of these yields a different key, so a cache never serves stale results
after a model recalibration; bumping
:data:`CACHE_SCHEMA_VERSION` invalidates every
entry at once when the measurement semantics themselves change.

The store is a single SQLite file (stdlib ``sqlite3``; no third-party
dependency).  Only the coordinating process writes -- workers compute,
the engine persists -- but several *engines* (concurrent tuning
sessions) may share one store, so connections open in WAL journal mode
with a busy timeout: readers never block the writer and a briefly
contended write waits instead of raising ``database is locked``.

The store is also hardened against damage, because a measurement cache
must never be able to abort the sweep it exists to accelerate:

- a payload that fails to decode is counted (``corrupt``), moved to a
  ``quarantine`` side table for post-mortem, and reported as a miss --
  the point is simply re-measured;
- a database file that is corrupt at open (``sqlite3.DatabaseError``)
  is renamed aside (``*.corrupt-N``) and a fresh store is built in its
  place (``recovered_path`` records the sidelined file).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import asdict
from pathlib import Path

from repro.arch.specs import GPUSpec
from repro.autotune.measure import VariantMeasurement
from repro.sim.timing import ModelParams
from repro.util.hashing import stable_hash

__all__ = [
    "CACHE_SCHEMA_VERSION", "CacheStore", "context_key", "default_cache_dir",
    "measurement_key", "point_key", "stable_hash",
]

CACHE_SCHEMA_VERSION = 1
"""Bump to invalidate all persisted measurements at once."""

_ENV_VAR = "REPRO_CACHE_DIR"
_DB_NAME = "measurements.sqlite"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweeps``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sweeps"


def context_key(
    benchmark_name: str,
    gpu: GPUSpec,
    params: ModelParams,
    repetitions: int = 10,
    trial_index: int = 4,
    specs=None,
) -> str:
    """Digest of everything a whole sweep shares: kernel name *and specs*,
    full GPU spec, model parameters, and measurement protocol.  Computed
    once per sweep (hashing the dataclasses is the expensive part), then
    combined with each point via :func:`point_key`.

    ``specs`` is the benchmark's kernel-spec tuple; including its (fully
    deterministic) repr means editing a kernel invalidates its cached
    measurements even though the name is unchanged.  Changes to the
    compiler or timing model themselves are what
    :data:`CACHE_SCHEMA_VERSION` is for.
    """
    return stable_hash({
        "v": CACHE_SCHEMA_VERSION,
        "kernel": benchmark_name,
        "specs": repr(specs) if specs is not None else None,
        "gpu": asdict(gpu),
        "params": asdict(params),
        "repetitions": int(repetitions),
        "trial_index": int(trial_index),
    })


def point_key(context: str, config: dict, size: int) -> str:
    """The cache key of one ``(config, size)`` point under a context."""
    return stable_hash({
        "ctx": context,
        "config": {k: config[k] for k in sorted(config)},
        "size": int(size),
    })


def measurement_key(
    benchmark_name: str,
    gpu: GPUSpec,
    config: dict,
    size: int,
    params: ModelParams,
    repetitions: int = 10,
    trial_index: int = 4,
    specs=None,
) -> str:
    """The cache key of one ``(kernel, GPU, config, size, model)`` point."""
    return point_key(
        context_key(benchmark_name, gpu, params, repetitions, trial_index,
                    specs=specs),
        config, size,
    )


def _encode(m: VariantMeasurement) -> str:
    return json.dumps(asdict(m))


def _decode(payload: str) -> VariantMeasurement:
    return VariantMeasurement(**json.loads(payload))


BUSY_TIMEOUT_MS = 10_000
"""How long a contended write waits before ``database is locked``."""


class CacheStore:
    """On-disk key -> :class:`VariantMeasurement` store.

    ``path`` may be a directory (the database file is created inside it)
    or an explicit ``*.sqlite`` / ``*.db`` file path.  Stores are
    context managers (``with CacheStore(p) as store: ...`` closes the
    connection deterministically); ``close`` is idempotent.
    """

    def __init__(self, path: str | Path | None = None):
        path = (
            Path(path).expanduser() if path is not None
            else default_cache_dir()
        )
        if path.suffix in (".sqlite", ".db"):
            self.db_path = path
        else:
            self.db_path = path / _DB_NAME
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        """Payloads that failed to decode and were quarantined."""
        self.recovered_path: Path | None = None
        """Where a corrupt database file was moved aside, if one was."""
        # One connection per thread: SQLite connections are not safe to
        # share across threads, and -- the subtler seed bug -- pragmas
        # are *per connection*, so every connection (not just the first)
        # must set WAL + busy_timeout or a concurrent session's writes
        # land in rollback-journal mode and raise "database is locked"
        # under contention.
        self._local = threading.local()
        self._all_conns: list[sqlite3.Connection] = []
        self._conn_lock = threading.Lock()
        self._closed = False
        try:
            self._local.conn = self._open()
        except sqlite3.DatabaseError:
            # corrupt database file: move it aside and rebuild
            self.recovered_path = self._sideline_database()
            self._local.conn = self._open()

    @property
    def _conn(self) -> sqlite3.Connection:
        """This thread's connection, opened on first use."""
        if self._closed:
            raise sqlite3.ProgrammingError(
                "Cannot operate on a closed database."
            )
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._open()
            self._local.conn = conn
        return conn

    def _open(self) -> sqlite3.Connection:
        # check_same_thread=False so close() can shut every thread's
        # connection down from the owning thread; each connection is
        # still *used* by exactly one thread (thread-local storage)
        conn = sqlite3.connect(str(self.db_path), check_same_thread=False)
        try:
            conn.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA journal_mode = WAL")
            self._schema(conn)
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        with self._conn_lock:
            self._all_conns.append(conn)
        return conn

    def _schema(self, conn: sqlite3.Connection) -> None:
        """Create the store's tables (subclass hook: the service's
        :class:`~repro.service.store.MeasurementStore` extends it)."""
        conn.execute(
            "CREATE TABLE IF NOT EXISTS measurements ("
            " key TEXT PRIMARY KEY,"
            " payload TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            " key TEXT PRIMARY KEY,"
            " payload TEXT,"
            " error TEXT)"
        )

    def _sideline_database(self) -> Path:
        """Rename the (corrupt) database file out of the way, with its
        stale WAL/SHM siblings, so a fresh store can be built."""
        n = 1
        while True:
            target = self.db_path.with_name(
                f"{self.db_path.name}.corrupt-{n}"
            )
            if not target.exists():
                break
            n += 1
        os.replace(self.db_path, target)
        for suffix in ("-wal", "-shm"):
            sibling = Path(str(self.db_path) + suffix)
            if sibling.exists():
                sibling.unlink()
        return target

    def _decode_or_quarantine(self, key: str, payload):
        """Decode a payload; a corrupt one is moved to the quarantine
        table and reported as a miss (``None``), never raised."""
        try:
            return _decode(payload)
        except Exception as e:
            self.corrupt += 1
            self._conn.execute(
                "INSERT OR REPLACE INTO quarantine (key, payload, error)"
                " VALUES (?, ?, ?)",
                (key, str(payload), f"{type(e).__name__}: {e}"),
            )
            self._conn.execute(
                "DELETE FROM measurements WHERE key = ?", (key,)
            )
            self._conn.commit()
            return None

    # -- single-item API -----------------------------------------------------

    def get(self, key: str) -> VariantMeasurement | None:
        row = self._conn.execute(
            "SELECT payload FROM measurements WHERE key = ?", (key,)
        ).fetchone()
        m = self._decode_or_quarantine(key, row[0]) if row else None
        if m is None:
            self.misses += 1
            return None
        self.hits += 1
        return m

    def put(self, key: str, measurement: VariantMeasurement) -> None:
        self.put_many([(key, measurement)])

    # -- batch API (what the engine uses) ------------------------------------

    def get_many(self, keys) -> dict:
        """``{key: measurement}`` for every key present in the store."""
        keys = list(keys)
        found: dict = {}
        CHUNK = 400  # stay well under SQLite's bound-variable limit
        for lo in range(0, len(keys), CHUNK):
            chunk = keys[lo:lo + CHUNK]
            qs = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT key, payload FROM measurements WHERE key IN ({qs})",
                chunk,
            ).fetchall()
            for key, payload in rows:
                m = self._decode_or_quarantine(key, payload)
                if m is not None:
                    found[key] = m
        self.hits += len(found)
        self.misses += len(keys) - len(found)
        return found

    def put_many(self, items) -> None:
        """Persist ``(key, measurement)`` pairs (idempotent upsert)."""
        rows = [(k, _encode(m)) for k, m in items]
        if not rows:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO measurements (key, payload)"
            " VALUES (?, ?)",
            rows,
        )
        self._conn.commit()

    # -- maintenance ---------------------------------------------------------

    def __len__(self) -> int:
        (n,) = self._conn.execute(
            "SELECT COUNT(*) FROM measurements"
        ).fetchone()
        return int(n)

    def quarantined(self) -> list:
        """``(key, error)`` rows of payloads sidelined by decode
        failures, for post-mortem."""
        return self._conn.execute(
            "SELECT key, error FROM quarantine ORDER BY key"
        ).fetchall()

    def clear(self) -> None:
        self._conn.execute("DELETE FROM measurements")
        self._conn.execute("DELETE FROM quarantine")
        self._conn.commit()

    def flush(self) -> None:
        """Commit this thread's work and fold the WAL back into the main
        database file (checkpoint), so a reader opening the file fresh --
        or the server's eviction pass sizing it -- sees everything.
        Idempotent, and a silent no-op once the store is closed."""
        if self._closed:
            return
        try:
            conn = self._conn
            conn.commit()
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            # flush is advisory: a checkpoint blocked by a concurrent
            # reader just leaves the WAL for the next one
            pass

    def close(self) -> None:
        """Idempotent; operations after close raise
        ``sqlite3.ProgrammingError``."""
        if self._closed:
            return
        self._closed = True
        with self._conn_lock:
            conns, self._all_conns = self._all_conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
