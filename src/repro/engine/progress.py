"""Progress reporting for long sweeps.

The engine drives a tiny three-call protocol -- :meth:`start`,
:meth:`advance`, :meth:`finish` -- so callers can plug in anything from
the default no-op to the carriage-return stderr meter used by the
experiment runner's ``--progress`` flag.
"""

from __future__ import annotations

import sys
import time

from repro import obs


class ProgressReporter:
    """No-op base reporter (and the null object used by default)."""

    def start(self, total: int, label: str = "") -> None:
        pass

    def advance(self, n: int = 1) -> None:
        pass

    def finish(self) -> None:
        pass

    def note(self, message: str) -> None:
        """Out-of-band event worth surfacing (quarantines, degraded
        execution).  Also lands in the trace as an instant, so notes
        appear on the fault timeline even for the default no-op
        reporter; subclasses that override must call ``super().note``.
        """
        obs.instant("note", args={"message": message})


NULL_PROGRESS = ProgressReporter()


class StderrProgress(ProgressReporter):
    """Single-line ``label: done/total (pct)`` meter on stderr.

    Updates are throttled to ``min_interval`` seconds so a fast sweep
    does not spend its time repainting the terminal.
    """

    def __init__(self, stream=None, min_interval: float = 0.1):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.total = 0
        self.done = 0
        self.label = ""
        self._last_paint = 0.0
        self._started = False

    def start(self, total: int, label: str = "") -> None:
        self.total = total
        self.done = 0
        self.label = label or "sweep"
        self._started = True
        self._paint(force=True)

    def advance(self, n: int = 1) -> None:
        self.done += n
        self._paint()

    def finish(self) -> None:
        if self._started:
            self._paint(force=True)
            self.stream.write("\n")
            self.stream.flush()
            self._started = False

    def note(self, message: str) -> None:
        """Print an event on its own line, then let the meter repaint."""
        super().note(message)
        self.stream.write(f"\r{message}\n")
        self.stream.flush()
        if self._started:
            self._paint(force=True)

    def _paint(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_paint < self.min_interval:
            return
        self._last_paint = now
        pct = 100.0 * self.done / self.total if self.total else 100.0
        self.stream.write(
            f"\r{self.label}: {self.done}/{self.total} ({pct:.0f}%)"
        )
        self.stream.flush()
