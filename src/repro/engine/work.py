"""Work-list construction and deterministic sharding.

A sweep is a flat, ordered list of :class:`WorkItem` -- one
``(config, size)`` point per item, numbered in the canonical order the
serial sweep would evaluate them (sizes outer, configurations inner).
Sharding groups items by their *compile key* (the compile-time slice of
the configuration: ``UIF``, ``CFLAGS``, ``PL``) so each worker compiles
every needed module at most once, then balances whole groups across
shards.  Results carry their item index, so the engine reassembles the
canonical order regardless of which shard finished first -- parallel
sweeps are byte-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotune.measure import compile_config_key as compile_key
from repro.autotune.space import ParameterSpace


@dataclass(frozen=True)
class WorkItem:
    """One measurement to perform, at its position in the canonical order."""

    index: int
    config: dict
    size: int


def build_work_list(space: ParameterSpace, sizes) -> list:
    """Enumerate ``sizes x space`` in the canonical serial-sweep order."""
    items = []
    for size in sizes:
        for config in space:
            items.append(WorkItem(len(items), dict(config), int(size)))
    return items


def build_pairs(pairs) -> list:
    """Work list from explicit ``(config, size)`` pairs (search batches)."""
    return [
        WorkItem(i, dict(config), int(size))
        for i, (config, size) in enumerate(pairs)
    ]


def split_shard(shard) -> list:
    """Halve a shard for poison-shard bisection.

    Supervision splits a shard that exhausted its retry budget to
    isolate the offending work item (see
    :mod:`repro.engine.resilience`); both halves are non-empty for any
    input of two or more items, so repeated splitting always terminates
    at single items.
    """
    shard = list(shard)
    mid = len(shard) // 2
    return [shard[:mid], shard[mid:]]


def shard_work(items, shards: int | None) -> list:
    """Split items into balanced lists, never splitting a compile group.

    With ``shards=None`` -- the engine's parallel path -- every compile
    group becomes its own shard.  Since groups are never split anyway,
    the worker count already caps effective parallelism at the group
    count, so per-group sharding is physically identical to
    worker-counted sharding while making the partition (and therefore
    the trace span tree) a pure function of the work list, independent
    of ``jobs``.  The supervisor's scheduler assigns however many shards
    exist to however many workers are available.

    With an integer ``shards``, items are grouped by compile key and
    whole groups are assigned greedily (largest first) to the currently
    lightest of at most ``shards`` buckets; ties break by shard number.
    Either way the partition is deterministic and empty shards are
    dropped.
    """
    if shards is not None and shards <= 1:
        return [list(items)] if items else []
    groups: dict = {}
    for item in items:
        groups.setdefault(compile_key(item.config), []).append(item)
    # largest groups first; key as tiebreak for determinism
    ordered = sorted(
        groups.items(), key=lambda kv: (-len(kv[1]), kv[0])
    )
    if shards is None:
        return [group for _, group in ordered]
    buckets = [[] for _ in range(shards)]
    loads = [0] * shards
    for _, group in ordered:
        target = loads.index(min(loads))
        buckets[target].extend(group)
        loads[target] += len(group)
    return [b for b in buckets if b]
