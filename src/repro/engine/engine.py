"""The parallel, cache-backed sweep engine.

:class:`SweepEngine` is the one place the repo turns a work list of
``(kernel, GPU, config, size)`` points into measurements.  The stages are
deliberately explicit and debuggable:

1. **Enumerate** the work list in the canonical serial order
   (:func:`~repro.engine.work.build_work_list`).
2. **Probe** the persistent cache: every point already measured under the
   same kernel/GPU/config/size/:class:`ModelParams` key is served from
   disk (:mod:`repro.engine.cache`).
3. **Shard** the misses by compile key and balance them across workers
   (:func:`~repro.engine.work.shard_work`).
4. **Execute** the shards under supervision -- on worker processes, or
   inline when ``jobs=1`` (:mod:`repro.engine.pool`): dead or hung
   workers are respawned and their shards retried with backoff, and a
   work item that keeps failing is bisected out and quarantined as a
   :class:`~repro.engine.resilience.ShardFailure` rather than aborting
   the sweep.  Each completed shard's measurements are **checkpointed**
   to the cache as they arrive, so an interrupted sweep resumes warm.
5. **Reassemble** the canonical order, so parallel output is
   byte-identical to serial output.

The timing model is deterministic (noise is seeded from the
configuration itself), which is what makes stages 2 and 4 safe: a cached
or remote measurement equals an inline one exactly -- including a
retried one, so recovery never changes results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.arch.specs import GPUSpec
from repro.autotune.space import ParameterSpace
from repro.engine.cache import CacheStore, context_key, point_key
from repro.engine.pool import PoolExecutor, resolve_jobs
from repro.engine.progress import NULL_PROGRESS
from repro.engine.work import build_pairs, build_work_list, shard_work
from repro.kernels.base import Benchmark
from repro.sim.timing import DEFAULT_PARAMS, ModelParams


@dataclass(frozen=True)
class SweepStats:
    """What the last engine run did."""

    total: int
    hits: int
    measured: int
    elapsed_s: float
    retries: int = 0
    """Shard re-submissions after faults (incl. bisection halves)."""
    failures: int = 0
    """Work items quarantined after exhausting their retry budget."""
    recovered: int = 0
    """Shards that succeeded after at least one fault."""
    corrupt: int = 0
    """Cache payloads that failed to decode and were re-measured."""

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class SweepEngine:
    """Measures work lists across processes, backed by a persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs inline, ``None``/``0`` uses every
        CPU.
    cache:
        A :class:`CacheStore`, a path (directory or ``*.sqlite`` file) to
        open one at, or ``None`` to disable persistence.
    progress:
        A :class:`~repro.engine.progress.ProgressReporter`; default no-op.
    """

    def __init__(self, jobs: int | None = 1, cache=None, progress=None,
                 policy=None):
        self.jobs = resolve_jobs(jobs)
        self._owns_cache = cache is not None and not isinstance(
            cache, CacheStore
        )
        if cache is None or isinstance(cache, CacheStore):
            self.cache = cache
        else:
            self.cache = CacheStore(Path(cache))
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.last_stats: SweepStats | None = None
        self.last_failures: list = []
        """:class:`~repro.engine.resilience.ShardFailure` quarantine
        records from the last run (empty on a fault-free run)."""
        self.total_measured = 0
        """Fresh measurements over the engine's lifetime (a search run
        issues many small batches; ``last_stats`` only covers the last)."""
        self.total_hits = 0
        """Cache hits over the engine's lifetime."""
        self.total_retries = 0
        self.total_failures = 0
        self.total_recovered = 0
        self._executor = PoolExecutor(self.jobs, policy=policy)

    def close(self) -> None:
        """Release the worker pool (the cache, possibly shared, is left
        open).  The engine stays usable; workers respawn on demand."""
        self._executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        """Context-manager exit also closes a cache the engine opened
        itself (one built from a path); a shared :class:`CacheStore`
        instance passed in by the caller is left open."""
        self.close()
        if self._owns_cache and self.cache is not None:
            self.cache.close()

    # -- entry points --------------------------------------------------------

    def sweep(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        space: ParameterSpace,
        sizes,
        params: ModelParams = DEFAULT_PARAMS,
        repetitions: int = 10,
        trial_index: int = 4,
    ) -> list:
        """Measure every configuration at every size, in canonical order."""
        items = build_work_list(space, sizes)
        return self._execute(
            benchmark, gpu, items, params, repetitions, trial_index,
            label=f"sweep {benchmark.name}/{gpu.name}",
        )

    def run(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        pairs,
        params: ModelParams = DEFAULT_PARAMS,
        repetitions: int = 10,
        trial_index: int = 4,
    ) -> list:
        """Measure explicit ``(config, size)`` pairs, preserving order
        (the batch path the search strategies use)."""
        items = build_pairs(pairs)
        return self._execute(
            benchmark, gpu, items, params, repetitions, trial_index,
            label=f"batch {benchmark.name}/{gpu.name}",
        )

    # -- pipeline ------------------------------------------------------------

    def _execute(
        self, benchmark, gpu, items, params, repetitions, trial_index, label
    ) -> list:
        # the root span of the engine's trace subtree ("sweep ..." or
        # "batch ..."); shard/attempt/measure spans nest under it
        with obs.span(label.split()[0], key=label,
                      args={"points": len(items)}) as sp:
            results = self._execute_traced(
                benchmark, gpu, items, params, repetitions, trial_index,
                label, sp,
            )
        return results

    def _execute_traced(
        self, benchmark, gpu, items, params, repetitions, trial_index,
        label, sp,
    ) -> list:
        t0 = time.monotonic()
        results: list = [None] * len(items)
        corrupt_before = self.cache.corrupt if self.cache is not None else 0

        # stage 2: probe the cache
        misses = items
        keys = None
        if self.cache is not None and items:
            ctx = context_key(
                benchmark.name, gpu, params, repetitions, trial_index,
                specs=benchmark.specs,
            )
            keys = [
                point_key(ctx, item.config, item.size) for item in items
            ]
            found = self.cache.get_many(keys)
            misses = []
            for item, key in zip(items, keys):
                hit = found.get(key)
                if hit is not None:
                    results[item.index] = hit
                else:
                    misses.append(item)
        hits = len(items) - len(misses)

        # stages 3-4: shard and execute under supervision, checkpointing
        # each completed shard to the cache as it arrives (an interrupted
        # sweep resumes warm instead of losing every measurement)
        self.progress.start(len(items), label)
        self.progress.advance(hits)
        report = None
        if misses:
            from repro.kernels import BENCHMARKS

            # Registered benchmarks travel by name: their callables are
            # closures, which do not survive pickling to pool workers.
            # Anything else (a modified copy, an unregistered benchmark)
            # is measured inline instead -- slower, never wrong.
            registered = BENCHMARKS.get(benchmark.name) is benchmark
            bench_ref = benchmark.name if registered else benchmark
            # shards=None: one shard per compile group, independent of
            # the worker count -- parallelism is capped at the group
            # count anyway (groups never split), and a jobs-independent
            # partition makes the trace's span tree identical at any
            # jobs setting
            shards = shard_work(misses, None if registered else 1)
            tasks = [
                (bench_ref, gpu, params, repetitions, trial_index, shard)
                for shard in shards
            ]

            def checkpoint(task, pairs):
                if self.cache is not None:
                    self.cache.put_many((keys[i], m) for i, m in pairs)

            for index, m in self._executor.run(
                tasks, progress=self.progress, on_shard_done=checkpoint,
            ):
                results[index] = m
            report = self._executor.last_report

        # stage 5: reassembled above by item index; account and report
        self.last_failures = list(report.failures) if report else []
        if self.last_failures:
            quarantined = sum(len(f.indices) for f in self.last_failures)
            self.progress.note(
                f"{label}: quarantined {quarantined} work item(s) "
                "after retry exhaustion (see engine.last_failures)"
            )
        else:
            quarantined = 0
        self.progress.finish()

        self.last_stats = SweepStats(
            total=len(items),
            hits=hits,
            measured=len(misses) - quarantined,
            elapsed_s=time.monotonic() - t0,
            retries=report.retries if report else 0,
            failures=len(self.last_failures),
            recovered=report.recovered if report else 0,
            corrupt=(self.cache.corrupt - corrupt_before)
            if self.cache is not None else 0,
        )
        self.total_measured += self.last_stats.measured
        self.total_hits += hits
        self.total_retries += self.last_stats.retries
        self.total_failures += self.last_stats.failures
        self.total_recovered += self.last_stats.recovered

        stats = self.last_stats
        sp.annotate(
            hits=hits, measured=stats.measured, quarantined=quarantined,
            retries=stats.retries, corrupt=stats.corrupt,
        )
        if obs.metrics is not None:
            # the engine-level reconciliation set: points ==
            # cache_hits + measured + quarantined, per (kernel, gpu)
            lbl = {"kernel": benchmark.name, "gpu": gpu.name}
            obs.add("engine.points", stats.total, **lbl)
            obs.add("engine.cache_hits", hits, **lbl)
            obs.add("engine.measured", stats.measured, **lbl)
            obs.add("engine.quarantined", quarantined, **lbl)
            obs.add("engine.retries", stats.retries, **lbl)
            obs.add("engine.recovered", stats.recovered, **lbl)
            obs.add("engine.corrupt_payloads", stats.corrupt, **lbl)
            obs.add("engine.runs", 1, **lbl)
            obs.observe("engine.run_seconds", stats.elapsed_s, **lbl)
        return results
