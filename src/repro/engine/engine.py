"""The parallel, cache-backed sweep engine.

:class:`SweepEngine` is the one place the repo turns a work list of
``(kernel, GPU, config, size)`` points into measurements.  The stages are
deliberately explicit and debuggable:

1. **Enumerate** the work list in the canonical serial order
   (:func:`~repro.engine.work.build_work_list`).
2. **Probe** the persistent cache: every point already measured under the
   same kernel/GPU/config/size/:class:`ModelParams` key is served from
   disk (:mod:`repro.engine.cache`).
3. **Shard** the misses by compile key and balance them across workers
   (:func:`~repro.engine.work.shard_work`).
4. **Execute** the shards on a process pool -- or inline when ``jobs=1``
   (:mod:`repro.engine.pool`).
5. **Persist** the fresh measurements and **reassemble** the canonical
   order, so parallel output is byte-identical to serial output.

The timing model is deterministic (noise is seeded from the
configuration itself), which is what makes stages 2 and 4 safe: a cached
or remote measurement equals an inline one exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.arch.specs import GPUSpec
from repro.autotune.space import ParameterSpace
from repro.engine.cache import CacheStore, context_key, point_key
from repro.engine.pool import PoolExecutor, resolve_jobs
from repro.engine.progress import NULL_PROGRESS
from repro.engine.work import build_pairs, build_work_list, shard_work
from repro.kernels.base import Benchmark
from repro.sim.timing import DEFAULT_PARAMS, ModelParams


@dataclass(frozen=True)
class SweepStats:
    """What the last engine run did."""

    total: int
    hits: int
    measured: int
    elapsed_s: float

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0


class SweepEngine:
    """Measures work lists across processes, backed by a persistent cache.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs inline, ``None``/``0`` uses every
        CPU.
    cache:
        A :class:`CacheStore`, a path (directory or ``*.sqlite`` file) to
        open one at, or ``None`` to disable persistence.
    progress:
        A :class:`~repro.engine.progress.ProgressReporter`; default no-op.
    """

    def __init__(self, jobs: int | None = 1, cache=None, progress=None):
        self.jobs = resolve_jobs(jobs)
        if cache is None or isinstance(cache, CacheStore):
            self.cache = cache
        else:
            self.cache = CacheStore(Path(cache))
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.last_stats: SweepStats | None = None
        self.total_measured = 0
        """Fresh measurements over the engine's lifetime (a search run
        issues many small batches; ``last_stats`` only covers the last)."""
        self.total_hits = 0
        """Cache hits over the engine's lifetime."""
        self._executor = PoolExecutor(self.jobs)

    def close(self) -> None:
        """Release the worker pool (the cache, possibly shared, is left
        open).  The engine stays usable; workers respawn on demand."""
        self._executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- entry points --------------------------------------------------------

    def sweep(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        space: ParameterSpace,
        sizes,
        params: ModelParams = DEFAULT_PARAMS,
        repetitions: int = 10,
        trial_index: int = 4,
    ) -> list:
        """Measure every configuration at every size, in canonical order."""
        items = build_work_list(space, sizes)
        return self._execute(
            benchmark, gpu, items, params, repetitions, trial_index,
            label=f"sweep {benchmark.name}/{gpu.name}",
        )

    def run(
        self,
        benchmark: Benchmark,
        gpu: GPUSpec,
        pairs,
        params: ModelParams = DEFAULT_PARAMS,
        repetitions: int = 10,
        trial_index: int = 4,
    ) -> list:
        """Measure explicit ``(config, size)`` pairs, preserving order
        (the batch path the search strategies use)."""
        items = build_pairs(pairs)
        return self._execute(
            benchmark, gpu, items, params, repetitions, trial_index,
            label=f"batch {benchmark.name}/{gpu.name}",
        )

    # -- pipeline ------------------------------------------------------------

    def _execute(
        self, benchmark, gpu, items, params, repetitions, trial_index, label
    ) -> list:
        t0 = time.monotonic()
        results: list = [None] * len(items)

        # stage 2: probe the cache
        misses = items
        keys = None
        if self.cache is not None and items:
            ctx = context_key(
                benchmark.name, gpu, params, repetitions, trial_index,
                specs=benchmark.specs,
            )
            keys = [
                point_key(ctx, item.config, item.size) for item in items
            ]
            found = self.cache.get_many(keys)
            misses = []
            for item, key in zip(items, keys):
                hit = found.get(key)
                if hit is not None:
                    results[item.index] = hit
                else:
                    misses.append(item)
        hits = len(items) - len(misses)

        # stages 3-4: shard and execute
        self.progress.start(len(items), label)
        self.progress.advance(hits)
        if misses:
            from repro.kernels import BENCHMARKS

            # Registered benchmarks travel by name: their callables are
            # closures, which do not survive pickling to pool workers.
            # Anything else (a modified copy, an unregistered benchmark)
            # is measured inline instead -- slower, never wrong.
            registered = BENCHMARKS.get(benchmark.name) is benchmark
            bench_ref = benchmark.name if registered else benchmark
            shards = shard_work(misses, self.jobs if registered else 1)
            tasks = [
                (bench_ref, gpu, params, repetitions, trial_index, shard)
                for shard in shards
            ]
            for index, m in self._executor.run(tasks,
                                               progress=self.progress):
                results[index] = m

        # stage 5: persist the fresh measurements
        if self.cache is not None and misses:
            self.cache.put_many(
                (keys[item.index], results[item.index]) for item in misses
            )
        self.progress.finish()

        self.last_stats = SweepStats(
            total=len(items),
            hits=hits,
            measured=len(misses),
            elapsed_s=time.monotonic() - t0,
        )
        self.total_measured += len(misses)
        self.total_hits += hits
        return results
