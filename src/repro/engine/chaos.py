"""Deterministic chaos injection for the sweep engine.

Following the ``sim.vector.set_fault_hook`` precedent (a test-only hook
that lets the fuzz harness prove it detects injected defects), this
module injects *execution* faults into the engine so the resilience
tests can prove that sweeps under worker kills, shard timeouts, raised
exceptions, and corrupt cache rows still return results byte-identical
to a clean serial run.

A :class:`ChaosSpec` is installed into the environment
(``$REPRO_CHAOS``, JSON), so it reaches pool worker processes under any
``multiprocessing`` start method.  Every fault decision is a pure
function of ``(seed, fault kind, shard item indices, attempt number)``
-- the same spec always kills the same shards on the same attempts,
which is what lets tests assert exact ``SweepStats`` /
:class:`~repro.engine.resilience.ShardFailure` accounting.

Fault kinds, rolled in this order at the top of ``evaluate_shard``:

- **kill**: the worker process exits immediately via ``os._exit``
  (simulating an OOM-kill).  Inline execution (no worker process to
  kill) raises :class:`ChaosError` instead so the retry path is still
  exercised.
- **raise**: raises :class:`ChaosError` from ``evaluate_shard``.
- **delay**: sleeps ``delay_s`` before measuring, driving the shard
  past a supervisor deadline.

Cache-row corruption is a separate, direct injector
(:func:`corrupt_rows`) because it targets the store, not a shard.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass

from repro import obs
from repro.util.hashing import stable_hash

ENV_VAR = "REPRO_CHAOS"

KILL_EXIT_CODE = 137
"""Exit code of a chaos-killed worker (mirrors SIGKILL's 128+9)."""

_IN_WORKER = False
"""Set by pool workers so ``kill`` faults know a real process exists."""


class ChaosError(RuntimeError):
    """An injected failure (the ``raise`` fault, or ``kill`` inline)."""


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded fault-injection plan.

    ``attempts`` limits faults to the first N attempts of each shard
    (the default 1 makes every fault recoverable by a single retry);
    ``attempts=-1`` faults *every* attempt -- a poison shard.
    ``only_indices`` restricts faulting to shards containing at least
    one of the given work-item indices, which is how a single item is
    poisoned for the bisection tests.
    """

    seed: int = 0
    kill_rate: float = 0.0
    raise_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0
    attempts: int = 1
    only_indices: tuple = ()

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "ChaosSpec":
        d = json.loads(blob)
        d["only_indices"] = tuple(d.get("only_indices") or ())
        return cls(**d)


def install(spec: ChaosSpec) -> None:
    """Activate a spec process-wide (and for future worker processes)."""
    os.environ[ENV_VAR] = spec.to_json()


def uninstall() -> None:
    os.environ.pop(ENV_VAR, None)


def active() -> ChaosSpec | None:
    blob = os.environ.get(ENV_VAR)
    return ChaosSpec.from_json(blob) if blob else None


@contextmanager
def injected(spec: ChaosSpec):
    """``with chaos.injected(spec): ...`` -- install, then uninstall."""
    install(spec)
    try:
        yield spec
    finally:
        uninstall()


def mark_worker() -> None:
    """Called by pool worker mains: ``kill`` faults may really exit."""
    global _IN_WORKER
    _IN_WORKER = True


def _roll(spec: ChaosSpec, kind: str, indices, attempt: int) -> float:
    digest = stable_hash((spec.seed, kind, tuple(indices), attempt))
    return int(digest[:12], 16) / float(16 ** 12)


def maybe_inject(indices, attempt: int = 0) -> None:
    """Apply the active spec's fault (if any) for this shard attempt.

    Called at the top of ``evaluate_shard``; a no-op unless a spec is
    installed and this ``(shard, attempt)`` rolls a fault.
    """
    spec = active()
    if spec is None:
        return
    if spec.only_indices and not set(indices) & set(spec.only_indices):
        return
    if spec.attempts >= 0 and attempt >= spec.attempts:
        return
    if spec.kill_rate and _roll(spec, "kill", indices, attempt) < spec.kill_rate:
        # this instant only survives on the inline path: a killed
        # worker's capture buffer dies with it, and the supervisor's
        # fault.worker-died instant covers the timeline instead
        obs.instant(
            "chaos.kill", args={"shard": list(indices), "attempt": attempt}
        )
        if _IN_WORKER:
            os._exit(KILL_EXIT_CODE)
        raise ChaosError(
            f"chaos kill (inline) on shard {tuple(indices)} attempt {attempt}"
        )
    if spec.raise_rate and _roll(spec, "raise", indices, attempt) < spec.raise_rate:
        obs.instant(
            "chaos.raise", args={"shard": list(indices), "attempt": attempt}
        )
        raise ChaosError(
            f"chaos raise on shard {tuple(indices)} attempt {attempt}"
        )
    if spec.delay_rate and _roll(spec, "delay", indices, attempt) < spec.delay_rate:
        obs.instant(
            "chaos.delay",
            args={"shard": list(indices), "attempt": attempt,
                  "delay_s": spec.delay_s},
        )
        time.sleep(spec.delay_s)


def corrupt_rows(store, seed: int = 0, fraction: float = 1.0,
                 limit: int | None = None) -> list:
    """Overwrite a deterministic subset of a store's payloads with
    garbage, returning the corrupted keys (in key order).

    The engine must treat every corrupted row as a miss -- quarantined
    and re-measured, never a crash (see ``CacheStore``).
    """
    keys = [
        k for (k,) in store._conn.execute(
            "SELECT key FROM measurements ORDER BY key"
        )
    ]
    chosen = [
        k for k in keys
        if int(stable_hash((seed, k))[:12], 16) / float(16 ** 12) < fraction
    ]
    if limit is not None:
        chosen = chosen[:limit]
    store._conn.executemany(
        "UPDATE measurements SET payload = ? WHERE key = ?",
        [("\x00chaos:" + k[:8], k) for k in chosen],
    )
    store._conn.commit()
    return chosen
