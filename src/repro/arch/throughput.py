"""Instruction throughput per architecture (paper Table II).

Table II of the paper gives, for each instruction *category* and each SM
version, the number of operations one SM can process per cycle (IPC).  The
paper weights instruction mixes by the reciprocal, cycles-per-instruction
(CPI): "an operation with a high throughput would cost less to issue than an
operation with a lower instruction throughput."

Categories also map onto a coarse *pipeline class* (FLOPS / MEM / CTRL /
REG), which is the granularity of the paper's Eq. 6 predictive model and of
the pipeline-utilization metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType


class PipeClass(enum.Enum):
    """Coarse pipeline class used by the Eq. 6 model and Table VI."""

    FLOPS = "FLOPS"
    MEM = "MEM"
    CTRL = "CTRL"
    REG = "REG"


class InstrCategory(enum.Enum):
    """Instruction categories of the paper's Table II (rows)."""

    FP32 = "FPIns32"
    FP64 = "FPIns64"
    COMP_MINMAX = "CompMinMax"
    SHIFT = "Shift/Extract/Shuffle/SumAbsDiff"
    CONV64 = "Conv64"
    CONV32 = "Conv32"
    LOG_SIN_COS = "LogSinCos"
    INT_ADD32 = "IntAdd32"
    LDST = "TexIns/LdStIns/SurfIns"
    PRED_CTRL = "PredIns/CtrlIns"
    MOVE = "MoveIns"
    REGS = "Regs"

    @property
    def pipe(self) -> PipeClass:
        return _CATEGORY_PIPE[self]


_CATEGORY_PIPE: dict[InstrCategory, PipeClass] = {
    InstrCategory.FP32: PipeClass.FLOPS,
    InstrCategory.FP64: PipeClass.FLOPS,
    InstrCategory.COMP_MINMAX: PipeClass.FLOPS,
    InstrCategory.SHIFT: PipeClass.FLOPS,
    InstrCategory.CONV64: PipeClass.FLOPS,
    InstrCategory.CONV32: PipeClass.FLOPS,
    InstrCategory.LOG_SIN_COS: PipeClass.FLOPS,
    InstrCategory.INT_ADD32: PipeClass.FLOPS,
    InstrCategory.LDST: PipeClass.MEM,
    InstrCategory.PRED_CTRL: PipeClass.CTRL,
    InstrCategory.MOVE: PipeClass.CTRL,
    InstrCategory.REGS: PipeClass.REG,
}

# Table II, transcribed column-by-column: IPC per SM for SM20/SM35/SM52/SM60.
_TABLE_II: dict[InstrCategory, tuple[int, int, int, int]] = {
    InstrCategory.FP32: (32, 192, 128, 64),
    InstrCategory.FP64: (16, 64, 4, 32),
    InstrCategory.COMP_MINMAX: (32, 160, 64, 32),
    InstrCategory.SHIFT: (16, 32, 64, 32),
    InstrCategory.CONV64: (16, 8, 4, 16),
    InstrCategory.CONV32: (16, 128, 32, 16),
    InstrCategory.LOG_SIN_COS: (4, 32, 32, 16),
    InstrCategory.INT_ADD32: (32, 160, 64, 32),
    InstrCategory.LDST: (16, 32, 64, 16),
    InstrCategory.PRED_CTRL: (16, 32, 64, 16),
    InstrCategory.MOVE: (32, 32, 32, 32),
    InstrCategory.REGS: (16, 32, 32, 16),
}

_SM_COLUMN = {20: 0, 35: 1, 52: 2, 60: 3}


@dataclass(frozen=True)
class ThroughputTable:
    """Per-architecture instruction throughputs.

    Wraps one column of Table II and exposes both IPC (operations per cycle
    per SM) and CPI (the weight the paper assigns to each instruction when
    forming weighted mixes; the reciprocal of IPC).
    """

    sm_version: int
    ipc_by_category: MappingProxyType

    @staticmethod
    def for_sm(sm_version: int) -> "ThroughputTable":
        if sm_version not in _SM_COLUMN:
            raise KeyError(
                f"no throughput data for sm_{sm_version}; "
                f"available: {sorted(_SM_COLUMN)}"
            )
        col = _SM_COLUMN[sm_version]
        return ThroughputTable(
            sm_version=sm_version,
            ipc_by_category=MappingProxyType(
                {cat: vals[col] for cat, vals in _TABLE_II.items()}
            ),
        )

    def ipc(self, category: InstrCategory) -> int:
        """Operations per cycle per SM for ``category``."""
        return self.ipc_by_category[category]

    def cpi(self, category: InstrCategory) -> float:
        """Cycles per instruction: the paper's weight for ``category``."""
        return 1.0 / self.ipc_by_category[category]

    def pipe_cpi(self, pipe: PipeClass) -> float:
        """Representative CPI for a whole pipeline class.

        Eq. 6 uses one coefficient per class (c_f, c_m, c_b, c_r).  We take
        the harmonic-mean-consistent choice: the CPI of the class's dominant
        category (FP32 for FLOPS, LDST for MEM, PRED_CTRL for CTRL, REGS for
        REG), which matches how the paper reads Table II.
        """
        rep = {
            PipeClass.FLOPS: InstrCategory.FP32,
            PipeClass.MEM: InstrCategory.LDST,
            PipeClass.CTRL: InstrCategory.PRED_CTRL,
            PipeClass.REG: InstrCategory.REGS,
        }[pipe]
        return self.cpi(rep)

    def as_rows(self) -> list[tuple[str, int]]:
        """(category label, IPC) rows in Table II order, for rendering."""
        return [(cat.value, self.ipc(cat)) for cat in InstrCategory]


THROUGHPUT_BY_SM: dict[int, ThroughputTable] = {
    sm: ThroughputTable.for_sm(sm) for sm in _SM_COLUMN
}
"""Prebuilt throughput tables for the four SM versions of the paper."""


def throughput_for(spec_or_sm) -> ThroughputTable:
    """Return the :class:`ThroughputTable` for a GPUSpec or SM version int."""
    sm = getattr(spec_or_sm, "sm_version", spec_or_sm)
    return THROUGHPUT_BY_SM[int(sm)]


def ipc(spec_or_sm, category: InstrCategory) -> int:
    """Convenience: IPC of ``category`` on the given arch."""
    return throughput_for(spec_or_sm).ipc(category)


def cpi(spec_or_sm, category: InstrCategory) -> float:
    """Convenience: CPI (the mix weight) of ``category`` on the given arch."""
    return throughput_for(spec_or_sm).cpi(category)
