"""Hardware descriptors for the GPUs used in the paper (Table I).

Each :class:`GPUSpec` carries every quantity the occupancy model (paper
Eqs. 1-5), the code generator, and the timing simulator need.  Field names
mirror the paper's notation where a direct counterpart exists; the docstring
of each field notes the paper symbol.

The four concrete instances -- :data:`M2050` (Fermi), :data:`K20` (Kepler),
:data:`M40` (Maxwell) and :data:`P100` (Pascal) -- are transcribed from
Table I of the paper.  A handful of quantities the timing model needs but the
paper's table omits (shared memory per SM, DRAM width, issue width) use the
published hardware values for those parts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class GPUSpec:
    """A complete static description of one GPU model.

    All capacity fields are per the paper's Table I.  The class is frozen:
    architecture descriptions are immutable facts, and analyses may use specs
    as dictionary keys.
    """

    # --- identity -------------------------------------------------------
    name: str
    """Marketing name, e.g. ``"K20"``."""

    family: str
    """Architecture family: Fermi, Kepler, Maxwell or Pascal."""

    compute_capability: float
    """CUDA compute capability ``cc`` (2.0, 3.5, 5.2, 6.0)."""

    sm_version: int
    """Integer SM version used by the throughput tables (20, 35, 52, 60)."""

    # --- chip-level resources -------------------------------------------
    multiprocessors: int
    """Number of streaming multiprocessors, paper symbol ``mp``."""

    cores_per_mp: int
    """CUDA cores per SM."""

    gpu_clock_mhz: float
    """Core clock in MHz."""

    mem_clock_mhz: float
    """Memory clock in MHz."""

    global_mem_mb: int
    """Global memory size in MB."""

    l2_cache_mb: float
    """L2 cache size in MB."""

    constant_mem_bytes: int
    """Constant memory size in bytes."""

    mem_bus_bits: int
    """DRAM bus width in bits (hardware datasheet; used by the bandwidth
    model, not present in the paper's table)."""

    # --- per-SM occupancy limits (compute-capability constants) ---------
    smem_per_block_bytes: int
    """Max shared memory per block, paper ``S^cc_B`` (49152 on all four)."""

    smem_per_mp_bytes: int
    """Shared memory per SM, paper ``S^cc_mp`` (used by Eq. 5)."""

    regfile_per_block: int
    """Register file size visible to one block, paper ``R^cc_fs``."""

    regfile_per_mp: int
    """Register file size per SM (equals ``R^cc_fs`` on these parts)."""

    warp_size: int
    """Threads per warp, paper ``W_B`` / ``T^cc_W`` (32 everywhere)."""

    max_threads_per_mp: int
    """Max resident threads per SM, paper ``T^cc_mp``."""

    max_threads_per_block: int
    """Max threads per block, paper ``T^cc_B``."""

    max_blocks_per_mp: int
    """Max resident blocks per SM, paper ``B^cc_mp``."""

    max_warps_per_mp: int
    """Max resident warps per SM, paper ``W^cc_mp``."""

    reg_alloc_unit: int
    """Register allocation granularity, paper ``R^cc_B`` ("Reg alloc size")."""

    max_regs_per_thread: int
    """Max registers addressable per thread, paper ``R^cc_T``."""

    smem_alloc_unit: int = 256
    """Shared-memory allocation granularity in bytes."""

    warp_alloc_granularity: int = 2
    """Warps-per-block rounding used when computing register cost (Fermi
    allocates registers in pairs of warps; later parts per-warp)."""

    dual_issue: bool = False
    """Whether each scheduler can dual-issue independent instructions."""

    schedulers_per_mp: int = 4
    """Warp schedulers per SM (2 on Fermi, 4 on Kepler+)."""

    dram_latency_cycles: int = 440
    """Approximate global-memory round-trip latency in core cycles."""

    # ---------------------------------------------------------------

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.max_threads_per_block % self.warp_size:
            raise ValueError(
                f"{self.name}: max_threads_per_block must be a positive "
                f"multiple of warp_size"
            )
        if self.max_warps_per_mp * self.warp_size != self.max_threads_per_mp:
            raise ValueError(
                f"{self.name}: warps-per-mp * warp-size must equal "
                f"threads-per-mp (got {self.max_warps_per_mp} * "
                f"{self.warp_size} != {self.max_threads_per_mp})"
            )

    # --- derived quantities ---------------------------------------------

    @property
    def cuda_cores(self) -> int:
        """Total CUDA cores on the chip."""
        return self.multiprocessors * self.cores_per_mp

    @property
    def peak_bandwidth_gbs(self) -> float:
        """Peak DRAM bandwidth in GB/s (DDR: two transfers per mem clock)."""
        return self.mem_clock_mhz * 1e6 * (self.mem_bus_bits / 8) * 2 / 1e9

    @property
    def cycle_time_s(self) -> float:
        """Duration of one core clock cycle in seconds."""
        return 1.0 / (self.gpu_clock_mhz * 1e6)

    def warps_per_block(self, threads_per_block: int) -> int:
        """Warps needed for a block of ``threads_per_block`` threads
        (paper: ``W_B = ceil(T_u / T^cc_W)``)."""
        if threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        return -(-threads_per_block // self.warp_size)

    def short(self) -> str:
        """One-line summary used by reports."""
        return (
            f"{self.name} ({self.family}, sm_{self.sm_version}): "
            f"{self.multiprocessors} SMs x {self.cores_per_mp} cores @ "
            f"{self.gpu_clock_mhz:.0f} MHz"
        )

    def as_dict(self) -> dict:
        """All fields as a plain dict (for table rendering / serialization)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


M2050 = GPUSpec(
    name="M2050",
    family="Fermi",
    compute_capability=2.0,
    sm_version=20,
    multiprocessors=14,
    cores_per_mp=32,
    gpu_clock_mhz=1147.0,
    mem_clock_mhz=1546.0,
    global_mem_mb=3072,
    l2_cache_mb=0.786,
    constant_mem_bytes=65536,
    mem_bus_bits=384,
    smem_per_block_bytes=49152,
    smem_per_mp_bytes=49152,
    regfile_per_block=32768,
    regfile_per_mp=32768,
    warp_size=32,
    max_threads_per_mp=1536,
    max_threads_per_block=1024,
    max_blocks_per_mp=8,
    max_warps_per_mp=48,
    reg_alloc_unit=64,
    max_regs_per_thread=63,
    smem_alloc_unit=128,
    warp_alloc_granularity=2,
    dual_issue=False,
    schedulers_per_mp=2,
    dram_latency_cycles=520,
)

K20 = GPUSpec(
    name="K20",
    family="Kepler",
    compute_capability=3.5,
    sm_version=35,
    multiprocessors=13,
    cores_per_mp=192,
    gpu_clock_mhz=824.0,
    mem_clock_mhz=2505.0,
    global_mem_mb=11520,
    l2_cache_mb=1.572,
    constant_mem_bytes=65536,
    mem_bus_bits=320,
    smem_per_block_bytes=49152,
    smem_per_mp_bytes=49152,
    regfile_per_block=65536,
    regfile_per_mp=65536,
    warp_size=32,
    max_threads_per_mp=2048,
    max_threads_per_block=1024,
    max_blocks_per_mp=16,
    max_warps_per_mp=64,
    reg_alloc_unit=256,
    max_regs_per_thread=255,
    smem_alloc_unit=256,
    warp_alloc_granularity=4,
    dual_issue=True,
    schedulers_per_mp=4,
    dram_latency_cycles=440,
)

M40 = GPUSpec(
    name="M40",
    family="Maxwell",
    compute_capability=5.2,
    sm_version=52,
    multiprocessors=24,
    cores_per_mp=128,
    gpu_clock_mhz=1140.0,
    mem_clock_mhz=5000.0,
    global_mem_mb=12288,
    l2_cache_mb=3.146,
    constant_mem_bytes=65536,
    mem_bus_bits=384,
    smem_per_block_bytes=49152,
    smem_per_mp_bytes=98304,
    regfile_per_block=65536,
    regfile_per_mp=65536,
    warp_size=32,
    max_threads_per_mp=2048,
    max_threads_per_block=1024,
    max_blocks_per_mp=32,
    max_warps_per_mp=64,
    reg_alloc_unit=256,
    max_regs_per_thread=255,
    smem_alloc_unit=256,
    warp_alloc_granularity=4,
    dual_issue=True,
    schedulers_per_mp=4,
    dram_latency_cycles=368,
)

P100 = GPUSpec(
    name="P100",
    family="Pascal",
    compute_capability=6.0,
    sm_version=60,
    multiprocessors=56,
    cores_per_mp=64,
    gpu_clock_mhz=405.0,
    mem_clock_mhz=715.0,
    global_mem_mb=17066,
    l2_cache_mb=4.194,
    constant_mem_bytes=65536,
    mem_bus_bits=4096,
    smem_per_block_bytes=49152,
    smem_per_mp_bytes=65536,
    regfile_per_block=65536,
    regfile_per_mp=65536,
    warp_size=32,
    max_threads_per_mp=2048,
    max_threads_per_block=1024,
    max_blocks_per_mp=32,
    max_warps_per_mp=64,
    reg_alloc_unit=256,
    max_regs_per_thread=255,
    smem_alloc_unit=256,
    warp_alloc_granularity=2,
    dual_issue=False,
    schedulers_per_mp=2,
    dram_latency_cycles=280,
)

ALL_GPUS: tuple[GPUSpec, ...] = (M2050, K20, M40, P100)
"""The four GPUs of the paper, in Table I column order."""

GPUS_BY_NAME: dict[str, GPUSpec] = {g.name: g for g in ALL_GPUS}
GPUS_BY_FAMILY: dict[str, GPUSpec] = {g.family: g for g in ALL_GPUS}

_ALIASES = {
    "fermi": "M2050",
    "kepler": "K20",
    "maxwell": "M40",
    "pascal": "P100",
    "m2050": "M2050",
    "k20": "K20",
    "m40": "M40",
    "p100": "P100",
    "sm20": "M2050",
    "sm35": "K20",
    "sm52": "M40",
    "sm60": "P100",
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by model name, family name, or ``sm_xx`` alias.

    >>> get_gpu("Kepler").name
    'K20'
    """
    key = name.strip().lower().replace("_", "")
    if key not in _ALIASES:
        raise KeyError(
            f"unknown GPU {name!r}; expected one of "
            f"{sorted(set(_ALIASES.values()))} or a family alias"
        )
    return GPUS_BY_NAME[_ALIASES[key]]
