"""GPU architecture descriptions.

This subpackage is the hardware substrate for the reproduction: complete
descriptors of the four GPUs the paper evaluates on (Table I) and the
per-architecture instruction throughput tables (Table II) that drive both the
static instruction-mix weighting and the timing simulator.

The naming convention follows the paper: superscript ``cc`` denotes a value
fixed by the compute capability (e.g. ``T_cc_B`` = max threads per block),
``u`` denotes user input, ``*`` denotes values produced by the analyzer.
"""

from repro.arch.specs import (
    GPUSpec,
    M2050,
    K20,
    M40,
    P100,
    ALL_GPUS,
    GPUS_BY_NAME,
    GPUS_BY_FAMILY,
    get_gpu,
)
from repro.arch.throughput import (
    ThroughputTable,
    InstrCategory,
    PipeClass,
    THROUGHPUT_BY_SM,
    ipc,
    cpi,
    throughput_for,
)

__all__ = [
    "GPUSpec",
    "M2050",
    "K20",
    "M40",
    "P100",
    "ALL_GPUS",
    "GPUS_BY_NAME",
    "GPUS_BY_FAMILY",
    "get_gpu",
    "ThroughputTable",
    "InstrCategory",
    "PipeClass",
    "THROUGHPUT_BY_SM",
    "ipc",
    "cpi",
    "throughput_for",
]
