"""The public API: three verbs over one versioned protocol.

- :func:`tune` runs a tuning session in this process and returns the
  protocol's :class:`SessionResult`;
- :func:`serve` runs the autotuning service (an asyncio HTTP server over
  a shared worker fleet and measurement store);
- :func:`connect` returns a :class:`~repro.client.ReproClient` speaking
  the same protocol to a running server.

All three exchange the frozen, JSON-serializable dataclasses in
:mod:`repro.api.protocol`; ``from repro.api import tune, serve, connect``
is the supported import surface.  Constructing
:class:`~repro.autotune.tuner.Autotuner` or
:class:`~repro.autotune.measure.Measurer` directly still works but is
deprecated for application code (the classes remain the internal
engine-room API).
"""

from repro.api.local import run_tune_request, tune
from repro.api.protocol import (
    PROTOCOL_VERSION,
    AskBatch,
    ErrorEnvelope,
    MeasurementRecord,
    Message,
    ProtocolError,
    ServerInfo,
    SessionResult,
    SessionStatus,
    SpaceSpec,
    StoreStats,
    TellResult,
    TuneRequest,
    parse_message,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AskBatch",
    "ErrorEnvelope",
    "MeasurementRecord",
    "Message",
    "ProtocolError",
    "ServerInfo",
    "SessionResult",
    "SessionStatus",
    "SpaceSpec",
    "StoreStats",
    "TellResult",
    "TuneRequest",
    "connect",
    "parse_message",
    "run_tune_request",
    "serve",
    "tune",
]


def serve(*args, **kwargs):
    """Run the autotuning service (blocking).  See
    :func:`repro.service.server.serve` for the parameters."""
    # imported lazily: repro.service pulls in asyncio plumbing that the
    # in-process tune() path never needs
    from repro.service.server import serve as _serve

    return _serve(*args, **kwargs)


def connect(url: str, **kwargs):
    """A client for a running autotuning server.  See
    :class:`repro.client.ReproClient`."""
    from repro.client import connect as _connect

    return _connect(url, **kwargs)
