"""The versioned, JSON-serializable public protocol.

Every request and response the autotuning service speaks -- and the
in-process :func:`repro.api.tune` facade returns -- is one of the frozen
dataclasses below.  They are the *redesigned public API*: where callers
used to construct ``Autotuner``/``Measurer`` and pass ad-hoc in-process
dataclasses around, the supported surface is now these wire types plus
the three verbs ``tune`` / ``serve`` / ``connect``.

Design rules (enforced by ``tests/test_api_protocol.py``):

- **Strict round-trips.**  ``T.from_json(t.to_json()) == t`` for every
  type, including non-finite floats (an unlaunchable variant measures
  ``inf``; strict wire JSON has no ``Infinity`` literal, so non-finite
  floats travel as the strings ``"Infinity"`` / ``"-Infinity"`` /
  ``"NaN"`` in float-typed fields only -- configuration values are never
  float-decoded).
- **Versioning.**  Every document carries ``"v": PROTOCOL_VERSION``
  (``major.minor``).  A parser rejects a missing, malformed, or
  major-incompatible version with :class:`ProtocolError`; a newer minor
  under the same major is accepted (additive evolution).
- **Unknown-field tolerance.**  Parsers read the fields they know and
  ignore the rest, so a newer peer can add fields without breaking an
  older one.
- **Structured errors.**  Failures travel as :class:`ErrorEnvelope`,
  never as bare strings or HTML.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ClassVar

from repro.autotune.space import Parameter, ParameterSpace

PROTOCOL_VERSION = "1.0"
"""The protocol this build speaks, as ``major.minor``.  Bump the major
for breaking changes (old peers are rejected), the minor for additive
ones (old peers keep working)."""

SESSION_STATES = (
    "pending", "running", "waiting", "done", "failed", "cancelled",
)
"""Session lifecycle: ``pending`` (accepted, not started), ``running``
(strategy active), ``waiting`` (external session awaiting a ``tell``),
then exactly one of ``done`` / ``failed`` / ``cancelled``."""

SESSION_MODES = ("managed", "external")
"""``managed``: the server measures (worker fleet) and the client polls.
``external``: the server only hosts the strategy; the client drives
ask/tell and measures on its own hardware."""


class ProtocolError(ValueError):
    """A document violates the protocol (bad version, missing field,
    wrong type).  Maps to HTTP 400/426 at the transport."""


def parse_version(v) -> tuple[int, int]:
    """``"major.minor"`` -> ``(major, minor)``, or :class:`ProtocolError`."""
    if not isinstance(v, str):
        raise ProtocolError(f"protocol version must be a string, got {v!r}")
    parts = v.split(".")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        raise ProtocolError(f"malformed protocol version {v!r}")
    return int(parts[0]), int(parts[1])


def check_version(v) -> None:
    """Reject a document whose protocol version this build cannot speak.

    Compatibility rule: the major must match ours exactly; any minor
    under that major is accepted.
    """
    if v is None:
        raise ProtocolError(
            "document carries no protocol version ('v' field); "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    major, _minor = parse_version(v)
    ours, _ = parse_version(PROTOCOL_VERSION)
    if major != ours:
        raise ProtocolError(
            f"incompatible protocol version {v!r}; "
            f"this build speaks {PROTOCOL_VERSION}"
        )


# -- field codecs ------------------------------------------------------------

def _enc_float(x: float):
    """A float as strict-JSON: non-finite values travel as strings."""
    x = float(x)
    if math.isinf(x):
        return "Infinity" if x > 0 else "-Infinity"
    if math.isnan(x):
        return "NaN"
    return x


_NONFINITE = {"Infinity": float("inf"), "-Infinity": float("-inf"),
              "NaN": float("nan")}


def _dec_float(v, where: str) -> float:
    if isinstance(v, bool):
        raise ProtocolError(f"{where}: expected a number, got {v!r}")
    if isinstance(v, (int, float)):
        return float(v)
    if isinstance(v, str) and v in _NONFINITE:
        return _NONFINITE[v]
    raise ProtocolError(f"{where}: expected a number, got {v!r}")


_MISSING = object()


def _get(doc: dict, key: str, types, default=_MISSING):
    """Fetch a typed field; missing + no default, or a type mismatch, is
    a :class:`ProtocolError` naming the field.  An explicit ``null`` in
    an *optional* field means "use the default" (our own ``to_json``
    emits ``None`` for unset optionals)."""
    if key not in doc:
        if default is _MISSING:
            raise ProtocolError(f"missing required field {key!r}")
        return default
    v = doc[key]
    if v is None and default is not _MISSING:
        return default
    if v is None:
        raise ProtocolError(f"missing required field {key!r}")
    if types is not None and not isinstance(v, types):
        raise ProtocolError(f"field {key!r} has wrong type: {v!r}")
    # bool is an int subclass; reject it where an int/float is expected
    if types is not None and isinstance(v, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)):
        raise ProtocolError(f"field {key!r} has wrong type: {v!r}")
    return v


def _config_from(doc, where: str) -> dict:
    """Validate one tuning configuration: string keys, primitive values.
    Values are taken verbatim -- never float-decoded -- so a config
    string like ``"Infinity"`` would survive untouched."""
    if not isinstance(doc, dict):
        raise ProtocolError(f"{where}: config is not an object")
    out = {}
    for k, v in doc.items():
        if not isinstance(k, str):
            raise ProtocolError(f"{where}: config key {k!r} is not a string")
        if isinstance(v, bool) or not isinstance(v, (int, float, str)):
            raise ProtocolError(
                f"{where}: config value {k}={v!r} is not a JSON primitive"
            )
        out[k] = v
    return out


# -- message base ------------------------------------------------------------

@dataclass(frozen=True)
class Message:
    """Base of every protocol type: ``to_json`` emits a dict carrying
    ``type`` and ``v``; ``from_json`` validates both and parses the
    known fields, tolerating unknown ones."""

    TYPE: ClassVar[str] = ""

    def _payload(self) -> dict:
        raise NotImplementedError

    @classmethod
    def _parse(cls, doc: dict) -> "Message":
        raise NotImplementedError

    def to_json(self) -> dict:
        doc = {"type": self.TYPE, "v": PROTOCOL_VERSION}
        doc.update(self._payload())
        return doc

    @classmethod
    def from_json(cls, doc) -> "Message":
        if not isinstance(doc, dict):
            raise ProtocolError(
                f"{cls.TYPE or cls.__name__}: document is not a JSON object"
            )
        t = doc.get("type")
        if t is not None and t != cls.TYPE:
            raise ProtocolError(
                f"expected a {cls.TYPE!r} document, got type {t!r}"
            )
        check_version(doc.get("v"))
        return cls._parse(doc)


# -- the types ---------------------------------------------------------------

@dataclass(frozen=True)
class SpaceSpec(Message):
    """A serializable :class:`~repro.autotune.space.ParameterSpace`:
    ordered ``(name, values)`` pairs."""

    TYPE: ClassVar[str] = "space"

    parameters: tuple
    """``((name, (v, v, ...)), ...)`` -- tuples, so instances compare
    and round-trip exactly."""

    @classmethod
    def from_space(cls, space: ParameterSpace) -> "SpaceSpec":
        return cls(parameters=tuple(
            (p.name, tuple(p.values)) for p in space.parameters
        ))

    def to_space(self) -> ParameterSpace:
        return ParameterSpace([
            Parameter(name, tuple(values))
            for name, values in self.parameters
        ])

    def _payload(self) -> dict:
        return {"parameters": [
            [name, list(values)] for name, values in self.parameters
        ]}

    @classmethod
    def _parse(cls, doc: dict) -> "SpaceSpec":
        raw = _get(doc, "parameters", list)
        params = []
        for entry in raw:
            if not (isinstance(entry, list) and len(entry) == 2):
                raise ProtocolError(f"space: bad parameter entry {entry!r}")
            name, values = entry
            if not isinstance(name, str) or not name:
                raise ProtocolError(f"space: bad parameter name {name!r}")
            if not isinstance(values, list) or not values:
                raise ProtocolError(
                    f"space: parameter {name!r} has no value list"
                )
            for v in values:
                if isinstance(v, bool) or not isinstance(v, (int, float, str)):
                    raise ProtocolError(
                        f"space: parameter {name!r} value {v!r} is not a "
                        "JSON primitive"
                    )
            params.append((name, tuple(values)))
        return cls(parameters=tuple(params))


@dataclass(frozen=True)
class TuneRequest(Message):
    """Submit one tuning session: kernel, GPU, size, strategy, budget,
    and (optionally) an explicit space."""

    TYPE: ClassVar[str] = "tune-request"

    kernel: str
    gpu: str
    size: int
    search: str = "exhaustive"
    budget: int | None = None
    use_rule: bool = False
    mode: str = "managed"
    space: SpaceSpec | None = None
    search_args: dict = field(default_factory=dict)
    """Strategy constructor kwargs (``seed``, ``population``, ...);
    values must be JSON primitives so requests stay serializable."""
    tenant: str = "default"

    def _payload(self) -> dict:
        return {
            "kernel": self.kernel,
            "gpu": self.gpu,
            "size": self.size,
            "search": self.search,
            "budget": self.budget,
            "use_rule": self.use_rule,
            "mode": self.mode,
            "space": None if self.space is None else self.space.to_json(),
            "search_args": dict(self.search_args),
            "tenant": self.tenant,
        }

    @classmethod
    def _parse(cls, doc: dict) -> "TuneRequest":
        size = _get(doc, "size", int)
        if size <= 0:
            raise ProtocolError(f"size must be positive, got {size}")
        mode = _get(doc, "mode", str, "managed")
        if mode not in SESSION_MODES:
            raise ProtocolError(
                f"mode {mode!r} not in {SESSION_MODES}"
            )
        budget = _get(doc, "budget", int, None)
        if budget is not None and budget <= 0:
            raise ProtocolError(f"budget must be positive, got {budget}")
        raw_space = doc.get("space")
        space = None if raw_space is None else SpaceSpec.from_json(raw_space)
        args = _get(doc, "search_args", dict, {})
        for k, v in args.items():
            if not isinstance(k, str):
                raise ProtocolError(f"search_args key {k!r} is not a string")
            if v is not None and not isinstance(v, (bool, int, float, str)):
                raise ProtocolError(
                    f"search_args value {k}={v!r} is not a JSON primitive"
                )
        return cls(
            kernel=_get(doc, "kernel", str),
            gpu=_get(doc, "gpu", str),
            size=size,
            search=_get(doc, "search", str, "exhaustive"),
            budget=budget,
            use_rule=_get(doc, "use_rule", bool, False),
            mode=mode,
            space=space,
            search_args=dict(args),
            tenant=_get(doc, "tenant", str, "default"),
        )


@dataclass(frozen=True)
class MeasurementRecord(Message):
    """One measured variant on the wire (the serializable face of
    :class:`~repro.autotune.measure.VariantMeasurement`)."""

    TYPE: ClassVar[str] = "measurement"

    config: dict
    size: int
    seconds: float
    occupancy: float
    regs_per_thread: int
    reg_instructions: float
    key: str | None = None
    """The content-address of this measurement in the shared store
    (:func:`repro.engine.cache.measurement_key`), when known."""

    @classmethod
    def from_measurement(cls, m, key: str | None = None):
        return cls(
            config=dict(m.config), size=m.size, seconds=m.seconds,
            occupancy=m.occupancy, regs_per_thread=m.regs_per_thread,
            reg_instructions=m.reg_instructions, key=key,
        )

    def to_measurement(self):
        from repro.autotune.measure import VariantMeasurement

        return VariantMeasurement(
            config=dict(self.config), size=self.size, seconds=self.seconds,
            occupancy=self.occupancy, regs_per_thread=self.regs_per_thread,
            reg_instructions=self.reg_instructions,
        )

    def _payload(self) -> dict:
        return {
            "config": dict(self.config),
            "size": self.size,
            "seconds": _enc_float(self.seconds),
            "occupancy": _enc_float(self.occupancy),
            "regs_per_thread": self.regs_per_thread,
            "reg_instructions": _enc_float(self.reg_instructions),
            "key": self.key,
        }

    @classmethod
    def _parse(cls, doc: dict) -> "MeasurementRecord":
        return cls(
            config=_config_from(_get(doc, "config", dict), "measurement"),
            size=_get(doc, "size", int),
            seconds=_dec_float(_get(doc, "seconds", None), "seconds"),
            occupancy=_dec_float(_get(doc, "occupancy", None), "occupancy"),
            regs_per_thread=_get(doc, "regs_per_thread", int),
            reg_instructions=_dec_float(
                _get(doc, "reg_instructions", None), "reg_instructions"
            ),
            key=_get(doc, "key", str, None),
        )


@dataclass(frozen=True)
class AskBatch(Message):
    """One proposal batch from a session's strategy: the configurations
    that need fresh evaluations."""

    TYPE: ClassVar[str] = "ask-batch"

    session_id: str
    round: int
    configs: tuple
    """Tuple of configuration dicts (tuple, so instances compare)."""
    remaining: int | None = None
    """Budget left after this batch (``None`` = unlimited)."""
    done: bool = False
    """True when the strategy has finished; ``configs`` is then empty."""

    def _payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "round": self.round,
            "configs": [dict(c) for c in self.configs],
            "remaining": self.remaining,
            "done": self.done,
        }

    @classmethod
    def _parse(cls, doc: dict) -> "AskBatch":
        raw = _get(doc, "configs", list)
        return cls(
            session_id=_get(doc, "session_id", str),
            round=_get(doc, "round", int),
            configs=tuple(
                _config_from(c, f"configs[{i}]") for i, c in enumerate(raw)
            ),
            remaining=_get(doc, "remaining", int, None),
            done=_get(doc, "done", bool, False),
        )


@dataclass(frozen=True)
class TellResult(Message):
    """The objective values answering one :class:`AskBatch`, in batch
    order (``inf`` = unlaunchable)."""

    TYPE: ClassVar[str] = "tell-result"

    session_id: str
    round: int
    values: tuple

    def _payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "round": self.round,
            "values": [_enc_float(v) for v in self.values],
        }

    @classmethod
    def _parse(cls, doc: dict) -> "TellResult":
        raw = _get(doc, "values", list)
        return cls(
            session_id=_get(doc, "session_id", str),
            round=_get(doc, "round", int),
            values=tuple(
                _dec_float(v, f"values[{i}]") for i, v in enumerate(raw)
            ),
        )


@dataclass(frozen=True)
class ErrorEnvelope(Message):
    """A structured failure: a stable machine-readable ``code`` plus a
    human message (and optional detail)."""

    TYPE: ClassVar[str] = "error"

    code: str
    message: str
    detail: str | None = None

    def _payload(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "detail": self.detail,
        }

    @classmethod
    def _parse(cls, doc: dict) -> "ErrorEnvelope":
        return cls(
            code=_get(doc, "code", str),
            message=_get(doc, "message", str),
            detail=_get(doc, "detail", str, None),
        )


@dataclass(frozen=True)
class SessionStatus(Message):
    """A poll of one session: lifecycle state plus progress so far."""

    TYPE: ClassVar[str] = "session-status"

    session_id: str
    state: str
    kernel: str
    gpu: str
    size: int
    search: str
    mode: str = "managed"
    rounds: int = 0
    evaluations: int = 0
    best_value: float | None = None
    best_config: dict | None = None
    error: ErrorEnvelope | None = None

    def _payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "state": self.state,
            "kernel": self.kernel,
            "gpu": self.gpu,
            "size": self.size,
            "search": self.search,
            "mode": self.mode,
            "rounds": self.rounds,
            "evaluations": self.evaluations,
            "best_value": (None if self.best_value is None
                           else _enc_float(self.best_value)),
            "best_config": (None if self.best_config is None
                            else dict(self.best_config)),
            "error": None if self.error is None else self.error.to_json(),
        }

    @classmethod
    def _parse(cls, doc: dict) -> "SessionStatus":
        state = _get(doc, "state", str)
        if state not in SESSION_STATES:
            raise ProtocolError(
                f"state {state!r} not in {SESSION_STATES}"
            )
        best = doc.get("best_value")
        raw_cfg = doc.get("best_config")
        raw_err = doc.get("error")
        return cls(
            session_id=_get(doc, "session_id", str),
            state=state,
            kernel=_get(doc, "kernel", str),
            gpu=_get(doc, "gpu", str),
            size=_get(doc, "size", int),
            search=_get(doc, "search", str),
            mode=_get(doc, "mode", str, "managed"),
            rounds=_get(doc, "rounds", int, 0),
            evaluations=_get(doc, "evaluations", int, 0),
            best_value=(None if best is None
                        else _dec_float(best, "best_value")),
            best_config=(None if raw_cfg is None
                         else _config_from(raw_cfg, "best_config")),
            error=(None if raw_err is None
                   else ErrorEnvelope.from_json(raw_err)),
        )


@dataclass(frozen=True)
class SessionResult(Message):
    """A finished session's outcome: the serializable face of
    :class:`~repro.autotune.search.base.SearchResult` plus every
    measurement, in evaluation order.

    A server-side session and an in-process :func:`repro.api.tune` of the
    same request produce *identical* payloads (asserted in
    ``tests/test_service.py``), modulo ``session_id``.
    """

    TYPE: ClassVar[str] = "session-result"

    session_id: str
    best_config: dict
    best_value: float
    evaluations: int
    space_size: int
    full_space_size: int
    history: tuple = ()
    """``((config, value), ...)`` in evaluation order."""
    measurements: tuple = ()
    """:class:`MeasurementRecord` per evaluation (empty for external
    sessions, where the client measured)."""

    @classmethod
    def from_search(cls, session_id: str, sr, measurements=()):
        return cls(
            session_id=session_id,
            best_config=dict(sr.best_config),
            best_value=float(sr.best_value),
            evaluations=sr.evaluations,
            space_size=sr.space_size,
            full_space_size=sr.full_space_size,
            history=tuple((dict(c), float(v)) for c, v in sr.history),
            measurements=tuple(
                MeasurementRecord.from_measurement(m) for m in measurements
            ),
        )

    @property
    def space_reduction(self) -> float:
        if self.full_space_size == 0:
            return 0.0
        return 1.0 - self.space_size / self.full_space_size

    def _payload(self) -> dict:
        return {
            "session_id": self.session_id,
            "best_config": dict(self.best_config),
            "best_value": _enc_float(self.best_value),
            "evaluations": self.evaluations,
            "space_size": self.space_size,
            "full_space_size": self.full_space_size,
            "history": [
                [dict(c), _enc_float(v)] for c, v in self.history
            ],
            "measurements": [m.to_json() for m in self.measurements],
        }

    @classmethod
    def _parse(cls, doc: dict) -> "SessionResult":
        history = []
        for i, entry in enumerate(_get(doc, "history", list, [])):
            if not (isinstance(entry, list) and len(entry) == 2):
                raise ProtocolError(f"history[{i}]: bad entry {entry!r}")
            history.append((
                _config_from(entry[0], f"history[{i}]"),
                _dec_float(entry[1], f"history[{i}]"),
            ))
        return cls(
            session_id=_get(doc, "session_id", str),
            best_config=_config_from(
                _get(doc, "best_config", dict), "best_config"
            ),
            best_value=_dec_float(
                _get(doc, "best_value", None), "best_value"
            ),
            evaluations=_get(doc, "evaluations", int),
            space_size=_get(doc, "space_size", int),
            full_space_size=_get(doc, "full_space_size", int),
            history=tuple(history),
            measurements=tuple(
                MeasurementRecord.from_json(m)
                for m in _get(doc, "measurements", list, [])
            ),
        )


@dataclass(frozen=True)
class StoreStats(Message):
    """The shared measurement store's counters plus the fleet's lifetime
    totals (what the warm-pass CI assertion reads)."""

    TYPE: ClassVar[str] = "store-stats"

    entries: int = 0
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    evicted: int = 0
    measured: int = 0
    """Fresh measurements over the fleet's lifetime."""
    served_from_cache: int = 0
    """Engine-level cache hits over the fleet's lifetime."""
    sessions: int = 0
    max_entries: int | None = None
    schema_version: int = 0

    def _payload(self) -> dict:
        return {
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "measured": self.measured,
            "served_from_cache": self.served_from_cache,
            "sessions": self.sessions,
            "max_entries": self.max_entries,
            "schema_version": self.schema_version,
        }

    @classmethod
    def _parse(cls, doc: dict) -> "StoreStats":
        return cls(
            entries=_get(doc, "entries", int, 0),
            hits=_get(doc, "hits", int, 0),
            misses=_get(doc, "misses", int, 0),
            corrupt=_get(doc, "corrupt", int, 0),
            evicted=_get(doc, "evicted", int, 0),
            measured=_get(doc, "measured", int, 0),
            served_from_cache=_get(doc, "served_from_cache", int, 0),
            sessions=_get(doc, "sessions", int, 0),
            max_entries=_get(doc, "max_entries", int, None),
            schema_version=_get(doc, "schema_version", int, 0),
        )


@dataclass(frozen=True)
class ServerInfo(Message):
    """The handshake document: what the server speaks and holds."""

    TYPE: ClassVar[str] = "server-info"

    protocol: str = PROTOCOL_VERSION
    server: str = "repro-service/1"
    sessions: int = 0
    store_entries: int = 0

    def _payload(self) -> dict:
        return {
            "protocol": self.protocol,
            "server": self.server,
            "sessions": self.sessions,
            "store_entries": self.store_entries,
        }

    @classmethod
    def _parse(cls, doc: dict) -> "ServerInfo":
        info = cls(
            protocol=_get(doc, "protocol", str),
            server=_get(doc, "server", str, "repro-service/1"),
            sessions=_get(doc, "sessions", int, 0),
            store_entries=_get(doc, "store_entries", int, 0),
        )
        # the handshake's payload version is the compatibility contract
        check_version(info.protocol)
        return info


MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (
        SpaceSpec, TuneRequest, MeasurementRecord, AskBatch, TellResult,
        ErrorEnvelope, SessionStatus, SessionResult, StoreStats, ServerInfo,
    )
}


def parse_message(doc) -> Message:
    """Dispatch a document to its type's parser by the ``type`` field."""
    if not isinstance(doc, dict):
        raise ProtocolError("message document is not a JSON object")
    t = doc.get("type")
    if t not in MESSAGE_TYPES:
        raise ProtocolError(
            f"unknown message type {t!r}; known: {sorted(MESSAGE_TYPES)}"
        )
    return MESSAGE_TYPES[t].from_json(doc)
