"""In-process execution of the protocol: one :class:`TuneRequest` in,
one :class:`SessionResult` out.

This is the *same* code path the service's session manager drives -- the
server is a remote :func:`run_tune_request` multiplexed over a shared
engine -- which is what makes the byte-identity acceptance test
meaningful: both sides serialize the identical types produced by the
identical tuner.
"""

from __future__ import annotations

from repro.api.protocol import ProtocolError, SessionResult, TuneRequest

__all__ = ["resolve_request", "run_tune_request", "tune"]


def resolve_request(request: TuneRequest):
    """Validate a request against the registries; return
    ``(benchmark, gpu, space)``.

    Raises :class:`ProtocolError` naming the registry for anything
    unknown, so the server can answer 400 with a structured envelope and
    the CLI can ``parser.error`` with the same text.
    """
    from repro.arch.specs import ALL_GPUS, get_gpu
    from repro.autotune.search import SEARCH_REGISTRY
    from repro.kernels import BENCHMARKS, get_benchmark

    try:
        benchmark = get_benchmark(request.kernel)
    except KeyError:
        raise ProtocolError(
            f"unknown kernel {request.kernel!r}; registered: "
            f"{', '.join(sorted(BENCHMARKS))}"
        ) from None
    try:
        gpu = get_gpu(request.gpu)
    except KeyError:
        raise ProtocolError(
            f"unknown architecture {request.gpu!r}; available: "
            f"{', '.join(g.name for g in ALL_GPUS)} (or family aliases)"
        ) from None
    if request.search.strip().lower() not in SEARCH_REGISTRY:
        raise ProtocolError(
            f"unknown search {request.search!r}; available: "
            f"{sorted(SEARCH_REGISTRY)}"
        )
    space = None if request.space is None else request.space.to_space()
    return benchmark, gpu, space


def run_tune_request(
    request: TuneRequest,
    engine=None,
    jobs: int = 1,
    cache=None,
    session_id: str = "local",
) -> SessionResult:
    """Execute one tuning request in this process.

    ``engine``/``jobs``/``cache`` are forwarded to
    :meth:`~repro.autotune.tuner.Autotuner.tune` untouched, so the call
    supports everything the library path does -- parallel sharding and
    the persistent measurement cache included.
    """
    from repro.autotune.tuner import Autotuner

    benchmark, gpu, space = resolve_request(request)
    tuner = Autotuner(benchmark, gpu, space=space)
    outcome = tuner.tune(
        request.size,
        search=request.search,
        use_rule=request.use_rule,
        budget=request.budget,
        engine=engine,
        jobs=jobs,
        cache=cache,
        **dict(request.search_args),
    )
    return SessionResult.from_search(
        session_id, outcome.search,
        measurements=outcome.results.measurements,
    )


def tune(
    kernel: str,
    gpu: str,
    size: int,
    search: str = "exhaustive",
    budget: int | None = None,
    use_rule: bool = False,
    space=None,
    jobs: int = 1,
    cache=None,
    engine=None,
    **search_args,
) -> SessionResult:
    """The in-process face of the public API: tune one kernel, get the
    protocol's :class:`SessionResult` back.

    >>> from repro.api import tune
    >>> result = tune("atax", "kepler", size=32, search="random",
    ...               budget=20, seed=7)            # doctest: +SKIP
    >>> result.best_config                          # doctest: +SKIP

    ``space`` may be a :class:`~repro.api.protocol.SpaceSpec`, a
    :class:`~repro.autotune.space.ParameterSpace`, or ``None`` (the
    benchmark's default space).
    """
    from repro.api.protocol import SpaceSpec
    from repro.autotune.space import ParameterSpace

    if isinstance(space, ParameterSpace):
        space = SpaceSpec.from_space(space)
    elif space is not None and not isinstance(space, SpaceSpec):
        raise ProtocolError(
            f"space must be a SpaceSpec or ParameterSpace, got {space!r}"
        )
    request = TuneRequest(
        kernel=kernel, gpu=gpu, size=size, search=search, budget=budget,
        use_rule=use_rule, space=space, search_args=dict(search_args),
    )
    return run_tune_request(request, engine=engine, jobs=jobs, cache=cache)
