"""Corpus selection and per-member evaluation spaces/sizes.

A corpus member's *evaluation space* starts from the space the benchmark
itself declares (:meth:`~repro.kernels.base.Benchmark.default_space`) so
structural constraints (tile-multiple thread counts, pinned ``UIF``)
are honoured.  The reduced (default) evaluation keeps the full ``TC``
axis -- the subject of every static-pruning claim -- and trims the
orthogonal axes, mirroring
:func:`repro.experiments.common.reduced_space` but per benchmark.
"""

from __future__ import annotations

from repro.autotune.space import Parameter, ParameterSpace
from repro.kernels import get_benchmark, list_benchmarks
from repro.kernels.base import Benchmark


def corpus_members(tags=None, kernels=None) -> list[Benchmark]:
    """Select corpus members, sorted by name.

    ``tags`` (iterable of tag names) selects the union of the tags'
    subsets; ``kernels`` (iterable of benchmark names) restricts to
    those members.  Both ``None`` selects the whole registry.
    """
    members = {b.name: b for b in list_benchmarks()}
    if tags:
        chosen: dict[str, Benchmark] = {}
        for tag in tags:
            for b in list_benchmarks(tag=tag):
                chosen[b.name] = b
        members = chosen
    if kernels:
        wanted = {get_benchmark(k).name for k in kernels}
        members = {n: b for n, b in members.items() if n in wanted}
    return sorted(members.values(), key=lambda b: b.name)


def corpus_space(benchmark: Benchmark, full: bool = False) -> ParameterSpace:
    """The evaluation space for one member.

    ``full`` uses the member's declared space verbatim.  Otherwise the
    ``TC`` axis is kept whole (static pruning must stay observable) and
    each other axis is trimmed to two spread values — its first and its
    median, mirroring the ``reduced_space`` picks (``PL`` to one) —
    which preserves every thread-count effect while keeping an
    11-member suite sweep seconds-scale.
    """
    space = benchmark.default_space()
    if full:
        return space
    params = []
    for p in space.parameters:
        if p.name == "PL":
            params.append(Parameter(p.name, (p.values[0],)))
        elif p.name in ("TC", "CFLAGS") or len(p.values) <= 2:
            params.append(p)
        else:
            lo = p.values[0]
            mid = p.values[len(p.values) // 2]
            params.append(
                Parameter(p.name, (lo, mid) if lo != mid else (lo,))
            )
    return ParameterSpace(params)


def corpus_sizes(benchmark: Benchmark, full: bool = False) -> tuple:
    """Input sizes for one member: all five when ``full``, else the
    smallest and largest (the intensity/occupancy extremes)."""
    if full:
        return tuple(benchmark.sizes)
    return (benchmark.sizes[0], benchmark.sizes[-1])
