"""Cross-kernel evaluation: model accuracy and autotuning quality.

Two row builders, one per table of the ``suite`` experiment.  Both route
every measurement through the caller's engine (the runner's shared
:class:`~repro.engine.engine.SweepEngine`) so an 11-member suite pass is
sharded and cache-served exactly like the paper experiments.
"""

from __future__ import annotations

import numpy as np

from repro.arch.specs import GPUSpec
from repro.arch.throughput import PipeClass
from repro.autotune.measure import Measurer
from repro.autotune.space import ParameterSpace
from repro.autotune.tuner import Autotuner
from repro.codegen.compiler import CompileOptions, compile_module
from repro.core.instruction_mix import static_mix_module
from repro.core.timing_model import Eq6Model, profile_mae
from repro.kernels.base import Benchmark
from repro.sim.counting import exact_counts, validate_against_emulation
from repro.sim.emulator import run_benchmark_emulated
from repro.sim.timing import LaunchConfig
from repro.util.rng import rng_for

BASELINE_TC = 128
"""The Table VI dynamic-baseline thread count (shared with
``table6_mix_errors``)."""

MIX_CLASSES = (PipeClass.FLOPS, PipeClass.MEM, PipeClass.CTRL)


def baseline_launch(module, env) -> LaunchConfig:
    """The dynamic-mix baseline: TC=128 with a grid sized to the work.

    Launching far more threads than parallel-loop iterations would fill
    the dynamic counts with idle-thread preambles and say nothing about
    the kernel; a practitioner sizes the grid to ``ceil(M / TC)``
    (capped at the tuning space's maximum of 192 blocks).  This is the
    Table VI convention; ``table6_mix_errors`` and the suite's
    ``accuracy_row`` share it through here.
    """
    from repro.codegen.ast_nodes import evaluate_expr

    extent = 0
    for ck in module:
        if ck.parallel_extent is not None:
            extent = max(extent, int(evaluate_expr(ck.parallel_extent, env)))
    bc = max(1, min(192, -(-extent // BASELINE_TC))) if extent else 1
    return LaunchConfig(tc=BASELINE_TC, bc=bc)


def pipe_fractions(by_pipe: dict) -> dict:
    """Per-pipe fractions of the non-register instruction total."""
    tot = sum(v for k, v in by_pipe.items() if k is not PipeClass.REG)
    tot = max(tot, 1e-12)
    return {k: v / tot for k, v in by_pipe.items() if k is not PipeClass.REG}


def mix_error_by_class(module, param_env, sizes) -> tuple[dict, float]:
    """Static-vs-dynamic mix error per pipe class, plus the intensity.

    For each input size, compares the static analyzer's mix fractions
    against the exact dynamic counts at the baseline launch and
    accumulates the squared relative error per class (the Table VI
    metric).  Returns ``({FLOPS: e, MEM: e, CTRL: e}, intensity)`` with
    the intensity taken from the largest size's static mix.
    """
    errs = {p: 0.0 for p in MIX_CLASSES}
    intensity = 0.0
    for n in sizes:
        env = param_env(n)
        smix = static_mix_module(module, env)
        sfrac = pipe_fractions(smix.by_pipe())
        launch = baseline_launch(module, env)
        dyn_pipe = {p: 0.0 for p in PipeClass}
        for ck in module:
            dc = exact_counts(ck, env, launch.tc, launch.bc)
            for p, v in dc.by_pipe().items():
                dyn_pipe[p] += v
        dfrac = pipe_fractions(dyn_pipe)
        for p in errs:
            d = max(dfrac[p], 1e-12)
            errs[p] += ((sfrac[p] - d) / d) ** 2
        intensity = smix.intensity
    return errs, intensity


def emulator_ground_truth(benchmark: Benchmark, module, size: int) -> dict:
    """Back-validate the counting model against a real emulated launch.

    Emulates the member at ``size`` under its declared launch (on the
    vectorized fast path -- what makes running this per suite pass
    affordable) and compares the closed-form exact counts against the
    emulator's thread-level ground truth.  Returns the measured SIMD
    efficiency, the worst per-category count deviation, and the emulator
    path/width that produced it.
    """
    inputs = benchmark.make_inputs(
        size, rng_for("suite", "emulate", benchmark.name, size)
    )
    tc, bc = benchmark.emu_launch(size)
    _outs, emu = run_benchmark_emulated(module, inputs, tc=tc, bc=bc)
    env = benchmark.param_env(size)
    # bind the concrete input arrays so the counting substrate evaluates
    # data-dependent trip counts and guards exactly (input-aware mode);
    # the irregular members' count_err stays ~0 only through this
    env.update({k: v for k, v in inputs.items() if isinstance(v, np.ndarray)})
    totals: dict = {}
    for ck in module:
        for cat, v in exact_counts(ck, env, tc, bc).by_category.items():
            totals[cat] = totals.get(cat, 0.0) + v
    deviations = validate_against_emulation(totals, emu)
    profile = emu.profile
    return {
        "simd_eff": emu.simd_efficiency,
        "count_err": max(deviations.values(), default=0.0),
        "emu_mode": profile.mode if profile else "scalar",
        "emu_width": profile.mean_stack_width if profile else 1.0,
    }


def accuracy_row(
    benchmark: Benchmark,
    gpu: GPUSpec,
    space: ParameterSpace,
    sizes,
    engine=None,
) -> dict:
    """How well the static models predict one member on one GPU.

    ``time_mae``: mean absolute error of the Eq. 6 static cost against
    the measured sweep (both min-max normalized, sorted profiles -- the
    Fig. 5 metric, here over the member's own evaluation space).
    ``mix_err``: total squared relative error of the static instruction-
    mix fractions against the exact dynamic mix, summed over the three
    pipe classes and the input sizes (the Table VI metric collapsed to
    one number).  ``intensity``: the static computational intensity the
    Sec. III-C rule thresholds at 4.0.  ``simd_eff``/``count_err``: the
    emulator ground truth from :func:`emulator_ground_truth` at the
    member's smallest selected size.
    """
    tuner = Autotuner(benchmark, gpu, space=space)
    results = tuner.sweep(sizes=sizes, engine=engine)

    eq6 = Eq6Model.for_gpu(gpu)
    measurer = Measurer(benchmark, gpu)
    mix_cache: dict = {}
    predicted, observed = [], []
    for m in results.measurements:
        if not m.launchable:
            continue
        key = (m.config["UIF"], m.config["CFLAGS"], m.config["PL"], m.size)
        if key not in mix_cache:
            module = measurer.module_for(m.config)
            mix = static_mix_module(module, benchmark.param_env(m.size))
            mix_cache[key] = eq6.weighted_cost(mix)
        predicted.append(mix_cache[key])
        observed.append(m.seconds)
    time_mae = profile_mae(predicted, observed)

    module = compile_module(
        benchmark.name, list(benchmark.specs), CompileOptions(gpu=gpu)
    )
    errs, intensity = mix_error_by_class(module, benchmark.param_env, sizes)
    mix_err = sum(errs.values())
    row = {
        "kernel": benchmark.name,
        "arch": gpu.name,
        "variants": len(observed),
        "time_mae": time_mae,
        "mix_err": mix_err,
        "intensity": intensity,
    }
    row.update(emulator_ground_truth(benchmark, module, min(sizes)))
    return row


def quality_row(
    benchmark: Benchmark,
    gpu: GPUSpec,
    space: ParameterSpace,
    size: int,
    engine=None,
) -> dict:
    """What the static choice gives up against the best-searched config.

    Tunes one member at one size three ways through the shared engine --
    exhaustive (the searched optimum), the paper's static module, and
    static + the intensity rule -- and reports each pruned search's
    best time relative to the optimum plus the fraction of the space it
    removed.
    """
    tuner = Autotuner(benchmark, gpu, space=space)
    exhaustive = tuner.tune(size=size, search="exhaustive", engine=engine)
    t_opt = exhaustive.best_seconds
    row = {
        "kernel": benchmark.name,
        "arch": gpu.name,
        "size": size,
        "best_seconds": t_opt,
        "best_tc": exhaustive.best_config["TC"],
    }
    for label, use_rule in (("static", False), ("rb", True)):
        out = tuner.tune(size=size, search="static", use_rule=use_rule,
                         engine=engine)
        row[f"{label}_quality"] = (
            out.best_seconds / t_opt if t_opt else 1.0
        )
        row[f"{label}_reduction"] = out.search.space_reduction
        row[f"{label}_tc"] = out.best_config["TC"]
    return row
