"""The workload-corpus subsystem.

``repro.suite`` turns the tagged benchmark registry into a drivable
corpus: :mod:`~repro.suite.corpus` selects members (by tag and/or name)
and derives each member's evaluation space and input sizes from its own
declared tuning space, and :mod:`~repro.suite.evaluate` measures two
cross-kernel qualities through the shared
:class:`~repro.engine.engine.SweepEngine` --

- **model accuracy**: how well the paper's static Eq. 6 cost and static
  instruction mixes predict the simulated ground truth, per kernel;
- **autotuning quality**: what the static module's pruned search gives
  up against the best exhaustively-searched configuration, per kernel
  per GPU.

The ``suite`` experiment (``repro-experiments suite``) renders both as
cross-kernel tables; ``examples/suite_tour.py`` drives the same API by
tag.
"""

from repro.suite.corpus import (
    corpus_members,
    corpus_sizes,
    corpus_space,
)
from repro.suite.evaluate import (
    accuracy_row,
    emulator_ground_truth,
    quality_row,
)

__all__ = [
    "corpus_members",
    "corpus_sizes",
    "corpus_space",
    "accuracy_row",
    "emulator_ground_truth",
    "quality_row",
]
