"""AST-level transformations applied before lowering.

These model the code transformations Orio parameterizes: loop unrolling
(the ``UIF`` tuning parameter) here; ``-use_fast_math`` is handled inside
lowering since it is an instruction-selection choice rather than a loop
restructuring.
"""

from repro.codegen.transforms.unroll import unroll_innermost, unroll_loop

__all__ = ["unroll_innermost", "unroll_loop"]
