"""Loop unrolling (the Orio ``UIF`` parameter).

``unroll_innermost(spec, k)`` rewrites every innermost *sequential* loop

.. code-block:: c

    for (j = lo; j < hi; j++) BODY(j)

into a main loop advancing by ``k`` with ``k`` replicated bodies plus a
remainder loop:

.. code-block:: c

    for (j = lo; j < lo + ((hi-lo)/k)*k; j += k) { BODY(j); ... BODY(j+k-1); }
    for (j = lo + ((hi-lo)/k)*k; j < hi; j++)    { BODY(j); }

Unrolling reduces per-iteration loop overhead (the latch add/compare/branch
triple), which is exactly the effect the tuner trades against code size and
register pressure.
"""

from __future__ import annotations

from repro.codegen.ast_nodes import (
    BinOp,
    For,
    If,
    IntConst,
    KernelSpec,
    Stmt,
    VarRef,
    substitute_stmt,
)


def _has_inner_loop(body) -> bool:
    for s in body:
        if isinstance(s, For):
            return True
        if isinstance(s, If) and (
            _has_inner_loop(s.then_body) or _has_inner_loop(s.else_body)
        ):
            return True
    return False


def unroll_loop(loop: For, factor: int) -> list[Stmt]:
    """Unroll one sequential loop; returns replacement statements."""
    if factor < 1:
        raise ValueError(f"unroll factor must be >= 1, got {factor}")
    if loop.parallel:
        raise ValueError("cannot unroll the parallel loop")
    if loop.step != 1:
        raise ValueError("can only unroll unit-stride loops")
    if factor == 1:
        return [loop]

    span = BinOp("-", loop.upper, loop.lower)
    main_trips = BinOp("//", span, IntConst(factor))
    main_extent = BinOp("*", main_trips, IntConst(factor))
    main_upper = BinOp("+", loop.lower, main_extent)

    v = VarRef(loop.var)
    main_body: list[Stmt] = []
    for j in range(factor):
        env = {} if j == 0 else {loop.var: BinOp("+", v, IntConst(j))}
        for s in loop.body:
            main_body.append(substitute_stmt(s, env) if env else s)

    main = For(
        var=loop.var,
        lower=loop.lower,
        upper=main_upper,
        body=tuple(main_body),
        step=factor,
        parallel=False,
        loop_id=f"{loop.loop_id}_u{factor}",
    )
    remainder = For(
        var=loop.var,
        lower=main_upper,
        upper=loop.upper,
        body=loop.body,
        step=1,
        parallel=False,
        loop_id=f"{loop.loop_id}_rem",
    )
    return [main, remainder]


def _rewrite(body, factor: int):
    out = []
    for s in body:
        if isinstance(s, For):
            if not s.parallel and not _has_inner_loop(s.body):
                out.extend(unroll_loop(s, factor))
            else:
                out.append(
                    For(
                        var=s.var,
                        lower=s.lower,
                        upper=s.upper,
                        body=tuple(_rewrite(s.body, factor)),
                        step=s.step,
                        parallel=s.parallel,
                        loop_id=s.loop_id,
                    )
                )
        elif isinstance(s, If):
            out.append(
                If(
                    cond=s.cond,
                    then_body=tuple(_rewrite(s.then_body, factor)),
                    else_body=tuple(_rewrite(s.else_body, factor)),
                    prob=s.prob,
                )
            )
        else:
            out.append(s)
    return out


def unroll_innermost(spec: KernelSpec, factor: int) -> KernelSpec:
    """Return ``spec`` with every innermost sequential loop unrolled."""
    if factor == 1:
        return spec
    return KernelSpec(
        name=spec.name,
        params=spec.params,
        body=tuple(_rewrite(spec.body, factor)),
        smem_arrays=spec.smem_arrays,
    )
