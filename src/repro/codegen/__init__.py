"""The compiler substrate standing in for ``nvcc``.

Kernels are written as loop-nest specifications (the Orio input form: "we
use the term kernels to refer to deeply nested loops"), lowered to the
PTX-like IR of :mod:`repro.ptx`, register-allocated per target architecture,
and packaged as :class:`repro.codegen.compiler.CompiledKernel` objects that
carry everything the paper's static analyzer extracts from the real
toolchain: the instruction stream, registers per thread, static shared
memory, and a compile log.

Tuning-relevant compiler behaviour is modelled faithfully:

- ``unroll_factor`` (the Orio ``UIF`` parameter) unrolls innermost
  sequential loops at the AST level, with a remainder loop;
- ``fast_math`` (the ``-use_fast_math`` flag) selects cheap SFU sequences
  for ``exp``/``div``/``sqrt`` instead of precise software expansions;
- the target architecture changes addressing width (32-bit on sm_20, 64-bit
  on sm_35+), reserved registers, and therefore the reported register count.
"""

from repro.codegen.ast_nodes import (
    ArrayParam,
    Assign,
    AtomicAdd,
    BinOp,
    Call,
    Cast,
    Cmp,
    Expr,
    FloatConst,
    For,
    If,
    IntConst,
    KernelSpec,
    Load,
    ScalarParam,
    Stmt,
    Store,
    Sync,
    UnaryOp,
    VarRef,
    evaluate_expr,
    evaluate_expr_numpy,
)
from repro.codegen import dsl
from repro.codegen.compiler import (
    CompiledKernel,
    CompiledModule,
    CompileOptions,
    compile_kernel,
    compile_module,
)
from repro.codegen.regions import Region, RegionKind, DynamicCounts
from repro.codegen.transforms.unroll import unroll_innermost

__all__ = [
    "ArrayParam",
    "Assign",
    "AtomicAdd",
    "BinOp",
    "Call",
    "Cast",
    "Cmp",
    "Expr",
    "FloatConst",
    "For",
    "If",
    "IntConst",
    "KernelSpec",
    "Load",
    "ScalarParam",
    "Stmt",
    "Store",
    "Sync",
    "UnaryOp",
    "VarRef",
    "evaluate_expr",
    "evaluate_expr_numpy",
    "dsl",
    "CompiledKernel",
    "CompiledModule",
    "CompileOptions",
    "compile_kernel",
    "compile_module",
    "Region",
    "RegionKind",
    "DynamicCounts",
    "unroll_innermost",
]
