"""The compile driver: kernel specs -> compiled kernels, per architecture.

This is the reproduction's ``nvcc``.  A :class:`CompileOptions` bundle maps
one-to-one onto the tuning parameters the paper's Orio specification varies
at compile time (``UIF`` unroll factor, ``CFLAGS`` fast-math) plus the
target GPU (``-arch=sm_xx``).  The result carries everything the paper's
static analyzer step extracts:

1. the resource report (registers/thread, shared memory) that
   ``nvcc --ptxas-options=-v`` prints, available as :attr:`CompiledKernel.log`;
2. the disassembled instruction stream (``nvdisasm``), available as
   :meth:`CompiledKernel.disassembly`;
3. the region tree connecting static code to trip counts, which the dynamic
   substrate uses for exact counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import GPUSpec
from repro.codegen.ast_nodes import KernelSpec
from repro.codegen.lowering import lower_kernel
from repro.codegen.regalloc import allocate_registers
from repro.codegen.regions import Region
from repro.codegen.transforms.unroll import unroll_innermost
from repro.ptx.module import KernelIR
from repro.ptx.printer import print_kernel
from repro.ptx.verifier import verify_kernel

#: Registers reserved by the ABI / system per architecture generation.
#: Fermi's 32-bit addressing needs fewer; Kepler+ reserve more for the
#: wider ABI.  These reservations (together with 64-bit pointer pairs) are
#: why the same kernel reports different register counts per architecture,
#: as in the paper's Table VII [R_u] column.
_RESERVED_REGS = {20: 2, 35: 4, 52: 6, 60: 6}


@dataclass(frozen=True)
class CompileOptions:
    """Compile-time tuning knobs (the compile-side slice of Table III)."""

    gpu: GPUSpec
    unroll_factor: int = 1
    fast_math: bool = False
    l1_pref_kb: int = 16
    """Preferred L1 size in KB (the Orio ``PL`` parameter, 16 or 48).  A
    runtime cache-config hint: recorded here because Orio treats it as part
    of the code variant; consumed by the timing model."""

    def __post_init__(self):
        if self.unroll_factor < 1:
            raise ValueError("unroll_factor must be >= 1")
        if self.l1_pref_kb not in (16, 48):
            raise ValueError("l1_pref_kb must be 16 or 48")

    def flags(self) -> str:
        """The equivalent nvcc flag string."""
        parts = [f"-arch=sm_{self.gpu.sm_version}"]
        if self.fast_math:
            parts.append("-use_fast_math")
        if self.unroll_factor > 1:
            parts.append(f"-unroll={self.unroll_factor}")
        return " ".join(parts)


@dataclass(eq=False)
class CompiledKernel:
    """One kernel compiled for one architecture and option set.

    Identity-hashable (``eq=False``) so analysis layers can memoize
    per-kernel results.
    """

    spec: KernelSpec
    """The post-transform spec actually lowered (unrolled form)."""

    source_spec: KernelSpec
    """The original spec before transformations."""

    ir: KernelIR
    root_region: Region
    parallel_extent: object
    options: CompileOptions
    log: str = ""

    @property
    def name(self) -> str:
        return self.ir.name

    @property
    def regs_per_thread(self) -> int:
        return self.ir.regs_per_thread

    @property
    def static_smem_bytes(self) -> int:
        return self.ir.static_smem_bytes

    def disassembly(self) -> str:
        """The nvdisasm-equivalent textual instruction stream."""
        return print_kernel(self.ir)


@dataclass(eq=False)
class CompiledModule:
    """A benchmark compiled as one or more kernels launched in sequence.

    Multi-kernel benchmarks (atax, BiCG run two dependent passes) measure
    and tune the kernels together, as the paper's per-benchmark timings do.
    """

    name: str
    kernels: list
    options: CompileOptions

    def __iter__(self):
        return iter(self.kernels)

    def __len__(self):
        return len(self.kernels)

    @property
    def regs_per_thread(self) -> int:
        """The occupancy-relevant register count: the max across kernels."""
        return max(k.regs_per_thread for k in self.kernels)

    @property
    def static_smem_bytes(self) -> int:
        return max(k.static_smem_bytes for k in self.kernels)

    def log(self) -> str:
        return "\n".join(k.log for k in self.kernels)


def compile_kernel(spec: KernelSpec, options: CompileOptions) -> CompiledKernel:
    """Compile one kernel spec for the given options.

    Pipeline: AST transforms (unroll) -> lowering (fast-math instruction
    selection, addressing width by architecture) -> verification -> linear
    scan register allocation -> resource report.
    """
    gpu = options.gpu
    transformed = unroll_innermost(spec, options.unroll_factor)
    address_64bit = gpu.sm_version >= 35
    lowered = lower_kernel(
        transformed, fast_math=options.fast_math, address_64bit=address_64bit
    )
    alloc = allocate_registers(
        lowered.ir,
        reserved=_RESERVED_REGS[gpu.sm_version],
        max_regs=gpu.max_regs_per_thread,
    )
    ir = alloc.kernel
    ir.target_sm = gpu.sm_version
    ir.meta["options"] = options
    ir.meta["spilled"] = alloc.spilled
    verify_kernel(ir)

    log = (
        f"ptxas info    : Compiling entry function '{spec.name}' "
        f"for 'sm_{gpu.sm_version}'\n"
        f"ptxas info    : Function properties for {spec.name}\n"
        f"ptxas info    : Used {ir.regs_per_thread} registers, "
        f"{ir.static_smem_bytes} bytes smem"
        + (f", {alloc.spilled} registers spilled" if alloc.spilled else "")
    )
    return CompiledKernel(
        spec=transformed,
        source_spec=spec,
        ir=ir,
        root_region=lowered.root_region,
        parallel_extent=lowered.parallel_extent,
        options=options,
        log=log,
    )


def compile_module(
    name: str, specs: list, options: CompileOptions
) -> CompiledModule:
    """Compile a multi-kernel benchmark."""
    if not specs:
        raise ValueError("compile_module needs at least one kernel spec")
    return CompiledModule(
        name=name,
        kernels=[compile_kernel(s, options) for s in specs],
        options=options,
    )
