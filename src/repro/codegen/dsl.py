"""Convenience constructors for writing kernel specifications.

The benchmark kernels in :mod:`repro.kernels` are written with these
helpers, which keep specs close to the annotated-C loop nests of the paper's
Fig. 3 workflow:

>>> from repro.codegen import dsl
>>> N = dsl.sparam("N")
>>> A, x, y = dsl.farrays("A", "x", "y")
>>> i, j = dsl.ivars("i", "j")
>>> s = dsl.var("s", "f32")
>>> spec = dsl.kernel(
...     "matvec",
...     params=[N, A, x, y],
...     body=[
...         dsl.pfor(i, N, [
...             dsl.assign("s", dsl.f32(0.0)),
...             dsl.sfor(j, N, [
...                 dsl.assign("s", s + A[i * N + j] * x[j]),
...             ]),
...             y.store(i, s),
...         ]),
...     ],
... )
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.ast_nodes import (
    ArrayParam,
    Assign,
    AtomicAdd,
    BoolOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    For,
    If,
    IntConst,
    KernelSpec,
    Load,
    NotOp,
    ScalarParam,
    Store,
    Sync,
    VarRef,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.ptx.isa import DType

_DTYPES = {d.value: d for d in DType}


def _dt(dtype) -> DType:
    if isinstance(dtype, DType):
        return dtype
    return _DTYPES[dtype]


# -- parameters ---------------------------------------------------------


@dataclass(frozen=True)
class ScalarHandle(VarRef):
    """A scalar parameter usable directly inside expression trees.

    Subclasses :class:`VarRef`, so lowering and evaluation treat it exactly
    like any variable reference while :func:`kernel` can recover its
    declaration.
    """

    def decl(self) -> ScalarParam:
        return ScalarParam(self.name, self.dtype)


def sparam(name: str, dtype="s32") -> ScalarHandle:
    """Declare a scalar kernel parameter (problem sizes, coefficients)."""
    return ScalarHandle(name, _dt(dtype))


@dataclass(frozen=True)
class ArrayHandle:
    """An array parameter with ``[]`` loads and ``.store()`` statements."""

    decl: ArrayParam

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def dtype(self) -> DType:
        return self.decl.elem_dtype

    def __getitem__(self, index) -> Load:
        return Load(self.decl.name, _as_expr(index), self.decl.elem_dtype)

    def store(self, index, value) -> Store:
        if isinstance(value, (int, float)):
            value = FloatConst(float(value), self.decl.elem_dtype)
        return Store(self.decl.name, _as_expr(index), _as_expr(value))

    def atomic_add(self, index, value) -> AtomicAdd:
        if isinstance(value, (int, float)):
            value = FloatConst(float(value), self.decl.elem_dtype)
        return AtomicAdd(self.decl.name, _as_expr(index), _as_expr(value))


def farray(name: str, dtype="f32") -> ArrayHandle:
    """Declare an array (pointer) kernel parameter."""
    return ArrayHandle(ArrayParam(name, _dt(dtype)))


def farrays(*names: str, dtype="f32") -> list[ArrayHandle]:
    return [farray(n, dtype) for n in names]


# -- variables & constants ---------------------------------------------


def ivar(name: str) -> VarRef:
    """A 32-bit integer variable reference (loop counters)."""
    return VarRef(name, DType.S32)


def ivars(*names: str) -> list[VarRef]:
    return [ivar(n) for n in names]


def var(name: str, dtype="f32") -> VarRef:
    return VarRef(name, _dt(dtype))


def i32(value: int) -> IntConst:
    return IntConst(int(value))


def f32(value: float) -> FloatConst:
    return FloatConst(float(value), DType.F32)


def f64(value: float) -> FloatConst:
    return FloatConst(float(value), DType.F64)


# -- statements ----------------------------------------------------------


def _as_expr(v) -> Expr:
    if isinstance(v, Expr):
        return v
    if isinstance(v, bool):
        raise TypeError("bool constants are not kernel expressions")
    if isinstance(v, int):
        return IntConst(v)
    if isinstance(v, float):
        return FloatConst(v, DType.F32)
    raise TypeError(f"not an expression: {v!r}")


def assign(name: str, value) -> Assign:
    return Assign(name, _as_expr(value))


def pfor(v: VarRef, upper, body, lower=0) -> For:
    """The parallel (grid-mapped) loop: ``for v in [lower, upper)``."""
    return For(
        var=v.name,
        lower=_as_expr(lower),
        upper=_as_expr(upper),
        body=tuple(body),
        parallel=True,
    )


def sfor(v: VarRef, upper, body, lower=0) -> For:
    """A sequential per-thread loop."""
    return For(
        var=v.name,
        lower=_as_expr(lower),
        upper=_as_expr(upper),
        body=tuple(body),
        parallel=False,
    )


def pfor2d(vi: VarRef, vj: VarRef, ni, nj, body, flat: VarRef | None = None):
    """A parallel loop over a 2-D iteration domain ``[0,ni) x [0,nj)``.

    The grid mapping supports exactly one flat parallel loop, so the
    domain is linearized row-major: one parallel loop over ``ni*nj``
    whose body first de-flattens the row/column indices

    .. code-block:: c

        for (f = 0; f < ni*nj; f++) {   /* parallel */
          vi = f / nj;  vj = f % nj;
          ...body...
        }

    which keeps ``vj`` the fastest-moving index, so lanes of a warp touch
    consecutive columns (the coalescing-friendly orientation).  ``flat``
    names the linear counter (default ``"<vi><vj>_flat"``).

    Branch conditions inside ``body`` should be written over the flat
    counter (``f // nj``, ``f % nj``) rather than ``vi``/``vj``: the
    closed-form counting substrate evaluates conditions over loop
    variables and parameters, not locally-assigned names.  An index the
    body never reads gets no assignment (a kernel indexing by the flat
    counter alone pays nothing for the 2-D view).
    """
    f = flat if flat is not None else ivar(f"{vi.name}{vj.name}_flat")
    used = {
        node.name
        for s in walk_stmts(tuple(body))
        for e in stmt_exprs(s)
        for node in walk_exprs(e)
        if isinstance(node, VarRef)
    }
    prelude = []
    if vi.name in used:
        prelude.append(assign(vi.name, f // _as_expr(nj)))
    if vj.name in used:
        prelude.append(assign(vj.name, f % _as_expr(nj)))
    return pfor(f, _as_expr(ni) * _as_expr(nj), [*prelude, *body])


def when(cond, then_body, else_body=(), prob: float | None = None) -> If:
    return If(cond=_as_expr(cond), then_body=tuple(then_body),
              else_body=tuple(else_body), prob=prob)


def both(l, r) -> BoolOp:
    """Logical AND of two predicates."""
    return BoolOp("and", _as_expr(l), _as_expr(r))


def either(l, r) -> BoolOp:
    """Logical OR of two predicates."""
    return BoolOp("or", _as_expr(l), _as_expr(r))


def negate(x) -> NotOp:
    """Logical NOT of a predicate."""
    return NotOp(_as_expr(x))


def sync() -> Sync:
    return Sync()


def exp(x) -> Call:
    return Call("exp", (_as_expr(x),))


def sqrt(x) -> Call:
    return Call("sqrt", (_as_expr(x),))


def log(x) -> Call:
    return Call("log", (_as_expr(x),))


def to_f32(x) -> Cast:
    return Cast(DType.F32, _as_expr(x))


def to_f64(x) -> Cast:
    return Cast(DType.F64, _as_expr(x))


def to_s32(x) -> Cast:
    return Cast(DType.S32, _as_expr(x))


def kernel(name: str, params, body, smem_arrays=()) -> KernelSpec:
    """Assemble a :class:`KernelSpec`, unwrapping DSL handles."""
    decls = []
    for p in params:
        if isinstance(p, ScalarHandle):
            decls.append(p.decl())
        elif isinstance(p, ArrayHandle):
            decls.append(p.decl)
        elif isinstance(p, (ScalarParam, ArrayParam)):
            decls.append(p)
        else:
            raise TypeError(f"not a parameter: {p!r}")
    return KernelSpec(name=name, params=tuple(decls), body=tuple(body),
                      smem_arrays=tuple(smem_arrays))
